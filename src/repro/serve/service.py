"""The estimator service: snapshot + model behind one batched facade.

:class:`EstimatorService` is what the HTTP layer (and the bench/tests)
talk to.  It owns

- a **read-only store** attached from a memory-mapped snapshot directory
  (the same ``TripleStore.load_snapshot`` image the parallel-labeling
  workers share — pages are mapped once, never copied), and
- an **LMKG framework** speaking the unified
  :class:`~repro.core.estimator.Estimator` protocol, either loaded from
  an ``LMKG.save`` checkpoint directory or — for zero-setup serving —
  fitted from the snapshot at startup with small deterministic defaults.

The service parses SPARQL request text against the snapshot's term
dictionary and delegates estimation to ``framework.estimate_batch``, so
a request served here is answered by exactly the code path a library
caller gets.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.framework import LMKG
from repro.core.lmkg_s import LMKGSConfig
from repro.rdf.parser import ParseError, parse_sparql
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore


class ServiceError(RuntimeError):
    """The service cannot be constructed (bad snapshot/checkpoint)."""


#: deterministic defaults for checkpoint-less serving: small enough to
#: fit at startup in seconds at smoke scales, seeded so two processes
#: fitting from the same snapshot build bit-identical models (the CI
#: smoke test relies on this).
DEFAULT_FIT_SHAPES: Tuple[Tuple[str, int], ...] = (
    ("star", 2),
    ("chain", 2),
)
DEFAULT_FIT_QUERIES = 300
DEFAULT_FIT_EPOCHS = 15
DEFAULT_FIT_HIDDEN: Tuple[int, ...] = (64, 64)
DEFAULT_FIT_SEED = 0


@dataclass(frozen=True)
class FitDefaults:
    """Startup-fit knobs for checkpoint-less serving."""

    shapes: Tuple[Tuple[str, int], ...] = DEFAULT_FIT_SHAPES
    queries_per_shape: int = DEFAULT_FIT_QUERIES
    epochs: int = DEFAULT_FIT_EPOCHS
    hidden_sizes: Tuple[int, ...] = DEFAULT_FIT_HIDDEN
    seed: int = DEFAULT_FIT_SEED


def default_framework(
    store: TripleStore, defaults: Optional[FitDefaults] = None
) -> LMKG:
    """Fit the deterministic default framework used when no checkpoint
    is given; importable so clients can rebuild the identical model."""
    defaults = defaults or FitDefaults()
    framework = LMKG(
        store,
        model_type="supervised",
        grouping="size",
        lmkgs_config=LMKGSConfig(
            hidden_sizes=defaults.hidden_sizes,
            epochs=defaults.epochs,
            seed=defaults.seed,
        ),
        seed=defaults.seed,
    )
    framework.fit(
        shapes=list(defaults.shapes),
        queries_per_shape=defaults.queries_per_shape,
    )
    return framework


class EstimatorService:
    """Parses request queries and answers them through one framework."""

    def __init__(self, store: TripleStore, framework: LMKG) -> None:
        if store.dictionary is None:
            raise ServiceError(
                "the served store has no term dictionary; queries "
                "cannot be parsed (save the snapshot from a "
                "dictionary-encoded store)"
            )
        self.store = store
        self.framework = framework
        #: the gate-checked checkpoint artifact this framework was
        #: loaded from (None for startup-fitted frameworks); see
        #: :mod:`repro.serve.artifacts`.
        self.artifact = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        snapshot_dir: Union[str, Path],
        checkpoint_dir: Union[str, Path, None] = None,
        fit_defaults: Optional[FitDefaults] = None,
    ) -> "EstimatorService":
        """Attach to a snapshot and load (or fit) the framework.

        The snapshot is checksum-verified once here; a checkpoint, when
        given, must have been saved against the same graph.
        """
        from repro.core.framework import CheckpointError
        from repro.rdf.columnar import SnapshotError

        try:
            store = TripleStore.load_snapshot(snapshot_dir)
        except SnapshotError as exc:
            raise ServiceError(f"snapshot load failed: {exc}") from exc
        if store.dictionary is None:
            # Reject before the (potentially long) startup fit.
            raise ServiceError(
                "the served store has no term dictionary; queries "
                "cannot be parsed (save the snapshot from a "
                "dictionary-encoded store)"
            )
        artifact = None
        if checkpoint_dir is not None:
            from repro.serve.artifacts import (
                ArtifactError,
                load_checkpoint,
            )

            try:
                framework, artifact = load_checkpoint(
                    checkpoint_dir, store
                )
            except (ArtifactError, CheckpointError) as exc:
                raise ServiceError(
                    f"checkpoint load failed: {exc}"
                ) from exc
        else:
            framework = default_framework(store, fit_defaults)
        service = cls(store, framework)
        service.artifact = artifact
        return service

    # ------------------------------------------------------------------
    # Request surface
    # ------------------------------------------------------------------

    def parse_query(self, text: str) -> QueryPattern:
        """SPARQL request text -> QueryPattern (ParseError on garbage)."""
        if not isinstance(text, str):
            raise ParseError(
                f"query must be a SPARQL string, got {type(text).__name__}"
            )
        return parse_sparql(text, self.store.dictionary)

    def parse_queries(
        self, texts: Sequence[str]
    ) -> List[QueryPattern]:
        return [self.parse_query(text) for text in texts]

    def estimate_batch(
        self, queries: Sequence[QueryPattern]
    ) -> np.ndarray:
        """Delegates to the framework (the protocol's batched surface)."""
        return self.framework.estimate_batch(queries)

    # ------------------------------------------------------------------
    # Introspection (healthz)
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        return {
            "triples": len(self.store),
            "nodes": self.store.num_nodes,
            "predicates": self.store.num_predicates,
            "models": self.framework.num_models(),
            "model_type": self.framework.model_type,
            "grouping": self.framework.grouping.name,
            "model_bytes": self.framework.memory_bytes(),
            "checkpoint_bytes": self.framework.checkpoint_bytes(),
        }
