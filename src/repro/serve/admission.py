"""Admission control by trained query shape.

A query whose shape no trained model covers cannot be estimated; before
this module it travelled the whole pipeline — scheduler queue, possibly
a worker process — only to come back as an :class:`EstimationError`.
Under load that wastes a batch slot per doomed query and, in multi-worker
mode, a cross-process round trip.  :class:`ShapeManifest` is the
trained-shape surface saved with the checkpoint artifact so the HTTP
layer can 422 uncovered shapes **at parse time** instead.

The manifest is built by *probing the framework's actual routing*
(:meth:`ShapeManifest.from_framework`): for every trained model we ask
the grouping strategy which (topology, size) pairs land on it, so the
admitted set is exactly the set the execution phase can answer — never a
re-implementation that could drift.  Composite queries are checked
through the same :func:`~repro.core.decomposition.decompose` +
tree-absorption logic the framework itself uses.

Admission is **sound, not complete** in one direction only: a query it
admits is guaranteed to route (the worker-side 422 path stays as the
backstop for semantic failures), and a query it rejects would provably
have raised ``EstimationError`` downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence

from repro.core.decomposition import decompose
from repro.rdf.pattern import QueryPattern, Topology


class AdmissionError(RuntimeError):
    """A request query is outside the trained-shape envelope (HTTP 422).

    ``reason`` is a stable machine-readable code; ``query_index`` points
    at the offending query within the request batch.
    """

    def __init__(
        self, message: str, query_index: int = 0
    ) -> None:
        super().__init__(message)
        self.reason = "uncovered_shape"
        self.query_index = query_index


@dataclass(frozen=True)
class ShapeManifest:
    """The set of (topology, size) shapes the served models cover.

    ``covered`` maps a topology value (``"star"``, ``"chain"``,
    ``"tree"``) to the exact sizes routable to a trained model.
    """

    covered: Dict[str, FrozenSet[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_framework(cls, framework) -> "ShapeManifest":
        """Probe the framework's routing for every coverable shape."""
        from repro.core.lmkg_u import LMKGU

        covered: Dict[str, set] = {}
        for key, model in framework.models.items():
            topologies = framework._group_topologies.get(key, set())
            max_size = framework._group_max_size.get(key, 0)
            for topology in topologies:
                if isinstance(model, LMKGU):
                    if topology == "tree":
                        # _try_tree_model never answers through LMKG-U,
                        # and "tree" is not a routable Topology value.
                        continue
                    # LMKG-U is fixed-size by construction; routing
                    # rejects any other size on the same key.
                    sizes = [model.size]
                else:
                    sizes = [
                        size
                        for size in range(2, max_size + 1)
                        if framework.grouping.key(topology, size) == key
                    ]
                covered.setdefault(topology, set()).update(sizes)
        return cls(
            {t: frozenset(sizes) for t, sizes in covered.items()}
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, Sequence[int]]) -> "ShapeManifest":
        return cls(
            {
                str(topology): frozenset(int(s) for s in sizes)
                for topology, sizes in payload.items()
            }
        )

    def to_dict(self) -> Dict[str, list]:
        """JSON-ready form (sorted size lists), for ``artifact.json``."""
        return {
            topology: sorted(sizes)
            for topology, sizes in sorted(self.covered.items())
        }

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    @property
    def tree_max_size(self) -> int:
        return max(self.covered.get("tree", frozenset()), default=0)

    def rejection_reason(self, query: QueryPattern) -> Optional[str]:
        """Why *query* cannot be served, or None when it is admitted.

        Mirrors ``LMKG._estimate_batch`` routing: single triples are
        answered from the indexes, composite queries may be absorbed by
        a trained tree model or are decomposed into star/chain/single
        components, and each component must land on a trained model (or
        be tree-absorbable).
        """
        if query.size == 1:
            return None
        if query.topology() is Topology.COMPOSITE and self._tree_absorbs(
            query
        ):
            return None
        for component in decompose(query):
            if component.size == 1:
                continue
            topology = component.topology()
            if (
                topology is not Topology.COMPOSITE
                and component.size
                in self.covered.get(topology.value, frozenset())
            ):
                continue
            if self._tree_absorbs(component):
                continue
            return (
                f"no trained model covers shape "
                f"{topology.value}:{component.size} "
                f"(covered: {self.to_dict() or 'nothing'})"
            )
        return None

    def _tree_absorbs(self, query: QueryPattern) -> bool:
        if query.size not in self.covered.get("tree", frozenset()):
            return False
        from repro.rdf.treecount import is_tree_query

        return is_tree_query(query)

    def admit_all(
        self, queries: Sequence[QueryPattern]
    ) -> None:
        """Raise :class:`AdmissionError` on the first uncovered query."""
        for i, query in enumerate(queries):
            reason = self.rejection_reason(query)
            if reason is not None:
                raise AdmissionError(
                    f"query {i}: {reason}", query_index=i
                )
