"""Worker supervision, graceful degradation, and zero-downtime reload.

Three fault-tolerance layers for ``repro serve``, composable and each
testable alone:

- :class:`SupervisedPool` — the multi-worker estimation pool rebuilt for
  failure: explicit worker processes over duplex pipes (not
  ``multiprocessing.Pool``, which strands in-flight tasks when a worker
  dies), a **per-request timeout** that catches hung workers, dead/hung
  workers **killed and restarted with exponential backoff under a
  restart budget**, and the stranded chunk **retried on sibling
  workers** — so a worker crash under load yields zero failed client
  requests.  A checkpoint swap is **blue-green**: a complete new worker
  set is spawned against the new checkpoint while the old set keeps
  serving, then the active set pointer flips between batches.
- :class:`CircuitBreaker` + :class:`ResilientBackend` — graceful
  degradation: after ``failure_threshold`` consecutive model-path
  failures the breaker opens and traffic routes to a cheap
  always-available fallback (the independence baseline), tagged
  ``degraded: true``; the primary is re-probed on a half-open schedule
  and the breaker closes again on the first success.  Infrastructure
  failures (the whole pool down) fall back immediately — a dead model
  path must read as degraded 200s, not 500s.
- :class:`ServingRuntime` — the orchestrator the HTTP admin surface
  drives: ``reload()`` gate-checks the new checkpoint artifact
  (:mod:`repro.serve.artifacts`), loads it, and atomically swaps it in
  while in-flight batches drain against the old framework (new arrivals
  queue behind the scheduler as usual).  The swapped-in framework
  carries fresh parameter version counters, so the PR 5 fused float32
  inference caches rebuild on first use — there is no way to serve a
  stale cache across a reload.  Every response carries the checkpoint
  generation that computed it, and ``/healthz`` reports generation,
  schema version, per-worker liveness/restarts, and breaker state.

Chaos-testability is a design input: :class:`FaultInjector` hooks sit
in the worker request loop and the in-process backend, so the test
suite can kill/hang/poison deterministically and assert the guarantees
above instead of trusting them.
"""

from __future__ import annotations

import math
import threading
import time
import traceback
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.framework import EstimationError
from repro.rdf.parallel import resolve_context
from repro.rdf.pattern import QueryPattern
from repro.serve.admission import ShapeManifest
from repro.serve.artifacts import CheckpointArtifact, load_checkpoint
from repro.serve.faults import FaultInjector, FaultSpec


class SupervisorError(RuntimeError):
    """The supervised pool cannot serve (startup/restart failure)."""


class ServingWorkerError(RuntimeError):
    """An estimation worker failed; carries the worker traceback.

    Historically raised by the minimal unsupervised ``ServingPool``
    (removed once :class:`SupervisedPool` replaced it); kept as the
    worker-infrastructure error type the degradation layer falls back
    on immediately.
    """


class NoWorkersError(SupervisorError):
    """Every worker is dead and the restart budget is exhausted."""


class ReloadError(RuntimeError):
    """A hot-reload request cannot even be attempted (no checkpoint)."""


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _worker_main(
    worker_id: int,
    snapshot_dir: str,
    checkpoint_dir: str,
    conn,
    fault_dict: Optional[dict],
) -> None:
    """Attach, handshake, then answer (offset, queries) requests forever.

    Attach mirrors the labeling pool: ``verify=False`` /
    ``load_dictionary=False`` because the parent verified the snapshot
    and parsing happens parent-side.  The handshake (``("ready", ...)``
    or ``("init-error", traceback)``) lets the supervisor distinguish a
    broken checkpoint from a crashed process.
    """
    injector = FaultInjector(FaultSpec.from_dict(fault_dict))
    try:
        from repro.core.framework import LMKG
        from repro.rdf.store import TripleStore

        store = TripleStore.load_snapshot(
            snapshot_dir,
            verify=False,
            read_only=True,
            load_dictionary=False,
        )
        framework = LMKG.load(checkpoint_dir, store)
    except BaseException:
        try:
            conn.send(("init-error", traceback.format_exc()))
        except OSError:
            pass
        return
    conn.send(("ready", worker_id))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message[0] == "stop":
            return
        _, offset, queries = message
        try:
            injector.on_request(queries)  # may exit/hang/raise
            values = framework.estimate_batch(queries)
            payload = (offset, values.tolist(), None)
        except EstimationError as exc:
            payload = (offset, None, ("estimation", str(exc)))
        except BaseException:
            payload = (offset, None, ("error", traceback.format_exc()))
        try:
            conn.send(payload)
        except OSError:
            return


# Worker slot states.
_STARTING = "starting"
_READY = "ready"
_BUSY = "busy"
_DEAD = "dead"      # awaiting restart (backoff/budget permitting)
_FAILED = "failed"  # permanently out (restart budget exhausted)


class _Worker:
    """One supervised worker slot (process + pipe + lifecycle state)."""

    __slots__ = (
        "id",
        "process",
        "conn",
        "state",
        "restarts",
        "consecutive_failures",
        "not_before",
        "deadline",
        "task",
        "last_error",
    )

    def __init__(self, worker_id: int) -> None:
        self.id = worker_id
        self.process = None
        self.conn = None
        self.state = _STARTING
        self.restarts = 0
        self.consecutive_failures = 0
        self.not_before = 0.0
        self.deadline = math.inf
        self.task = None
        self.last_error: Optional[str] = None

    def kill(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.process is not None and self.process.is_alive():
            self.process.kill()
        self.process = None


class SupervisedPool:
    """N supervised estimation workers over one shared snapshot.

    The drop-in ``estimate_batch`` backend for the scheduler, built to
    keep answering through worker crashes, hangs, and checkpoint
    swaps.

    Args:
        snapshot_dir: read-only memory-mapped snapshot every worker
            attaches to.
        checkpoint_dir: ``LMKG.save`` directory every worker loads.
        workers: worker slot count (>= 1).
        request_timeout: seconds a worker may spend on one chunk before
            it is declared hung, killed, and its chunk retried on a
            sibling.
        restart_budget: total worker restarts allowed over the pool's
            lifetime; beyond it a slot is permanently failed (and with
            every slot failed, :class:`NoWorkersError` surfaces to the
            caller — typically into the circuit breaker).
        backoff_base / backoff_max: restart delay is
            ``min(backoff_base * 2**(consecutive_failures - 1),
            backoff_max)`` per slot, so a crash-looping worker does not
            spin the supervisor.
        fault_spec: optional :class:`FaultSpec` shipped to every worker
            (chaos testing).
    """

    #: a chunk stranded by worker deaths is retried at most this many
    #: times before the batch fails (backstop against a fault plan that
    #: kills every worker on every request).
    MAX_CHUNK_RETRIES = 16

    def __init__(
        self,
        snapshot_dir: Union[str, Path],
        checkpoint_dir: Union[str, Path],
        workers: int,
        request_timeout: float = 30.0,
        restart_budget: int = 16,
        backoff_base: float = 0.2,
        backoff_max: float = 5.0,
        fault_spec: Optional[FaultSpec] = None,
        mp_context=None,
        startup_timeout: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be > 0")
        self.workers = workers
        self.snapshot_dir = str(snapshot_dir)
        self.checkpoint_dir = str(checkpoint_dir)
        self.request_timeout = request_timeout
        self.restart_budget = restart_budget
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.fault_spec = fault_spec
        self.startup_timeout = startup_timeout
        # Spawn, not fork: restarts and blue-green reloads create
        # workers from the supervisor thread while scheduler/HTTP
        # threads are live, and a fork taken then can inherit held
        # locks (import lock, BLAS internals) and deadlock inside the
        # checkpoint load — as well as inheriting the listening socket
        # and sibling pipe fds.  A spawned worker starts from a clean
        # interpreter with only its own pipe.
        self._context = resolve_context(
            mp_context if mp_context is not None else "spawn"
        )
        #: serializes estimate_batch callers and reload's set swap.
        self._dispatch_lock = threading.Lock()
        #: guards worker slot state; supervisor thread waits on it.
        self._state_cv = threading.Condition()
        self._closed = False
        self._set_generation = 1
        self._restarts_used = 0
        self._deaths = 0
        self._timeouts = 0
        self._chunk_retries = 0
        self._workers = self._spawn_set(self.checkpoint_dir)
        self._supervisor = threading.Thread(
            target=self._supervise,
            name="repro-pool-supervisor",
            daemon=True,
        )
        self._supervisor.start()

    # ------------------------------------------------------------------
    # Worker set lifecycle
    # ------------------------------------------------------------------

    def _spawn_worker(
        self, worker: _Worker, checkpoint_dir: str
    ) -> None:
        """Start *worker*'s process; state stays ``_STARTING`` until the
        handshake is consumed by :meth:`_await_handshake`."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                worker.id,
                self.snapshot_dir,
                checkpoint_dir,
                child_conn,
                self.fault_spec.to_dict() if self.fault_spec else None,
            ),
            name=f"repro-serve-worker-{worker.id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.state = _STARTING

    def _await_handshake(
        self, worker: _Worker, timeout: float
    ) -> Optional[str]:
        """Consume the ready/init-error handshake; returns the error
        traceback (None on success)."""
        try:
            if not worker.conn.poll(timeout):
                return "worker did not complete startup handshake"
            kind, detail = worker.conn.recv()
        except (EOFError, OSError):
            return "worker died during startup"
        if kind == "ready":
            return None
        return str(detail)

    def _spawn_set(self, checkpoint_dir: str) -> List[_Worker]:
        """Spawn and handshake a complete worker set (startup/reload).

        All-or-nothing: any attach failure kills the partial set and
        raises, so a reload against a broken checkpoint leaves the
        serving set untouched.
        """
        workers = [_Worker(i) for i in range(self.workers)]
        try:
            for worker in workers:
                self._spawn_worker(worker, checkpoint_dir)
            deadline = time.monotonic() + self.startup_timeout
            for worker in workers:
                error = self._await_handshake(
                    worker, max(0.1, deadline - time.monotonic())
                )
                if error is not None:
                    raise SupervisorError(
                        f"serving worker {worker.id} failed to start "
                        f"against {checkpoint_dir}:\n{error}"
                    )
                worker.state = _READY
        except BaseException:
            for worker in workers:
                worker.kill()
            raise
        return workers

    def _stop_set(self, workers: List[_Worker]) -> None:
        for worker in workers:
            if worker.conn is not None:
                try:
                    worker.conn.send(("stop",))
                except OSError:
                    pass
        for worker in workers:
            if worker.process is not None:
                worker.process.join(timeout=2.0)
            worker.kill()

    # ------------------------------------------------------------------
    # Supervision (restart thread)
    # ------------------------------------------------------------------

    def _supervise(self) -> None:
        """Restart dead workers as their backoff deadlines arrive."""
        while True:
            with self._state_cv:
                if self._closed:
                    return
                # Liveness-check idle workers: a worker killed between
                # requests would otherwise stay "ready" until the next
                # batch tripped over its corpse.
                for worker in self._workers:
                    if worker.state == _READY and (
                        worker.process is None
                        or not worker.process.is_alive()
                    ):
                        self._declare_dead(
                            worker, "worker process died while idle"
                        )
                now = time.monotonic()
                due = [
                    w
                    for w in self._workers
                    if w.state == _DEAD and w.not_before <= now
                ]
                for worker in due:
                    if self._restarts_used >= self.restart_budget:
                        worker.state = _FAILED
                        continue
                    self._restarts_used += 1
                    worker.restarts += 1
                    worker.state = _STARTING
                checkpoint_dir = self.checkpoint_dir
            for worker in due:
                if worker.state != _STARTING:
                    continue
                try:
                    self._spawn_worker(worker, checkpoint_dir)
                    error = self._await_handshake(worker, 60.0)
                except BaseException:
                    error = traceback.format_exc()
                with self._state_cv:
                    if error is None:
                        worker.state = _READY
                        worker.last_error = None
                    else:
                        worker.kill()
                        worker.consecutive_failures += 1
                        worker.not_before = (
                            time.monotonic()
                            + self._backoff(worker.consecutive_failures)
                        )
                        worker.state = _DEAD
                        worker.last_error = error
                    self._state_cv.notify_all()
            with self._state_cv:
                if self._closed:
                    return
                self._state_cv.wait(0.05)

    def _backoff(self, consecutive_failures: int) -> float:
        return min(
            self.backoff_base * (2 ** max(consecutive_failures - 1, 0)),
            self.backoff_max,
        )

    def _declare_dead(self, worker: _Worker, reason: str) -> None:
        """Kill + mark a worker dead (state lock held by caller)."""
        worker.kill()
        worker.consecutive_failures += 1
        worker.not_before = time.monotonic() + self._backoff(
            worker.consecutive_failures
        )
        worker.deadline = math.inf
        worker.task = None
        worker.state = _DEAD
        worker.last_error = reason
        self._deaths += 1
        if "timeout" in reason:
            self._timeouts += 1
        self._state_cv.notify_all()

    # ------------------------------------------------------------------
    # Estimation (dispatch loop)
    # ------------------------------------------------------------------

    def estimate_batch(
        self, queries: Sequence[QueryPattern]
    ) -> np.ndarray:
        """Estimates in input order, surviving worker deaths mid-batch.

        Chunks are scattered over ready workers; a chunk stranded by a
        crash or timeout re-queues onto a sibling (bounded by
        :data:`MAX_CHUNK_RETRIES`).  Raises :class:`NoWorkersError` only
        when every slot is permanently failed — the layer above routes
        that to the fallback estimator.
        """
        queries = list(queries)
        if not queries:
            return np.zeros(0, dtype=np.float64)
        with self._dispatch_lock:
            return self._dispatch(queries)

    def _dispatch(self, queries: List[QueryPattern]) -> np.ndarray:
        workers = self._workers
        chunk_size = max(1, math.ceil(len(queries) / len(workers)))
        tasks: Deque[Tuple[int, List[QueryPattern], int]] = deque(
            (offset, queries[offset:offset + chunk_size], 0)
            for offset in range(0, len(queries), chunk_size)
        )
        values = np.empty(len(queries), dtype=np.float64)
        outstanding: Dict[int, _Worker] = {}  # offset -> worker
        pending_error: Optional[BaseException] = None

        def requeue(worker: _Worker, reason: str) -> None:
            nonlocal pending_error
            offset, chunk, retries = worker.task
            outstanding.pop(offset, None)
            self._declare_dead(worker, reason)
            self._chunk_retries += 1
            if retries + 1 > self.MAX_CHUNK_RETRIES:
                pending_error = pending_error or SupervisorError(
                    f"chunk at offset {offset} failed "
                    f"{retries + 1} times; last worker error: {reason}"
                )
            elif pending_error is None:
                tasks.append((offset, chunk, retries + 1))

        while tasks or outstanding:
            # Assign queued chunks to ready workers.
            with self._state_cv:
                for worker in workers:
                    if not tasks or pending_error is not None:
                        break
                    if worker.state != _READY:
                        continue
                    task = tasks.popleft()
                    worker.task = task
                    worker.deadline = (
                        time.monotonic() + self.request_timeout
                    )
                    worker.state = _BUSY
                    try:
                        worker.conn.send(
                            ("estimate", task[0], task[1])
                        )
                    except OSError:
                        requeue(worker, "send failed (worker gone)")
                        continue
                    outstanding[task[0]] = worker
                if pending_error is not None and not outstanding:
                    break
                if not outstanding:
                    # Nothing in flight and nothing assignable: either
                    # every slot is permanently failed, or restarts are
                    # pending — wait for the supervisor.
                    if all(w.state == _FAILED for w in workers):
                        raise NoWorkersError(
                            "all serving workers are dead and the "
                            f"restart budget ({self.restart_budget}) "
                            "is exhausted"
                        )
                    self._state_cv.wait(0.1)
                    continue
            busy = list(outstanding.values())
            ready_conns = set(
                _conn_wait([w.conn for w in busy], timeout=0.05)
            )
            now = time.monotonic()
            with self._state_cv:
                for worker in busy:
                    if worker.conn in ready_conns:
                        try:
                            offset, chunk_values, error = (
                                worker.conn.recv()
                            )
                        except (EOFError, OSError):
                            requeue(worker, "worker process crashed")
                            continue
                        outstanding.pop(offset, None)
                        worker.task = None
                        worker.deadline = math.inf
                        worker.consecutive_failures = 0
                        worker.state = _READY
                        self._state_cv.notify_all()
                        if error is not None:
                            kind, text = error
                            if pending_error is None:
                                if kind == "estimation":
                                    pending_error = EstimationError(
                                        text
                                    )
                                else:
                                    pending_error = ServingWorkerError(
                                        "estimation worker failed on "
                                        f"chunk at offset {offset}:\n"
                                        f"{text}"
                                    )
                        else:
                            values[
                                offset:offset + len(chunk_values)
                            ] = chunk_values
                    elif worker.deadline < now:
                        requeue(
                            worker,
                            f"request timeout "
                            f"({self.request_timeout:.1f}s) — worker "
                            "hung",
                        )
                    elif (
                        worker.process is None
                        or not worker.process.is_alive()
                    ):
                        requeue(worker, "worker process died")
        if pending_error is not None:
            raise pending_error
        return values

    # ------------------------------------------------------------------
    # Hot reload (blue-green worker set swap)
    # ------------------------------------------------------------------

    def reload(
        self,
        checkpoint_dir: Union[str, Path],
        snapshot_dir: Union[str, Path, None] = None,
    ) -> int:
        """Swap every worker onto *checkpoint_dir* with zero downtime.

        A complete new set is spawned and handshaked while the old set
        keeps serving; the active-set pointer then flips between
        batches (under the dispatch lock), and the old set is stopped.
        Any new-worker failure aborts the swap with the old set
        untouched.  Returns the new worker-set generation.

        *snapshot_dir* additionally re-attaches the new set to a
        different snapshot — the maintenance path, which publishes a
        fresh snapshot with every checkpoint generation because a
        fine-tuned checkpoint only gate-checks against the graph it
        was fine-tuned on.  The old set keeps serving the old snapshot
        until the flip, and a failed spawn restores it for restarts.
        """
        old_snapshot = self.snapshot_dir
        if snapshot_dir is not None:
            self.snapshot_dir = str(snapshot_dir)
        try:
            new_workers = self._spawn_set(str(checkpoint_dir))
        except BaseException:
            self.snapshot_dir = old_snapshot
            raise
        with self._dispatch_lock:
            with self._state_cv:
                old_workers = self._workers
                self._workers = new_workers
                self.checkpoint_dir = str(checkpoint_dir)
                self._set_generation += 1
                generation = self._set_generation
                self._state_cv.notify_all()
        self._stop_set(old_workers)
        return generation

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        with self._state_cv:
            return {
                "workers": [
                    {
                        "id": w.id,
                        "state": w.state,
                        "alive": w.state in (_READY, _BUSY, _STARTING),
                        "restarts": w.restarts,
                        "last_error": (
                            w.last_error.splitlines()[-1]
                            if w.last_error
                            else None
                        ),
                    }
                    for w in self._workers
                ],
                "worker_set_generation": self._set_generation,
                "restarts_used": self._restarts_used,
                "restart_budget": self.restart_budget,
                "deaths": self._deaths,
                "timeouts": self._timeouts,
                "chunk_retries": self._chunk_retries,
                "request_timeout_s": self.request_timeout,
            }

    def close(self) -> None:
        with self._state_cv:
            if self._closed:
                return
            self._closed = True
            workers = self._workers
            self._state_cv.notify_all()
        self._supervisor.join(timeout=5.0)
        self._stop_set(workers)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe schedule.

    CLOSED counts consecutive primary failures; at
    ``failure_threshold`` it OPENs and stays open for
    ``reset_timeout_s``, after which the next request becomes the
    HALF_OPEN probe: its success closes the breaker, its failure
    re-opens it for another full window.  ``clock`` is injectable so
    tests drive the schedule deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def is_open(self) -> bool:
        return self.state != BREAKER_CLOSED

    def route(self) -> str:
        """``"primary"`` or ``"fallback"`` for the next request."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return "primary"
            if (
                self._state == BREAKER_OPEN
                and not self._probe_in_flight
                and self._clock() - self._opened_at
                >= self.reset_timeout_s
            ):
                self._state = BREAKER_HALF_OPEN
                self._probe_in_flight = True
                return "primary"  # the half-open probe
            return "fallback"

    def record_success(self) -> None:
        with self._lock:
            self._state = BREAKER_CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            was_probe = self._probe_in_flight
            self._probe_in_flight = False
            if (
                was_probe
                or self._state == BREAKER_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                if self._state != BREAKER_OPEN:
                    self._opens += 1
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()

    def reset(self) -> None:
        self.record_success()

    def state_dict(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout_s": self.reset_timeout_s,
                "opens": self._opens,
            }


#: failure types meaning "the primary serving path itself is down" —
#: fall back immediately instead of burning requests on 500s while the
#: breaker counts to its threshold.
_INFRASTRUCTURE_ERRORS = (SupervisorError, ServingWorkerError)


class ResilientBackend:
    """The scheduler-facing backend with degradation and generations.

    Wraps a primary ``estimate_batch`` callable (a framework or a
    :class:`SupervisedPool`) and an optional fallback.  Calls return
    ``(values, meta)`` where ``meta`` records the checkpoint
    ``generation`` that computed the batch, whether it was ``degraded``
    (fallback-served), and which ``backend`` ran — captured atomically
    with the callable, so hot-reload can never mislabel an in-flight
    batch.

    Failure policy:

    - :class:`~repro.core.framework.EstimationError` passes through
      untouched (it is a per-query 422, not a model-path failure);
    - infrastructure errors (pool dead) fall back immediately;
    - other primary failures propagate while the breaker is closed —
      the scheduler's per-request isolation then contains poison
      queries — and each one feeds the breaker; once it opens, all
      traffic is served by the fallback (``degraded: true``) until a
      half-open probe succeeds.
    """

    def __init__(
        self,
        primary: Callable[[List], np.ndarray],
        fallback: Optional[Callable[[List], np.ndarray]] = None,
        breaker: Optional[CircuitBreaker] = None,
        faults: Optional[FaultSpec] = None,
        generation: int = 1,
    ) -> None:
        self._lock = threading.Lock()
        self._primary = primary
        self._fallback = fallback
        self.breaker = breaker or CircuitBreaker()
        self._injector = (
            FaultInjector(faults) if faults and faults.enabled else None
        )
        self._generation = generation
        self._active: Dict[int, int] = {}  # id(fn) -> in-flight calls
        self._primary_batches = 0
        self._degraded_batches = 0

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    # -- call path ------------------------------------------------------

    def __call__(
        self, queries: Sequence[QueryPattern]
    ) -> Tuple[np.ndarray, dict]:
        with self._lock:
            fn = self._primary
            generation = self._generation
        route = (
            self.breaker.route()
            if self._fallback is not None
            else "primary"
        )
        if route != "primary":
            return self._run_fallback(queries, generation, cause=None)
        try:
            self._track(fn, +1)
            try:
                if self._injector is not None:
                    self._injector.on_request(queries)
                values = fn(queries)
            finally:
                self._track(fn, -1)
        except EstimationError:
            raise
        except Exception as exc:  # noqa: BLE001 — classified below
            self.breaker.record_failure()
            if self._fallback is None:
                raise
            if (
                isinstance(exc, _INFRASTRUCTURE_ERRORS)
                or self.breaker.is_open
            ):
                return self._run_fallback(
                    queries, generation, cause=exc
                )
            raise
        self.breaker.record_success()
        with self._lock:
            self._primary_batches += 1
        return values, {
            "generation": generation,
            "degraded": False,
            "backend": "primary",
        }

    def _run_fallback(
        self,
        queries: Sequence[QueryPattern],
        generation: int,
        cause: Optional[BaseException],
    ) -> Tuple[np.ndarray, dict]:
        try:
            values = self._fallback(queries)
        except Exception:
            if cause is not None:
                raise cause
            raise
        with self._lock:
            self._degraded_batches += 1
        return values, {
            "generation": generation,
            "degraded": True,
            "backend": "fallback",
        }

    def _track(self, fn, delta: int) -> None:
        with self._lock:
            key = id(fn)
            count = self._active.get(key, 0) + delta
            if count <= 0:
                self._active.pop(key, None)
            else:
                self._active[key] = count

    # -- reload support -------------------------------------------------

    def swap_primary(self, fn: Callable) -> Callable:
        """Atomically install a new primary; bumps the generation and
        closes the breaker (a fresh checkpoint earns a fresh chance).
        Returns the previous primary for draining."""
        with self._lock:
            old = self._primary
            self._primary = fn
            self._generation += 1
        self.breaker.reset()
        return old

    def wait_idle(self, fn: Callable, timeout: float = 30.0) -> bool:
        """Block until no in-flight call uses *fn* (drain-before-close);
        True when drained, False on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._active.get(id(fn), 0) == 0:
                    return True
            time.sleep(0.01)
        with self._lock:
            return self._active.get(id(fn), 0) == 0

    def stats(self) -> dict:
        with self._lock:
            snapshot = {
                "generation": self._generation,
                "primary_batches": self._primary_batches,
                "degraded_batches": self._degraded_batches,
                "fallback_available": self._fallback is not None,
            }
        snapshot["circuit_breaker"] = self.breaker.state_dict()
        return snapshot


# ----------------------------------------------------------------------
# Runtime orchestrator (what /admin/reload and /healthz talk to)
# ----------------------------------------------------------------------

class ServingRuntime:
    """Ties service, scheduler, backend, pool, and artifacts together.

    The HTTP layer delegates here for everything beyond a plain
    estimate: hot-reload, admission, and fault-tolerance introspection.
    """

    def __init__(
        self,
        service,
        scheduler,
        backend: ResilientBackend,
        pool: Optional[SupervisedPool] = None,
        admission: Optional[ShapeManifest] = None,
        artifact: Optional[CheckpointArtifact] = None,
        checkpoint_dir: Union[str, Path, None] = None,
        admission_enabled: bool = True,
        freshness_policy=None,
    ) -> None:
        self.service = service
        self.scheduler = scheduler
        self.backend = backend
        self.pool = pool
        self.artifact = artifact
        self.admission_enabled = admission_enabled
        self.admission = admission if admission_enabled else None
        self.checkpoint_dir = (
            str(checkpoint_dir) if checkpoint_dir is not None else None
        )
        #: declared max-staleness thresholds for the /healthz freshness
        #: block (a :class:`repro.maintain.freshness.FreshnessPolicy`;
        #: None uses that module's defaults).
        self.freshness_policy = freshness_policy
        self._reload_lock = threading.Lock()
        self.reloads = 0

    @property
    def generation(self) -> int:
        return self.backend.generation

    # -- hot reload -----------------------------------------------------

    def reload(
        self,
        checkpoint_dir: Union[str, Path, None] = None,
        snapshot_dir: Union[str, Path, None] = None,
    ) -> dict:
        """Atomically swap the serving checkpoint; returns a summary.

        Gate order: artifact schema/checksum check and a full parent
        load first (typed :class:`~repro.serve.artifacts.ArtifactError`
        / :class:`~repro.core.framework.CheckpointError` rejection with
        the old framework untouched), then the worker-set/backend swap.
        In-flight batches drain against the old framework; requests
        submitted after this method returns are answered by the new
        generation.

        *snapshot_dir* swaps the served graph along with the model —
        the maintenance hand-off, where each published generation pairs
        a fine-tuned checkpoint with the snapshot it was tuned against.
        The new snapshot is verified and the checkpoint gate-checked
        against it before anything is swapped; on any failure the old
        snapshot, framework, and worker set keep serving.  The
        degradation fallback keeps its construction-time store — it
        stays available mid-swap, at worst one generation stale until
        the process restarts or the caller rebuilds it.
        """
        with self._reload_lock:
            path = (
                str(checkpoint_dir)
                if checkpoint_dir is not None
                else self.checkpoint_dir
            )
            if path is None:
                raise ReloadError(
                    "no checkpoint directory to reload from; start "
                    "the server with --checkpoint/--save-checkpoint "
                    'or POST {"checkpoint": "<dir>"}'
                )
            if snapshot_dir is not None:
                from repro.rdf.store import TripleStore

                store = TripleStore.load_snapshot(str(snapshot_dir))
                if store.dictionary is None:
                    raise ReloadError(
                        f"snapshot at {snapshot_dir} has no term "
                        "dictionary; queries could not be parsed"
                    )
            else:
                store = self.service.store
            framework, artifact = load_checkpoint(path, store)
            if self.pool is not None:
                self.pool.reload(path, snapshot_dir=snapshot_dir)
                new_fn = self.pool.estimate_batch
            else:
                new_fn = framework.estimate_batch
            self.backend.swap_primary(new_fn)
            self.service.store = store
            self.service.framework = framework
            self.artifact = artifact
            if self.admission_enabled:
                self.admission = artifact.shapes
            self.checkpoint_dir = path
            self.reloads += 1
            summary = {
                "generation": self.generation,
                "checkpoint": path,
                "schema_version": artifact.schema_version,
            }
            if snapshot_dir is not None:
                summary["snapshot"] = str(snapshot_dir)
            return summary

    # -- introspection --------------------------------------------------

    def freshness(self) -> dict:
        """The dbt-sources-style freshness verdict for ``/healthz``.

        The watermark stamped into the active checkpoint (by
        :mod:`repro.maintain`) is compared against the served store
        under the declared thresholds; a pre-maintenance checkpoint
        falls back to the artifact's store fingerprint (run/generation
        unknown, triple lag still measurable); a startup-fitted server
        has no materialization record at all and reports ``unknown``.
        """
        from repro.maintain.freshness import (
            check_freshness,
            watermark_from_fingerprint,
        )
        from repro.maintain.watermark import (
            WatermarkError,
            read_watermark,
        )

        watermark = None
        if self.checkpoint_dir is not None:
            try:
                watermark = read_watermark(self.checkpoint_dir)
            except WatermarkError:
                watermark = None
        if watermark is None and self.artifact is not None:
            watermark = watermark_from_fingerprint(
                self.artifact.store
            )
        return check_freshness(
            watermark, self.service.store, self.freshness_policy
        ).to_dict()

    def healthz_extras(self) -> dict:
        breaker = self.backend.breaker.state_dict()
        payload = {
            "checkpoint_generation": self.generation,
            "checkpoint_schema_version": (
                self.artifact.schema_version
                if self.artifact is not None
                else None
            ),
            "degraded": breaker["state"] != BREAKER_CLOSED,
            "circuit_breaker": breaker,
            "backend": self.backend.stats(),
            "reloads": self.reloads,
            "freshness": self.freshness(),
        }
        if self.admission is not None:
            payload["admitted_shapes"] = self.admission.to_dict()
        if self.pool is not None:
            payload["pool"] = self.pool.stats()
        else:
            payload["pool"] = {"mode": "in-process"}
        return payload

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
