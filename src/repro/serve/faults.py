"""Deterministic fault injection for the serving chaos suite.

A fault-tolerance guarantee that is never exercised is aspirational;
:class:`FaultInjector` makes the serving layer's guarantees testable by
injecting the failure modes a production fleet actually hits, on a
deterministic counter-based schedule (no RNG — a chaos test that flakes
teaches nothing):

- **worker kills** (``kill_every``): the worker process calls
  ``os._exit`` mid-request — a segfaulting BLAS, an OOM kill;
- **hangs** (``hang_every``): the worker sleeps past the supervisor's
  per-request timeout — a deadlocked thread, a stuck NFS read;
- **response delays** (``delay_ms``): uniform slowdown for latency and
  timeout-margin testing;
- **model-path failures** (``fail_every``): the in-process backend
  raises — an assertion deep in the model, a poisoned cache — which is
  what drives the circuit breaker to degraded mode;
- **poison queries** (``poison_predicate``): any query touching one
  designated predicate raises, modelling an input that reproducibly
  crashes the model while every other query is fine (the scheduler's
  per-request isolation must contain it).

Counters are per-injector (= per worker process, or per in-process
backend), so "every Nth request" is exact regardless of interleaving.

:func:`corrupt_checkpoint` is the flip side for artifact testing:
deterministic on-disk damage (truncated weights, garbage manifest, a
schema version from the future) that the artifact gate must reject with
a typed error.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union


class InjectedFault(RuntimeError):
    """An exception raised on purpose by the fault injector."""


class FaultSpecError(ValueError):
    """A fault spec that cannot be parsed or is self-contradictory."""


@dataclass(frozen=True)
class FaultSpec:
    """Config-driven fault plan (all counters 0 / None = disabled).

    ``*_every`` fields count **requests seen by one injector**: a worker
    with ``kill_every=5`` exits on its 5th, (would-be) 10th, ... request.
    """

    kill_every: int = 0
    hang_every: int = 0
    hang_s: float = 30.0
    delay_ms: float = 0.0
    fail_every: int = 0
    poison_predicate: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("kill_every", "hang_every", "fail_every"):
            if getattr(self, name) < 0:
                raise FaultSpecError(f"{name} must be >= 0")
        if self.delay_ms < 0 or self.hang_s < 0:
            raise FaultSpecError("delays must be >= 0")

    @property
    def enabled(self) -> bool:
        return bool(
            self.kill_every
            or self.hang_every
            or self.delay_ms
            or self.fail_every
            or self.poison_predicate is not None
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, spec: Optional[dict]) -> "FaultSpec":
        if spec is None:
            return cls()
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(spec) - known
        if unknown:
            raise FaultSpecError(
                f"unknown fault spec field(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**spec)

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultSpecError(f"fault spec is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise FaultSpecError("fault spec must be a JSON object")
        return cls.from_dict(payload)


class FaultInjector:
    """Applies a :class:`FaultSpec` on a deterministic request counter.

    One injector lives in each worker process (created from the spec
    shipped with the worker args) and one in each in-process backend;
    ``on_request(queries)`` is called once per estimation request/chunk
    *before* the model runs.
    """

    def __init__(self, spec: Optional[FaultSpec] = None) -> None:
        self.spec = spec or FaultSpec()
        self.requests_seen = 0

    def on_request(self, queries: Sequence = ()) -> None:
        """Apply due faults; may exit the process, sleep, or raise."""
        spec = self.spec
        if not spec.enabled:
            return
        self.requests_seen += 1
        n = self.requests_seen
        if spec.poison_predicate is not None and any(
            tp.p == spec.poison_predicate
            for query in queries
            for tp in getattr(query, "triples", ())
        ):
            raise InjectedFault(
                f"poison query: predicate {spec.poison_predicate}"
            )
        if spec.kill_every and n % spec.kill_every == 0:
            # A hard exit, not an exception: models the worker dying
            # (OOM kill, native crash) with no chance to answer.
            os._exit(13)
        if spec.hang_every and n % spec.hang_every == 0:
            time.sleep(spec.hang_s)
        if spec.delay_ms:
            time.sleep(spec.delay_ms / 1000.0)
        if spec.fail_every and n % spec.fail_every == 0:
            raise InjectedFault(
                f"injected model-path failure (request {n})"
            )


#: recognised :func:`corrupt_checkpoint` modes.
CORRUPTION_MODES = (
    "truncate-model",
    "garbage-manifest",
    "garbage-artifact",
    "future-schema",
)


def corrupt_checkpoint(
    path: Union[str, Path], mode: str = "truncate-model"
) -> Path:
    """Deterministically damage a checkpoint directory (tests/chaos).

    - ``truncate-model``: cut the first model ``.npz`` in half — the
      artifact gate's content checksum must catch it;
    - ``garbage-manifest``: overwrite ``manifest.json`` with non-JSON;
    - ``garbage-artifact``: overwrite ``artifact.json`` with non-JSON;
    - ``future-schema``: rewrite ``artifact.json`` claiming a schema
      version this reader does not support (roll-forward from a newer
      fleet) — must be rejected as *incompatible*, not corrupt.

    Returns the damaged file's path.
    """
    path = Path(path)
    if mode == "truncate-model":
        models = sorted(path.glob("model_*.npz"))
        if not models:
            raise FileNotFoundError(f"no model files under {path}")
        data = models[0].read_bytes()
        models[0].write_bytes(data[: max(1, len(data) // 2)])
        return models[0]
    if mode == "garbage-manifest":
        target = path / "manifest.json"
        target.write_text("{definitely not json\n")
        return target
    if mode == "garbage-artifact":
        target = path / "artifact.json"
        target.write_text("{definitely not json\n")
        return target
    if mode == "future-schema":
        target = path / "artifact.json"
        payload = {}
        if target.is_file():
            try:
                payload = json.loads(target.read_text())
            except json.JSONDecodeError:
                payload = {}
        payload["schema_version"] = 999
        target.write_text(json.dumps(payload, indent=2) + "\n")
        return target
    raise ValueError(
        f"unknown corruption mode {mode!r}; known: {CORRUPTION_MODES}"
    )
