"""Micro-batched serving of the estimation API (``python -m repro serve``).

The execution-phase story of the paper at production shape: a query
optimizer (here: any HTTP client) asks for cardinalities at high
frequency, and the server answers through the same
:class:`~repro.core.estimator.Estimator` protocol every library caller
uses — ``estimate_batch(queries) -> np.ndarray`` — with the layers on
top:

- :class:`EstimatorService` (:mod:`repro.serve.service`) — loads a
  read-only memory-mapped store snapshot plus an ``LMKG.save``
  checkpoint (or fits deterministic defaults), and parses SPARQL
  request text;
- :class:`BatchScheduler` (:mod:`repro.serve.scheduler`) — coalesces
  concurrent requests into batched calls under a max-batch/max-delay
  policy, with queue-full load shedding;
- the HTTP endpoint (:mod:`repro.serve.http`) — a stdlib
  ``ThreadingHTTPServer`` exposing ``POST /estimate``,
  ``POST /admin/reload``, ``GET /healthz``, and ``GET /stats``;
- the fault-tolerance layer (:mod:`repro.serve.supervisor`) —
  :class:`SupervisedPool` (supervised workers with per-request
  timeouts, backoff restarts, and sibling retry),
  :class:`CircuitBreaker` + :class:`ResilientBackend` (graceful
  degradation onto the independence baseline), and
  :class:`ServingRuntime` (zero-downtime checkpoint hot-reload);
- checkpoint integrity (:mod:`repro.serve.artifacts`) — schema-versioned
  artifacts with a compatibility gate and per-file checksums;
- admission control (:mod:`repro.serve.admission`) — the trained-shape
  manifest that 422s uncovered query shapes at parse time;
- chaos tooling (:mod:`repro.serve.faults`) — deterministic fault
  injection (kills, hangs, delays, poison queries, checkpoint
  corruption) for the chaos test suite.
"""

from repro.serve.admission import AdmissionError, ShapeManifest
from repro.serve.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    ArtifactError,
    CheckpointArtifact,
    load_artifact,
    load_checkpoint,
    save_checkpoint,
    write_artifact,
)
from repro.serve.faults import (
    CORRUPTION_MODES,
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    InjectedFault,
    corrupt_checkpoint,
)
from repro.serve.http import (
    EstimatorHTTPServer,
    make_server,
)
from repro.serve.scheduler import (
    BatchScheduler,
    QueueFullError,
    SchedulerClosedError,
)
from repro.serve.service import (
    DEFAULT_FIT_EPOCHS,
    DEFAULT_FIT_HIDDEN,
    DEFAULT_FIT_QUERIES,
    DEFAULT_FIT_SEED,
    DEFAULT_FIT_SHAPES,
    EstimatorService,
    FitDefaults,
    ServiceError,
    default_framework,
)
from repro.serve.supervisor import (
    CircuitBreaker,
    NoWorkersError,
    ReloadError,
    ResilientBackend,
    ServingRuntime,
    ServingWorkerError,
    SupervisedPool,
    SupervisorError,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "AdmissionError",
    "ArtifactError",
    "BatchScheduler",
    "CORRUPTION_MODES",
    "CheckpointArtifact",
    "CircuitBreaker",
    "DEFAULT_FIT_EPOCHS",
    "DEFAULT_FIT_HIDDEN",
    "DEFAULT_FIT_QUERIES",
    "DEFAULT_FIT_SEED",
    "DEFAULT_FIT_SHAPES",
    "EstimatorHTTPServer",
    "EstimatorService",
    "FaultInjector",
    "FaultSpec",
    "FaultSpecError",
    "FitDefaults",
    "InjectedFault",
    "NoWorkersError",
    "QueueFullError",
    "ReloadError",
    "ResilientBackend",
    "SUPPORTED_SCHEMA_VERSIONS",
    "SchedulerClosedError",
    "ServiceError",
    "ServingRuntime",
    "ServingWorkerError",
    "ShapeManifest",
    "SupervisedPool",
    "SupervisorError",
    "corrupt_checkpoint",
    "default_framework",
    "load_artifact",
    "load_checkpoint",
    "make_server",
    "save_checkpoint",
    "write_artifact",
]
