"""Micro-batched serving of the estimation API (``python -m repro serve``).

The execution-phase story of the paper at production shape: a query
optimizer (here: any HTTP client) asks for cardinalities at high
frequency, and the server answers through the same
:class:`~repro.core.estimator.Estimator` protocol every library caller
uses — ``estimate_batch(queries) -> np.ndarray`` — with three layers on
top:

- :class:`EstimatorService` (:mod:`repro.serve.service`) — loads a
  read-only memory-mapped store snapshot plus an ``LMKG.save``
  checkpoint (or fits deterministic defaults), and parses SPARQL
  request text;
- :class:`BatchScheduler` (:mod:`repro.serve.scheduler`) — coalesces
  concurrent requests into batched calls under a max-batch/max-delay
  policy, with queue-full load shedding;
- the HTTP endpoint (:mod:`repro.serve.http`) — a stdlib
  ``ThreadingHTTPServer`` exposing ``POST /estimate``,
  ``GET /healthz``, and ``GET /stats``;
- optionally :class:`ServingPool` (:mod:`repro.serve.pool`) — N worker
  processes attached to the one shared snapshot, the same machinery the
  parallel-labeling pool uses.
"""

from repro.serve.http import (
    EstimatorHTTPServer,
    make_server,
)
from repro.serve.pool import ServingPool, ServingWorkerError
from repro.serve.scheduler import (
    BatchScheduler,
    QueueFullError,
    SchedulerClosedError,
)
from repro.serve.service import (
    DEFAULT_FIT_EPOCHS,
    DEFAULT_FIT_HIDDEN,
    DEFAULT_FIT_QUERIES,
    DEFAULT_FIT_SEED,
    DEFAULT_FIT_SHAPES,
    EstimatorService,
    FitDefaults,
    ServiceError,
    default_framework,
)

__all__ = [
    "BatchScheduler",
    "DEFAULT_FIT_EPOCHS",
    "DEFAULT_FIT_HIDDEN",
    "DEFAULT_FIT_QUERIES",
    "DEFAULT_FIT_SEED",
    "DEFAULT_FIT_SHAPES",
    "EstimatorHTTPServer",
    "EstimatorService",
    "FitDefaults",
    "QueueFullError",
    "SchedulerClosedError",
    "ServiceError",
    "ServingPool",
    "ServingWorkerError",
    "default_framework",
    "make_server",
]
