"""Versioned checkpoint artifacts with a compatibility gate.

A serving fleet rolls forward and back across checkpoint *formats*, not
just weights: a node running last week's code must refuse next week's
checkpoint loudly, and a new node must keep reading last month's.  This
module gives every ``LMKG.save`` directory a schema-versioned
``artifact.json`` (the release-artifact idiom: each artifact declares
``schema_version``, and a reader carries an explicit set of versions it
can consume) recording

- the **artifact schema version** and the framework manifest format it
  wraps,
- a **content checksum per file** (CRC32 of ``manifest.json`` and every
  ``model_*.npz``), so bit rot and half-written copies are caught at the
  gate instead of deep inside ``np.load``,
- the **trained-shape manifest** (:mod:`repro.serve.admission`), so
  admission control works from the artifact alone without loading a
  single weight.

Every failure is a typed :class:`ArtifactError` whose ``reason`` is a
stable machine-readable code (``corrupt`` / ``incompatible`` /
``checksum`` / ``missing``) — a fleet can alert on *which* gate fired,
and the HTTP reload endpoint maps them to a structured 409.

Checkpoints written before this module (no ``artifact.json``) are
treated as **schema version 1**: :func:`load_artifact` synthesises a v1
record from ``manifest.json`` (no checksums, no shape manifest — those
are rebuilt from the loaded framework), which is what makes rolling
*forward* over a PR-4-era checkpoint work.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.serve.admission import ShapeManifest

ARTIFACT_FILENAME = "artifact.json"

#: the schema version this code writes.
ARTIFACT_SCHEMA_VERSION = 2

#: the schema versions this code can consume.  Version 1 is the implied
#: schema of pre-artifact checkpoints (manifest.json only).
SUPPORTED_SCHEMA_VERSIONS: Tuple[int, ...] = (1, 2)


class ArtifactError(RuntimeError):
    """A checkpoint artifact failed the gate.

    ``reason`` codes:

    - ``missing`` — no checkpoint at the path at all;
    - ``corrupt`` — artifact/manifest present but unreadable;
    - ``checksum`` — a checkpoint file does not match its recorded CRC;
    - ``incompatible`` — a schema version this reader does not support.
    """

    def __init__(self, message: str, reason: str = "corrupt") -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class CheckpointArtifact:
    """The parsed, gate-checked content of an ``artifact.json``."""

    schema_version: int
    checkpoint_dir: Path
    #: relative filename -> CRC32 (empty for synthesised v1 records).
    file_checksums: Dict[str, int] = field(default_factory=dict)
    #: trained-shape manifest (None for synthesised v1 records; rebuild
    #: it from the loaded framework).
    shapes: Optional[ShapeManifest] = None
    #: store fingerprint copied from the framework manifest (informational
    #: here; LMKG.load re-verifies it against the live store).
    store: Dict[str, object] = field(default_factory=dict)

    @property
    def legacy(self) -> bool:
        return self.schema_version < ARTIFACT_SCHEMA_VERSION


def _crc32(path: Path) -> int:
    crc = 0
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            crc = zlib.crc32(block, crc)
    return crc


def write_artifact(framework, path: Union[str, Path]) -> Path:
    """Write ``artifact.json`` for an already-saved checkpoint at *path*.

    Must run after ``framework.save(path)``; checksums cover every file
    the artifact schema tracks, and the artifact is written last so its
    presence marks a complete, gate-checkable checkpoint.
    """
    path = Path(path)
    manifest_path = path / "manifest.json"
    if not manifest_path.is_file():
        raise ArtifactError(
            f"no framework manifest at {manifest_path}; call "
            "framework.save() first (or use save_checkpoint())",
            reason="missing",
        )
    manifest = json.loads(manifest_path.read_text())
    tracked = ["manifest.json"] + sorted(
        entry["file"] for entry in manifest.get("models", [])
    )
    checksums = {name: _crc32(path / name) for name in tracked}
    payload = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "framework_manifest_version": manifest.get("version"),
        "file_checksums": checksums,
        "trained_shapes": ShapeManifest.from_framework(
            framework
        ).to_dict(),
        "store": manifest.get("store", {}),
    }
    artifact_path = path / ARTIFACT_FILENAME
    artifact_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return artifact_path


def load_artifact(path: Union[str, Path]) -> CheckpointArtifact:
    """Parse + gate-check the artifact at *path* (no weights loaded).

    Raises :class:`ArtifactError` with a typed ``reason`` on any gate
    failure; returns a synthesised v1 record for pre-artifact
    checkpoints.
    """
    path = Path(path)
    artifact_path = path / ARTIFACT_FILENAME
    manifest_path = path / "manifest.json"
    if not artifact_path.is_file():
        if not manifest_path.is_file():
            raise ArtifactError(
                f"no checkpoint at {path} (neither "
                f"{ARTIFACT_FILENAME} nor manifest.json)",
                reason="missing",
            )
        # Pre-artifact checkpoint: implied schema version 1.
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ArtifactError(
                f"corrupt framework manifest: {exc}", reason="corrupt"
            ) from exc
        return CheckpointArtifact(
            schema_version=1,
            checkpoint_dir=path,
            store=manifest.get("store", {}),
        )
    try:
        payload = json.loads(artifact_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(
            f"corrupt artifact at {artifact_path}: {exc}",
            reason="corrupt",
        ) from exc
    if not isinstance(payload, dict) or "schema_version" not in payload:
        raise ArtifactError(
            f"artifact at {artifact_path} has no schema_version",
            reason="corrupt",
        )
    version = payload["schema_version"]
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ArtifactError(
            f"checkpoint artifact schema version {version!r} is not "
            f"supported by this reader (supports "
            f"{list(SUPPORTED_SCHEMA_VERSIONS)}); roll the serving "
            "fleet forward, or re-save the checkpoint with this "
            "version",
            reason="incompatible",
        )
    checksums = payload.get("file_checksums", {})
    if not isinstance(checksums, dict):
        raise ArtifactError(
            "artifact file_checksums must be an object",
            reason="corrupt",
        )
    for name, expected in sorted(checksums.items()):
        target = path / name
        if not target.is_file():
            raise ArtifactError(
                f"checkpoint file {name} listed in the artifact is "
                "missing",
                reason="checksum",
            )
        actual = _crc32(target)
        if actual != expected:
            raise ArtifactError(
                f"checkpoint file {name} fails its content checksum "
                f"(recorded {expected}, actual {actual}) — the "
                "checkpoint is corrupt or was partially copied",
                reason="checksum",
            )
    shapes = payload.get("trained_shapes")
    return CheckpointArtifact(
        schema_version=int(version),
        checkpoint_dir=path,
        file_checksums={
            str(k): int(v) for k, v in checksums.items()
        },
        shapes=(
            ShapeManifest.from_dict(shapes)
            if isinstance(shapes, dict)
            else None
        ),
        store=payload.get("store", {}),
    )


def save_checkpoint(framework, path: Union[str, Path]) -> Path:
    """``framework.save(path)`` plus the versioned artifact record."""
    framework.save(path)
    return write_artifact(framework, path)


def load_checkpoint(
    path: Union[str, Path], store, allow_stale_store: bool = False
):
    """Gate-check then load a framework checkpoint.

    Returns ``(framework, artifact)``.  The artifact gate runs first —
    a corrupt or incompatible checkpoint is rejected with a typed
    :class:`ArtifactError` before any weight file is opened; framework-
    level failures (graph fingerprint mismatch, unreadable npz that a
    v1 artifact had no checksum for) still surface as
    :class:`~repro.core.framework.CheckpointError`.
    ``allow_stale_store`` forwards to :meth:`LMKG.load` — the
    incremental-maintenance path, which loads a checkpoint against a
    graph that has drifted since training in order to fine-tune it.
    """
    from repro.core.framework import LMKG

    artifact = load_artifact(path)
    framework = LMKG.load(
        path, store, allow_stale_store=allow_stale_store
    )
    if artifact.shapes is None:
        artifact = CheckpointArtifact(
            schema_version=artifact.schema_version,
            checkpoint_dir=artifact.checkpoint_dir,
            file_checksums=artifact.file_checksums,
            shapes=ShapeManifest.from_framework(framework),
            store=artifact.store,
        )
    return framework, artifact
