"""Multi-worker estimation over one shared memory-mapped snapshot.

The single-process server answers through the parent's framework; past
one core's worth of traffic, :class:`ServingPool` spreads batches across
N worker processes exactly the way the labeling pool
(:mod:`repro.rdf.parallel`) does:

- every worker attaches to the **same on-disk snapshot** via
  ``TripleStore.load_snapshot(..., read_only=True)`` — the twelve
  permutation columns are shared read-only pages, resident once across
  the whole pool, and any accidental in-worker mutation raises
  ``ReadOnlyStoreError``;
- every worker rebuilds the framework from the **same ``LMKG.save``
  checkpoint directory** — identical weights, no model pickling;
- a batch is cut into per-worker chunks, estimated concurrently, and
  reassembled by offset, so ordering matches the in-process path.

Worker failures surface as :class:`ServingWorkerError` carrying the
worker-side traceback — never a silently shorter result vector.

LMKG-S answers are row-independent, so pooled results match in-process
results numerically; LMKG-U's batched particle sweep shares an RNG
stream per chunk, so chunking changes individual draws within sampling
noise (same caveat as ``LMKGU.estimate`` vs ``estimate_batch``).
"""

from __future__ import annotations

import math
import multiprocessing
import traceback
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.framework import EstimationError
from repro.rdf.parallel import resolve_context
from repro.rdf.pattern import QueryPattern

#: Process-global service state, populated once per worker by
#: :func:`_init_worker` so tasks carry only (offset, queries).
_WORKER_FRAMEWORK = None

#: Traceback of a failed worker attach, reported by the first chunk
#: (an initializer that raised would make the pool respawn forever —
#: same rationale as the labeling pool).
_WORKER_INIT_ERROR: Optional[str] = None


class ServingWorkerError(RuntimeError):
    """An estimation worker failed; carries the worker traceback."""


def _init_worker(snapshot_dir: str, checkpoint_dir: str) -> None:
    """Attach this worker to the shared snapshot + checkpoint.

    ``verify=False``/``load_dictionary=False`` as in the labeling pool:
    the parent verified the snapshot before starting the pool, and
    estimation never touches the term dictionary (parsing happens in the
    parent).
    """
    global _WORKER_FRAMEWORK, _WORKER_INIT_ERROR
    try:
        from repro.core.framework import LMKG
        from repro.rdf.store import TripleStore

        store = TripleStore.load_snapshot(
            snapshot_dir,
            verify=False,
            read_only=True,
            load_dictionary=False,
        )
        _WORKER_FRAMEWORK = LMKG.load(checkpoint_dir, store)
    except BaseException:
        _WORKER_FRAMEWORK = None
        _WORKER_INIT_ERROR = traceback.format_exc()


def _estimate_chunk(task: tuple) -> tuple:
    """(offset, queries) -> (offset, estimates-list, error).

    *error* is None on success, else a ``(kind, text)`` pair:
    ``("estimation", message)`` for an unestimable query — the parent
    re-raises it as :class:`EstimationError` so the HTTP layer can
    answer 422 exactly as in single-worker mode — and
    ``("crash", traceback)`` for everything else.
    """
    offset, queries = task
    try:
        if _WORKER_FRAMEWORK is None:
            raise RuntimeError(
                "worker failed to attach to snapshot/checkpoint:\n"
                f"{_WORKER_INIT_ERROR or '(no attach was attempted)'}"
            )
        values = _WORKER_FRAMEWORK.estimate_batch(queries)
        return (offset, values.tolist(), None)
    except EstimationError as exc:
        return (offset, None, ("estimation", str(exc)))
    except BaseException:
        return (offset, None, ("crash", traceback.format_exc()))


class ServingPool:
    """N estimation processes sharing one snapshot and checkpoint."""

    def __init__(
        self,
        snapshot_dir: Union[str, Path],
        checkpoint_dir: Union[str, Path],
        workers: int,
        mp_context: Union[
            str, multiprocessing.context.BaseContext, None
        ] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        context = resolve_context(mp_context)
        self._pool = context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(str(snapshot_dir), str(checkpoint_dir)),
        )
        # Surface attach failures at startup, not on the first request.
        # One empty probe per worker, chunksize 1: with every worker
        # idle each probe lands on a different process (best-effort —
        # Pool cannot target workers; a failure that still slips
        # through surfaces as ServingWorkerError on the first chunk the
        # broken worker receives).
        probes = self._pool.map(
            _estimate_chunk,
            [(i, []) for i in range(workers)],
            chunksize=1,
        )
        failed = [p for p in probes if p[2] is not None]
        if failed:
            self._pool.terminate()
            raise ServingWorkerError(
                f"serving worker failed to start:\n{failed[0][2][1]}"
            )

    def estimate_batch(
        self, queries: Sequence[QueryPattern]
    ) -> np.ndarray:
        """Estimates in input order, sharded across the pool."""
        queries = list(queries)
        if not queries:
            return np.zeros(0, dtype=np.float64)
        chunk_size = max(1, math.ceil(len(queries) / self.workers))
        tasks = [
            (start, queries[start:start + chunk_size])
            for start in range(0, len(queries), chunk_size)
        ]
        values = np.empty(len(queries), dtype=np.float64)
        for offset, chunk_values, error in self._pool.imap_unordered(
            _estimate_chunk, tasks
        ):
            if error is not None:
                kind, text = error
                if kind == "estimation":
                    raise EstimationError(text)
                raise ServingWorkerError(
                    f"estimation worker failed on chunk at offset "
                    f"{offset}:\n{text}"
                )
            values[offset:offset + len(chunk_values)] = chunk_values
        return values

    def close(self) -> None:
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
