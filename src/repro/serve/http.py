"""The JSON-over-HTTP estimation endpoint (stdlib only).

``ThreadingHTTPServer`` gives one handler thread per connection; every
handler parses its request and blocks on the shared
:class:`~repro.serve.scheduler.BatchScheduler`, which coalesces the
concurrent requests into batched ``estimate_batch`` calls.  Routes:

- ``POST /estimate`` — body ``{"queries": ["SELECT ... WHERE {...}"]}``;
  answers ``{"estimates": [...], "count": N, "generation": G,
  "degraded": bool}``.  Malformed JSON, a missing/empty/ill-typed
  ``queries`` field, or unparseable SPARQL is a 400 with
  ``{"error": ...}``; an unestimable query is a 422 — at parse time with
  ``reason: "uncovered_shape"`` when admission control knows the shape
  is untrained, else post-execution with ``reason:
  "estimation_failed"``; a full scheduler queue is a 429 whose
  ``Retry-After`` header and ``retry_after_s`` field are derived from
  the live queue depth / drain rate (see
  :meth:`~repro.serve.scheduler.BatchScheduler.retry_after_hint`), with
  ``reason: "queue_full"``.
- ``POST /admin/reload`` — body ``{}``, ``{"checkpoint": "<dir>"}``, or
  ``{"checkpoint": "<dir>", "snapshot": "<dir>"}``; hot-swaps the
  serving checkpoint — and, with ``snapshot``, the served graph (the
  maintenance hand-off) — with zero downtime (see
  :class:`~repro.serve.supervisor.ServingRuntime.reload`).  A checkpoint
  that fails the artifact gate is a 409 with the typed ``reason``
  (``corrupt`` / ``checksum`` / ``incompatible`` / ...) and the old
  checkpoint keeps serving; servers started without a runtime answer
  501.
- ``GET /healthz`` — liveness, the served graph/model summary, and (with
  a runtime) the fault-tolerance surface: checkpoint generation + schema
  version, per-worker liveness/restart counts, circuit-breaker state,
  and the dbt-sources-style ``freshness`` block (model generation vs.
  store generation, triple lag classified pass/warn/error against the
  declared thresholds).
- ``GET /stats`` — scheduler counters and latency percentiles.

Everything else is a 404.  The server never dies on a bad request: all
errors are JSON responses with the matching status code.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.core.framework import CheckpointError, EstimationError
from repro.rdf.columnar import SnapshotError
from repro.rdf.parser import ParseError
from repro.serve.admission import AdmissionError
from repro.serve.artifacts import ArtifactError
from repro.serve.scheduler import (
    BatchScheduler,
    QueueFullError,
    SchedulerClosedError,
)
from repro.serve.service import EstimatorService, ServiceError
from repro.serve.supervisor import ReloadError, ServingRuntime

#: request bodies beyond this are rejected (413) before being read.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: sentinel returned by ``_Handler._read_body`` after an error response
#: (distinguishes "already answered" from a legitimately empty body).
_BAD_BODY = object()


class EstimatorHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service + scheduler."""

    daemon_threads = True
    #: socketserver's default listen backlog of 5 resets connections
    #: under a concurrent-client burst — exactly the workload the
    #: scheduler exists to coalesce.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        service: EstimatorService,
        scheduler: BatchScheduler,
        quiet: bool = True,
        runtime: Optional[ServingRuntime] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.scheduler = scheduler
        self.quiet = quiet
        self.runtime = runtime
        self.started_at = time.monotonic()
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._draining = False

    # ------------------------------------------------------------------
    # Graceful drain (SIGTERM)
    # ------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting new ``/estimate`` work: handlers answer 503
        while already-accepted requests keep running to completion."""
        with self._inflight_cv:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._inflight_cv:
            return self._draining

    def _track_request(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def _untrack_request(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            self._inflight_cv.notify_all()

    def wait_inflight_drained(self, timeout: float = 30.0) -> bool:
        """Block until every accepted request has written its response
        (or *timeout* elapses); True when fully drained."""
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
            return True


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Headers and body flush as separate writes; without TCP_NODELAY the
    # body segment stalls behind the peer's delayed ACK (~40ms) on every
    # keep-alive request, capping a persistent connection at ~25 q/s.
    disable_nagle_algorithm = True
    server: EstimatorHTTPServer

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path == "/healthz":
            payload = {
                "status": "ok",
                "uptime_s": round(
                    time.monotonic() - self.server.started_at, 3
                ),
            }
            payload.update(self.server.service.describe())
            if self.server.runtime is not None:
                payload.update(self.server.runtime.healthz_extras())
            self._send_json(200, payload)
        elif self.path == "/stats":
            self._send_json(200, self.server.scheduler.stats())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.server.draining:
            # SIGTERM drain: the listener is closing; answer anything
            # still arriving on live keep-alive connections with a 503
            # and drop the connection instead of admitting new work.
            self.close_connection = True
            self._send_json(
                503,
                {"error": "server is draining", "reason": "draining"},
            )
            return
        self.server._track_request()
        try:
            self._do_post()
        finally:
            self.server._untrack_request()

    def _do_post(self) -> None:
        if self.path == "/admin/reload":
            self._handle_reload()
            return
        if self.path != "/estimate":
            # The body stays unread, so the keep-alive stream is no
            # longer framed; drop the connection after answering.
            self.close_connection = True
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        texts = self._read_queries()
        if texts is None:
            return  # error response already sent
        service = self.server.service
        try:
            queries = service.parse_queries(texts)
        except ParseError as exc:
            self._send_json(400, {"error": f"bad query: {exc}"})
            return
        runtime = self.server.runtime
        if runtime is not None and runtime.admission is not None:
            try:
                runtime.admission.admit_all(queries)
            except AdmissionError as exc:
                # Rejected at parse time: the doomed query never costs
                # a queue slot or a worker round trip.
                self._send_json(
                    422,
                    {
                        "error": str(exc),
                        "reason": exc.reason,
                        "query_index": exc.query_index,
                    },
                )
                return
        try:
            values, meta = self.server.scheduler.submit_with_meta(
                queries
            )
        except QueueFullError as exc:
            # Retry-After must be integral delta-seconds (RFC 9110);
            # the JSON field keeps the sub-second precision so a
            # well-behaved client can come back sooner than 1 s.
            retry_after = float(
                getattr(exc, "retry_after_s", 1.0) or 1.0
            )
            self._send_json(
                429,
                {
                    "error": str(exc),
                    "reason": "queue_full",
                    "retry_after_s": round(retry_after, 3),
                },
                headers={
                    "Retry-After": str(
                        max(1, math.ceil(retry_after))
                    )
                },
            )
            return
        except EstimationError as exc:
            self._send_json(
                422,
                {"error": str(exc), "reason": "estimation_failed"},
            )
            return
        except SchedulerClosedError as exc:
            self._send_json(503, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 — a handler must answer
            # ServingWorkerError, EstimatorContractError, anything else:
            # the contract is a JSON response, never a dropped socket.
            self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        self._send_json(
            200,
            {
                "estimates": values.tolist(),
                "count": int(values.size),
                "generation": meta.get("generation"),
                "degraded": bool(meta.get("degraded", False)),
            },
        )

    def _handle_reload(self) -> None:
        """``POST /admin/reload`` — zero-downtime checkpoint swap."""
        runtime = self.server.runtime
        body = self._read_body(allow_empty=True)
        if body is _BAD_BODY:
            return  # error response already sent
        if runtime is None:
            self._send_json(
                501,
                {
                    "error": "this server was started without a "
                    "ServingRuntime; hot-reload is unavailable"
                },
            )
            return
        checkpoint = None
        snapshot = None
        if body:
            try:
                payload = json.loads(body)
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._send_json(
                    400, {"error": f"invalid JSON: {exc}"}
                )
                return
            if not isinstance(payload, dict):
                self._send_json(
                    400,
                    {
                        "error": "body must be {} or "
                        '{"checkpoint": dir, "snapshot": dir}'
                    },
                )
                return
            checkpoint = payload.get("checkpoint")
            if checkpoint is not None and not isinstance(
                checkpoint, str
            ):
                self._send_json(
                    400, {"error": '"checkpoint" must be a string'}
                )
                return
            snapshot = payload.get("snapshot")
            if snapshot is not None and not isinstance(snapshot, str):
                self._send_json(
                    400, {"error": '"snapshot" must be a string'}
                )
                return
        try:
            summary = runtime.reload(checkpoint, snapshot_dir=snapshot)
        except ArtifactError as exc:
            # Typed gate rejection; the old checkpoint keeps serving.
            self._send_json(
                409, {"error": str(exc), "reason": exc.reason}
            )
            return
        except (CheckpointError, ServiceError, SnapshotError) as exc:
            self._send_json(
                409, {"error": str(exc), "reason": "checkpoint_error"}
            )
            return
        except ReloadError as exc:
            self._send_json(
                409, {"error": str(exc), "reason": "no_checkpoint"}
            )
            return
        except Exception as exc:  # noqa: BLE001 — a handler must answer
            self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        summary = dict(summary)
        summary["status"] = "reloaded"
        self._send_json(200, summary)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _read_body(self, allow_empty: bool = False):
        """Read the request body, or :data:`_BAD_BODY` after an error
        response."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if allow_empty and length == 0:
            return b""
        if length <= 0 or length > MAX_BODY_BYTES:
            # The body was never read, so the keep-alive stream is no
            # longer framed; drop the connection after answering.
            self.close_connection = True
        if length <= 0:
            self._send_json(400, {"error": "empty request body"})
            return _BAD_BODY
        if length > MAX_BODY_BYTES:
            self._send_json(
                413,
                {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
            )
            return _BAD_BODY
        return self.rfile.read(length)

    def _read_queries(self) -> Optional[list]:
        """Parse and validate the request body; None after an error
        response."""
        body = self._read_body()
        if body is _BAD_BODY:
            return None
        try:
            payload = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"invalid JSON: {exc}"})
            return None
        if (
            not isinstance(payload, dict)
            or "queries" not in payload
        ):
            self._send_json(
                400, {"error": 'body must be {"queries": [...]}'}
            )
            return None
        texts = payload["queries"]
        if not isinstance(texts, list) or not texts:
            self._send_json(
                400, {"error": '"queries" must be a non-empty list'}
            )
            return None
        if not all(isinstance(text, str) for text in texts):
            self._send_json(
                400, {"error": "every query must be a SPARQL string"}
            )
            return None
        return texts

    def _send_json(
        self,
        status: int,
        payload: dict,
        headers: Optional[dict] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)


def make_server(
    service: EstimatorService,
    scheduler: BatchScheduler,
    host: str = "127.0.0.1",
    port: int = 8310,
    quiet: bool = True,
    runtime: Optional[ServingRuntime] = None,
) -> EstimatorHTTPServer:
    """Bind (but do not run) the estimation endpoint.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.server_address``.  Call ``serve_forever()`` to run and
    ``shutdown()`` from another thread to stop.  With a *runtime*,
    ``POST /admin/reload`` and the fault-tolerance ``/healthz`` surface
    are enabled.
    """
    return EstimatorHTTPServer(
        (host, port), service, scheduler, quiet, runtime=runtime
    )
