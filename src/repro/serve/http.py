"""The JSON-over-HTTP estimation endpoint (stdlib only).

``ThreadingHTTPServer`` gives one handler thread per connection; every
handler parses its request and blocks on the shared
:class:`~repro.serve.scheduler.BatchScheduler`, which coalesces the
concurrent requests into batched ``estimate_batch`` calls.  Routes:

- ``POST /estimate`` — body ``{"queries": ["SELECT ... WHERE {...}"]}``;
  answers ``{"estimates": [...], "count": N}``.  Malformed JSON, a
  missing/empty/ill-typed ``queries`` field, or unparseable SPARQL is a
  400 with ``{"error": ...}``; an unestimable query (no trained model
  covers its shape) is a 422; a full scheduler queue is a 429.
- ``GET /healthz`` — liveness plus the served graph/model summary.
- ``GET /stats`` — scheduler counters and latency percentiles.

Everything else is a 404.  The server never dies on a bad request: all
errors are JSON responses with the matching status code.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.core.framework import EstimationError
from repro.rdf.parser import ParseError
from repro.serve.scheduler import (
    BatchScheduler,
    QueueFullError,
    SchedulerClosedError,
)
from repro.serve.service import EstimatorService

#: request bodies beyond this are rejected (413) before being read.
MAX_BODY_BYTES = 8 * 1024 * 1024


class EstimatorHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service + scheduler."""

    daemon_threads = True
    #: socketserver's default listen backlog of 5 resets connections
    #: under a concurrent-client burst — exactly the workload the
    #: scheduler exists to coalesce.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        service: EstimatorService,
        scheduler: BatchScheduler,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.scheduler = scheduler
        self.quiet = quiet
        self.started_at = time.monotonic()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    server: EstimatorHTTPServer

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path == "/healthz":
            payload = {
                "status": "ok",
                "uptime_s": round(
                    time.monotonic() - self.server.started_at, 3
                ),
            }
            payload.update(self.server.service.describe())
            self._send_json(200, payload)
        elif self.path == "/stats":
            self._send_json(200, self.server.scheduler.stats())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/estimate":
            # The body stays unread, so the keep-alive stream is no
            # longer framed; drop the connection after answering.
            self.close_connection = True
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        texts = self._read_queries()
        if texts is None:
            return  # error response already sent
        service = self.server.service
        try:
            queries = service.parse_queries(texts)
        except ParseError as exc:
            self._send_json(400, {"error": f"bad query: {exc}"})
            return
        try:
            values = self.server.scheduler.submit(queries)
        except QueueFullError as exc:
            self._send_json(429, {"error": str(exc)})
            return
        except EstimationError as exc:
            self._send_json(422, {"error": str(exc)})
            return
        except SchedulerClosedError as exc:
            self._send_json(503, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 — a handler must answer
            # ServingWorkerError, EstimatorContractError, anything else:
            # the contract is a JSON response, never a dropped socket.
            self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        self._send_json(
            200,
            {"estimates": values.tolist(), "count": int(values.size)},
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _read_queries(self) -> Optional[list]:
        """Parse and validate the request body; None after an error
        response."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            # The body was never read, so the keep-alive stream is no
            # longer framed; drop the connection after answering.
            self.close_connection = True
        if length <= 0:
            self._send_json(400, {"error": "empty request body"})
            return None
        if length > MAX_BODY_BYTES:
            self._send_json(
                413,
                {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
            )
            return None
        body = self.rfile.read(length)
        try:
            payload = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"invalid JSON: {exc}"})
            return None
        if (
            not isinstance(payload, dict)
            or "queries" not in payload
        ):
            self._send_json(
                400, {"error": 'body must be {"queries": [...]}'}
            )
            return None
        texts = payload["queries"]
        if not isinstance(texts, list) or not texts:
            self._send_json(
                400, {"error": '"queries" must be a non-empty list'}
            )
            return None
        if not all(isinstance(text, str) for text in texts):
            self._send_json(
                400, {"error": "every query must be a SPARQL string"}
            )
            return None
        return texts

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)


def make_server(
    service: EstimatorService,
    scheduler: BatchScheduler,
    host: str = "127.0.0.1",
    port: int = 8310,
    quiet: bool = True,
) -> EstimatorHTTPServer:
    """Bind (but do not run) the estimation endpoint.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.server_address``.  Call ``serve_forever()`` to run and
    ``shutdown()`` from another thread to stop.
    """
    return EstimatorHTTPServer((host, port), service, scheduler, quiet)
