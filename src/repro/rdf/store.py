"""An indexed RDF triple store over a columnar numpy backend.

Triples are dictionary-encoded and kept as a **committed**
:class:`~repro.rdf.columnar.ColumnarIndex` — four sorted ``int64``
permutations (SPO, POS, OSP, PSO) answering every single-triple-pattern
access path — plus two small write-side structures: a *delta set* of
triples inserted one at a time and a list of *pending bulk batches*
ingested through the array-native :meth:`TripleStore.add_all`.  Each
arriving batch is deduplicated on the spot — against itself, the
committed columns (packed-key binary search, no index rebuild), and
the batches already pending — so the staged parts stay mutually
disjoint and chunked ingest stays amortized: the four permutation
sorts run once, at the next read, not once per batch.  Reads
consolidate lazily: the first snapshot access after a mutation folds
delta and pending rows into a fresh committed index, so steady-state
queries always run against a dozen flat arrays with no per-triple
Python overhead.

:class:`TripleStore` is a *facade*: its mutation and accessor API is
unchanged from the original dict-of-dict-of-set implementation, so the
matcher, the baselines, and all existing callers keep working.  Every
derived structure — the columnar snapshot, the legacy dict indexes, the
flattened adjacency lists, the materialised triple set — is cached
lazily and stamped with the store's **generation counter**, which every
mutation bumps (``add`` per new triple, ``add_all`` exactly once per
batch that added anything); a cache built before a mutation can
therefore never be served afterwards.

Stores round-trip to disk: :meth:`TripleStore.save_snapshot` writes the
permutation columns as ``.npy`` files next to a versioned manifest (and
the term dictionaries, when present), and
:meth:`TripleStore.load_snapshot` maps them back as read-only memmaps —
no per-triple deserialisation, pages shared across worker processes;
the default checksum verification is one sequential CRC32 pass over the
columns, skippable via ``verify=False`` for a truly O(1) load.  A
memmap-backed store is demoted to in-memory arrays on its first
mutation; the on-disk snapshot is never written through.

The store is the substrate under everything else: ground-truth
cardinality computation (:mod:`repro.rdf.matcher`), random-walk
training-data sampling (:mod:`repro.sampling`), and every baseline
estimator.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.rdf.columnar import (
    ColumnarIndex,
    SnapshotError,
    coerce_rows,
    in_sorted,
    pack_rows,
    read_manifest,
)
from repro.rdf.dictionary import GraphDictionary
from repro.rdf.terms import Triple, TriplePattern, Variable, is_bound

#: File holding the term dictionaries inside a store snapshot directory.
DICTIONARY_NAME = "dictionary.json"


class ReadOnlyStoreError(RuntimeError):
    """Mutation attempted on a store opened with ``read_only=True``.

    Parallel-labeling workers attach to one shared on-disk snapshot
    (:meth:`TripleStore.load_snapshot`); a worker that mutated its copy
    would silently diverge from its siblings — every process would keep
    answering, each against a different graph.  Opening the snapshot
    read-only turns that silent divergence into this loud error.
    """


def _coerce_batch(triples) -> np.ndarray:
    """Normalise bulk-ingest input to a contiguous ``(N, 3)`` int64 array.

    Accepts an ``(N, 3)`` array (any integer dtype) or any iterable of
    ``(s, p, o)`` triples.
    """
    if not isinstance(triples, np.ndarray):
        triples = np.array(list(triples), dtype=np.int64)
    return coerce_rows(triples)


class TripleStore:
    """Triple store with full permutation indexes and bulk ingest.

    Attributes:
        dictionary: the node/predicate dictionaries when the store was built
            from lexical data; None for purely synthetic id-level stores.
        generation: mutation counter; bumped by every successful ``add``
            and once per ``add_all`` batch that added at least one triple.
            Lazily derived structures remember the generation they were
            built at and rebuild when it moved on.
    """

    def __init__(self, dictionary: Optional[GraphDictionary] = None) -> None:
        self.dictionary = dictionary
        self.generation: int = 0
        # Set by load_snapshot(read_only=True): mutations raise instead
        # of demoting, so snapshot-sharing workers cannot diverge.
        self._read_only: bool = False
        # Provenance: the snapshot directory this store was loaded from
        # or last saved to, valid only while the generation is unchanged
        # (see :attr:`snapshot_source`).
        self._snapshot_path: Optional[Path] = None
        self._snapshot_generation: int = -1
        # Committed snapshot + write-side staging (see module docstring).
        self._committed: ColumnarIndex = ColumnarIndex.from_array(
            np.empty((0, 3), dtype=np.int64)
        )
        self._delta: Set[Triple] = set()
        self._pending: List[np.ndarray] = []
        self._pending_rows: int = 0
        # Lazily built set view of pending rows for O(1) membership
        # probes; invalidated whenever pending changes.
        self._pending_probe: Optional[Set[Triple]] = None
        # Generation-stamped caches: (generation, payload).
        self._columnar_cache: Optional[Tuple[int, ColumnarIndex]] = None
        self._set_cache: Optional[Tuple[int, Set[Triple]]] = None
        self._legacy_cache: Optional[Tuple[int, tuple]] = None
        self._adjacency_cache: Optional[Tuple[int, dict, dict]] = None
        self._nodes_cache: Optional[Tuple[int, List[int]]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _check_writable(self) -> None:
        if self._read_only:
            raise ReadOnlyStoreError(
                "store was opened read-only (snapshot-sharing worker); "
                "mutating it would silently diverge from sibling "
                "processes mapping the same snapshot — load with "
                "read_only=False to get a private copy-on-write store"
            )

    def add(self, s: int, p: int, o: int) -> bool:
        """Insert a triple; returns False when it was already present.

        Raises :class:`ReadOnlyStoreError` on a store opened with
        ``read_only=True``.
        """
        self._check_writable()
        triple = (int(s), int(p), int(o))
        if (
            triple in self._delta
            or self._in_pending(triple)
            or (self._committed.size and self._committed.contains(*triple))
        ):
            return False
        self._delta.add(triple)
        set_cache = self._set_cache
        self.generation += 1
        if set_cache is not None and set_cache[0] == self.generation - 1:
            # Keep the materialised set coherent instead of rebuilding it
            # from scratch on the next read.
            set_cache[1].add(triple)
            self._set_cache = (self.generation, set_cache[1])
        return True

    def add_all(self, triples) -> int:
        """Bulk-insert triples; returns the number actually added.

        Accepts an ``(N, 3)`` int array or any iterable of ``(s, p, o)``
        triples.  The batch is deduplicated with vectorized packed-row
        operations and merged against the existing snapshot — no
        per-triple Python work — and the generation is bumped **once**
        for the whole batch (not at all when every row was a duplicate).
        A memmap-backed snapshot is never mutated in place: new rows
        land in pending staging and the next consolidation builds fresh
        in-memory arrays.  Raises :class:`ReadOnlyStoreError` on a store
        opened with ``read_only=True``.
        """
        self._check_writable()
        rows = _coerce_batch(triples)
        if rows.shape[0] == 0:
            return 0
        if self._delta:
            # Mixed per-triple + bulk usage: fold the delta so the batch
            # dedupe below only has to look at arrays.  Bulk-only
            # chunked ingest never takes this branch and never pays a
            # rebuild here.
            self._consolidate()
        fresh = self._dedupe_batch(
            rows,
            self._committed if self._committed.size else None,
            self._pending,
        )
        if fresh.shape[0] == 0:
            return 0
        self._pending.append(fresh)
        self._pending_rows += int(fresh.shape[0])
        self._pending_probe = None
        self.generation += 1
        return int(fresh.shape[0])

    @staticmethod
    def _dedupe_batch(
        rows: np.ndarray,
        existing: Optional[ColumnarIndex],
        pending: Sequence[np.ndarray] = (),
    ) -> np.ndarray:
        """Unique rows of *rows* absent from *existing* and *pending*.

        Fast path: when all ids are non-negative and the combined value
        ranges fit, each row packs into one ordered int64 key
        (``(s * Rp + p) * Ro + o``); the packing is monotone in SPO
        order, so the existing index's lexsorted columns pack into an
        already-sorted key array and membership is a single
        ``searchsorted`` — no index rebuild, so chunked ingest stays
        amortized.  Arbitrary ids fall back to bytewise void records
        (correct for equality, slower to sort).
        """
        lo = [int(rows[:, i].min()) for i in range(3)]
        hi = [int(rows[:, i].max()) for i in range(3)]
        for batch in pending:
            lo = [min(a, int(b)) for a, b in zip(lo, batch.min(axis=0))]
            hi = [max(a, int(b)) for a, b in zip(hi, batch.max(axis=0))]
        if existing is not None and existing.size:
            # The permutations are sorted, so extrema are at the ends.
            lo = [
                min(lo[0], int(existing.spo_s[0])),
                min(lo[1], int(existing.pso_p[0])),
                min(lo[2], int(existing.osp_o[0])),
            ]
            hi = [
                max(hi[0], int(existing.spo_s[-1])),
                max(hi[1], int(existing.pso_p[-1])),
                max(hi[2], int(existing.osp_o[-1])),
            ]
        radix_p = hi[1] + 1
        radix_o = hi[2] + 1
        packable = (
            min(lo) >= 0
            and (hi[0] + 1) * radix_p * radix_o < 2**63
        )
        if packable:
            def pack(s, p, o):
                return (
                    np.asarray(s) * radix_p + np.asarray(p)
                ) * radix_o + np.asarray(o)

            keys = pack(rows[:, 0], rows[:, 1], rows[:, 2])
            # Explicit sort + neighbour-diff instead of np.unique: np.sort
            # takes the SIMD path for int64, np.unique does not (~20x).
            keys.sort()
            head = np.ones(1, dtype=bool)
            unique_keys = keys[
                np.concatenate((head, keys[1:] != keys[:-1]))
            ]
            if existing is not None and existing.size:
                existing_keys = pack(
                    existing.spo_s, existing.spo_p, existing.spo_o
                )
                unique_keys = unique_keys[
                    ~in_sorted(existing_keys, unique_keys)
                ]
            if pending:
                pending_keys = np.concatenate(
                    [pack(b[:, 0], b[:, 1], b[:, 2]) for b in pending]
                )
                unique_keys = unique_keys[
                    ~np.isin(unique_keys, pending_keys)
                ]
            subjects, rest = np.divmod(unique_keys, radix_p * radix_o)
            predicates, objects = np.divmod(rest, radix_o)
            return np.column_stack((subjects, predicates, objects))
        packed = pack_rows(rows)
        _, keep = np.unique(packed, return_index=True)
        unique_rows = rows[keep]
        if existing is not None and existing.size:
            mask = ~np.isin(
                pack_rows(unique_rows), pack_rows(existing.rows())
            )
            unique_rows = unique_rows[mask]
        if pending:
            mask = ~np.isin(
                pack_rows(unique_rows),
                pack_rows(np.concatenate(list(pending))),
            )
            unique_rows = unique_rows[mask]
        return unique_rows

    def _consolidate(self) -> None:
        """Fold pending batches and the delta set into the committed index.

        All parts are mutually disjoint and internally deduplicated by
        construction, so consolidation is one concatenation plus the
        index build — never a set round-trip.  A memmap-backed committed
        index is replaced (its pages copied into fresh in-memory
        arrays), never written through.
        """
        if not self._pending and not self._delta:
            return
        parts = []
        if self._committed.size:
            parts.append(self._committed.rows())
        parts.extend(self._pending)
        if self._delta:
            parts.append(
                np.array(sorted(self._delta), dtype=np.int64).reshape(-1, 3)
            )
        rows = np.concatenate(parts) if parts else np.empty(
            (0, 3), dtype=np.int64
        )
        self._committed = ColumnarIndex.from_array(rows)
        self._delta = set()
        self._pending = []
        self._pending_rows = 0
        self._pending_probe = None

    # ------------------------------------------------------------------
    # Columnar snapshot
    # ------------------------------------------------------------------

    @property
    def columnar(self) -> ColumnarIndex:
        """The sorted-permutation snapshot of the current generation.

        Built lazily on first access after a mutation; all vectorized
        paths (fast counters, samplers, stats) read through this.
        """
        cache = self._columnar_cache
        if cache is None or cache[0] != self.generation:
            self._consolidate()
            self._columnar_cache = (self.generation, self._committed)
        return self._columnar_cache[1]

    @property
    def _triples(self) -> Set[Triple]:
        """Materialised set view of the current generation (cached).

        Kept for the legacy dict indexes and external callers written
        against the original set-backed implementation; internal hot
        paths read :attr:`columnar` instead.
        """
        cache = self._set_cache
        if cache is not None and cache[0] == self.generation:
            return cache[1]
        col = self.columnar
        triples = set(
            zip(col.spo_s.tolist(), col.spo_p.tolist(), col.spo_o.tolist())
        )
        self._set_cache = (self.generation, triples)
        return triples

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._committed.size + self._pending_rows + len(self._delta)

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = (int(t) for t in triple)
        if (s, p, o) in self._delta or self._in_pending((s, p, o)):
            return True
        return self._committed.contains(s, p, o)

    def _in_pending(self, triple: Triple) -> bool:
        """Membership probe over the pending bulk batches.

        One O(pending rows) set build on the first probe after a batch,
        O(1) per probe afterwards — never a consolidation: a membership
        check between ingest batches must not force a full permutation
        rebuild of the store.
        """
        if not self._pending:
            return False
        if self._pending_probe is None:
            rows = np.concatenate(self._pending)
            self._pending_probe = set(map(tuple, rows.tolist()))
        return triple in self._pending_probe

    def __iter__(self) -> Iterator[Triple]:
        col = self.columnar
        return iter(
            zip(col.spo_s.tolist(), col.spo_p.tolist(), col.spo_o.tolist())
        )

    @property
    def num_triples(self) -> int:
        return len(self)

    def nodes(self) -> List[int]:
        """All node ids appearing as subject or object (sorted, cached)."""
        cache = self._nodes_cache
        if cache is None or cache[0] != self.generation:
            nodes = self.columnar.nodes().tolist()
            self._nodes_cache = (self.generation, nodes)
            return nodes
        return cache[1]

    def predicates(self) -> List[int]:
        """All predicate ids in use (sorted)."""
        return self.columnar.predicates().tolist()

    @property
    def num_nodes(self) -> int:
        return len(self.nodes())

    @property
    def num_predicates(self) -> int:
        return int(self.columnar.predicates().size)

    def subjects(self) -> List[int]:
        """All distinct subject ids (sorted)."""
        return self.columnar.subjects().tolist()

    def objects(self) -> List[int]:
        """All distinct object ids (sorted)."""
        return self.columnar.objects().tolist()

    def objects_of(self, s: int, p: int) -> Set[int]:
        """Objects o with (s, p, o) in the store."""
        return set(self.columnar.objects_of(s, p).tolist())

    def subjects_of(self, p: int, o: int) -> Set[int]:
        """Subjects s with (s, p, o) in the store."""
        return set(self.columnar.subjects_of(p, o).tolist())

    def predicates_between(self, s: int, o: int) -> Set[int]:
        """Predicates p with (s, p, o) in the store."""
        return set(self.columnar.predicates_between(s, o).tolist())

    def out_predicates(self, s: int) -> Set[int]:
        """The emitting predicate set of *s* (its characteristic set)."""
        return set(self.columnar.out_predicates(s).tolist())

    def subjects_with_predicate(self, p: int) -> List[int]:
        """Distinct subjects appearing with predicate *p* (sorted)."""
        return self.columnar.predicate_subject_stats(p)[0].tolist()

    def objects_with_predicate(self, p: int) -> List[int]:
        """Distinct objects appearing with predicate *p* (sorted)."""
        return self.columnar.predicate_object_stats(p)[0].tolist()

    def out_edges(self, s: int) -> List[Tuple[int, int]]:
        """All (p, o) pairs leaving node *s*, as a flat list (cached)."""
        return self._adjacency()[0].get(s, [])

    def in_edges(self, o: int) -> List[Tuple[int, int]]:
        """All (s, p) pairs entering node *o*, as a flat list (cached)."""
        return self._adjacency()[1].get(o, [])

    def out_degree(self, s: int) -> int:
        return self.columnar.out_degree(s)

    def in_degree(self, o: int) -> int:
        return self.columnar.in_degree(o)

    def predicate_count(self, p: int) -> int:
        """Number of triples with predicate *p*."""
        return self.columnar.predicate_count(p)

    def _adjacency(self) -> Tuple[dict, dict]:
        """Flattened out-/in-adjacency dicts of the current generation.

        The cache is keyed by :attr:`generation`, so a build that
        happened before any mutation is discarded rather than served
        stale (regression-tested).
        """
        cache = self._adjacency_cache
        if cache is not None and cache[0] == self.generation:
            return cache[1], cache[2]
        col = self.columnar
        out: Dict[int, List[Tuple[int, int]]] = {}
        pairs_out = list(zip(col.spo_p.tolist(), col.spo_o.tolist()))
        subs, degs = col.subject_degrees()
        start = 0
        for s, d in zip(subs.tolist(), degs.tolist()):
            out[s] = pairs_out[start: start + d]
            start += d
        inc: Dict[int, List[Tuple[int, int]]] = {}
        pairs_in = list(zip(col.osp_s.tolist(), col.osp_p.tolist()))
        objs, indegs = col.object_degrees()
        start = 0
        for o, d in zip(objs.tolist(), indegs.tolist()):
            inc[o] = pairs_in[start: start + d]
            start += d
        self._adjacency_cache = (self.generation, out, inc)
        return out, inc

    # ------------------------------------------------------------------
    # Legacy dict indexes (compatibility views)
    # ------------------------------------------------------------------

    def _legacy_indexes(self) -> tuple:
        """Dict-of-dict-of-set views of the four permutations.

        Kept only for external code written against the original
        implementation; everything internal reads :attr:`columnar`.
        """
        cache = self._legacy_cache
        if cache is not None and cache[0] == self.generation:
            return cache[1]
        spo: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        pos: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        osp: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        pso: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        for s, p, o in self._triples:
            spo[s].setdefault(p, set()).add(o)
            pos[p].setdefault(o, set()).add(s)
            osp[o].setdefault(s, set()).add(p)
            pso[p].setdefault(s, set()).add(o)
        indexes = (spo, pos, osp, pso)
        self._legacy_cache = (self.generation, indexes)
        return indexes

    @property
    def _spo(self) -> Dict[int, Dict[int, Set[int]]]:
        return self._legacy_indexes()[0]

    @property
    def _pos(self) -> Dict[int, Dict[int, Set[int]]]:
        return self._legacy_indexes()[1]

    @property
    def _osp(self) -> Dict[int, Dict[int, Set[int]]]:
        return self._legacy_indexes()[2]

    @property
    def _pso(self) -> Dict[int, Dict[int, Set[int]]]:
        return self._legacy_indexes()[3]

    # ------------------------------------------------------------------
    # Single-pattern matching
    # ------------------------------------------------------------------

    def match_pattern(self, tp: TriplePattern) -> Iterator[Triple]:
        """Yield every stored triple matching a single triple pattern.

        Repeated variables inside the pattern (e.g. ``(?x, p, ?x)``) are
        honoured: positions sharing a variable must carry equal ids.
        """
        s_b, p_b, o_b = is_bound(tp.s), is_bound(tp.p), is_bound(tp.o)
        candidates = self._candidates(tp, s_b, p_b, o_b)
        same_so = isinstance(tp.s, Variable) and tp.s == tp.o
        same_sp = isinstance(tp.s, Variable) and tp.s == tp.p
        same_po = isinstance(tp.p, Variable) and tp.p == tp.o
        for triple in candidates:
            s, p, o = triple
            if same_so and s != o:
                continue
            if same_sp and s != p:
                continue
            if same_po and p != o:
                continue
            yield triple

    def _candidates(
        self, tp: TriplePattern, s_b: bool, p_b: bool, o_b: bool
    ) -> Iterator[Triple]:
        """Slice the best permutation for the bound positions."""
        col = self.columnar
        if s_b and p_b and o_b:
            triple = tp.as_triple()
            if col.contains(*triple):
                yield triple
            return
        if s_b and p_b:
            for o in col.objects_of(tp.s, tp.p).tolist():
                yield (tp.s, tp.p, o)
            return
        if p_b and o_b:
            for s in col.subjects_of(tp.p, tp.o).tolist():
                yield (s, tp.p, tp.o)
            return
        if s_b and o_b:
            for p in col.predicates_between(tp.s, tp.o).tolist():
                yield (tp.s, p, tp.o)
            return
        if s_b:
            preds, objs = col.out_slice(tp.s)
            for p, o in zip(preds.tolist(), objs.tolist()):
                yield (tp.s, p, o)
            return
        if p_b:
            subs, objs = col.pred_slice(tp.p)
            for s, o in zip(subs.tolist(), objs.tolist()):
                yield (s, tp.p, o)
            return
        if o_b:
            subs, preds = col.in_slice(tp.o)
            for s, p in zip(subs.tolist(), preds.tolist()):
                yield (s, p, tp.o)
            return
        yield from iter(self)

    def count_pattern(self, tp: TriplePattern) -> int:
        """Exact result count of a single triple pattern.

        Every no-repeated-variable shape is a pure range width on one
        permutation — no candidate materialisation.
        """
        has_repeat = len(tp.variables) != len(set(tp.variables))
        if has_repeat:
            return sum(1 for _ in self.match_pattern(tp))
        col = self.columnar
        s_b, p_b, o_b = is_bound(tp.s), is_bound(tp.p), is_bound(tp.o)
        if s_b and p_b and o_b:
            return 1 if col.contains(*tp.as_triple()) else 0
        if s_b and p_b:
            return col.count_sp(tp.s, tp.p)
        if p_b and o_b:
            return col.count_po(tp.p, tp.o)
        if s_b and o_b:
            return col.count_so(tp.s, tp.o)
        if s_b:
            return col.out_degree(tp.s)
        if p_b:
            return col.predicate_count(tp.p)
        if o_b:
            return col.in_degree(tp.o)
        return len(self)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_lexical(
        cls, triples: Iterable[Tuple[str, str, str]]
    ) -> "TripleStore":
        """Build a store (plus dictionaries) from lexical string triples."""
        dictionary = GraphDictionary()
        store = cls(dictionary)
        for s, p, o in triples:
            store.add(*dictionary.encode_triple(s, p, o))
        return store

    @classmethod
    def from_columnar(
        cls,
        index: ColumnarIndex,
        dictionary: Optional[GraphDictionary] = None,
    ) -> "TripleStore":
        """Adopt an existing index (typically a loaded snapshot) as-is.

        The index becomes the committed snapshot at generation 0 with no
        per-triple work.  If it is memmap-backed, the first mutation
        demotes the store to in-memory arrays; the underlying files are
        never modified.
        """
        store = cls(dictionary)
        store._committed = index
        store._columnar_cache = (0, index)
        return store

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @property
    def read_only(self) -> bool:
        """True when this store was opened with ``read_only=True``."""
        return self._read_only

    @property
    def snapshot_source(self) -> Optional[Path]:
        """The on-disk snapshot this store still mirrors, if any.

        Set by :meth:`save_snapshot` and :meth:`load_snapshot` and
        **invalidated by any mutation**: once the store's generation has
        moved past the snapshotted one, the path is no longer a faithful
        image of the in-memory state, and handing it to snapshot-sharing
        workers would make them label against stale data.  Consumers
        (``repro.rdf.parallel``) therefore re-snapshot when this returns
        None instead of trusting a demoted parent's old directory.
        """
        if (
            self._snapshot_path is not None
            and self._snapshot_generation == self.generation
        ):
            return self._snapshot_path
        return None

    def save_snapshot(
        self, directory: Union[str, Path], record_source: bool = True
    ) -> Path:
        """Persist the store (index + dictionaries) to *directory*.

        Writes one ``.npy`` per permutation column, the term
        dictionaries as JSON when present, and a versioned manifest
        carrying the triple count plus content and dictionary checksums.
        Returns the manifest path.

        By default the directory is recorded as this store's
        :attr:`snapshot_source`.  Pass ``record_source=False`` for
        throwaway snapshots (e.g. a labeling pool's tempdir): a path
        that is deleted right after use must not linger as the store's
        supposed on-disk image, or the next pool would attach its
        workers to a directory that no longer exists.
        """
        directory = Path(directory)
        extra = {"has_dictionary": self.dictionary is not None}
        if self.dictionary is not None:
            extra["dictionary_checksum"] = self.dictionary.checksum()
            directory.mkdir(parents=True, exist_ok=True)
            (directory / DICTIONARY_NAME).write_text(
                json.dumps(self.dictionary.to_payload()) + "\n",
                encoding="utf-8",
            )
        manifest = self.columnar.save(directory, extra_manifest=extra)
        if record_source:
            self._snapshot_path = directory
            self._snapshot_generation = self.generation
        return manifest

    @classmethod
    def load_snapshot(
        cls,
        directory: Union[str, Path],
        mmap_mode: Optional[str] = "r",
        verify: bool = True,
        read_only: bool = False,
        load_dictionary: bool = True,
    ) -> "TripleStore":
        """Load a saved store: columns come back as read-only memmaps.

        There is no per-triple work; with the default ``verify=True``
        the load still performs one O(N) sequential CRC32 pass over the
        columns (pass ``verify=False`` for a truly O(1) load).
        ``mmap_mode=None`` loads eagerly instead.  With
        ``read_only=True`` every later mutation raises
        :class:`ReadOnlyStoreError` instead of demoting to private
        in-memory arrays — the mode parallel-labeling workers use so one
        worker cannot silently diverge from siblings mapping the same
        snapshot.  ``load_dictionary=False`` skips parsing the term
        dictionaries entirely — id-level consumers like the labeling
        pool's workers never decode a term, and re-building the
        dictionary in every worker process would be the one non-O(1),
        non-shared part of their attach.  Raises
        :class:`~repro.rdf.columnar.SnapshotError` on a missing,
        corrupted, truncated, or version-mismatched snapshot.
        """
        directory = Path(directory)
        index = ColumnarIndex.load(
            directory, mmap_mode=mmap_mode, verify=verify
        )
        manifest = read_manifest(directory)
        dictionary = None
        if manifest.get("has_dictionary") and load_dictionary:
            path = directory / DICTIONARY_NAME
            if not path.is_file():
                raise SnapshotError(
                    f"snapshot manifest promises dictionaries but "
                    f"{path} is missing"
                )
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                dictionary = GraphDictionary.from_payload(payload)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                raise SnapshotError(
                    f"unreadable snapshot dictionary {path}: {exc}"
                )
            expected = manifest.get("dictionary_checksum")
            if verify and expected is not None:
                checksum = dictionary.checksum()
                if checksum != expected:
                    raise SnapshotError(
                        f"snapshot dictionary at {path} failed checksum "
                        f"verification ({checksum} != {expected!r})"
                    )
        store = cls.from_columnar(index, dictionary)
        store._read_only = bool(read_only)
        store._snapshot_path = directory
        store._snapshot_generation = store.generation
        return store

    def memory_bytes(self) -> int:
        """Resident size of the columnar permutations, in bytes.

        Used by the Table II memory comparison: four permutations of
        three int64 columns each, 96 bytes per triple.
        """
        return len(self) * 3 * 8 * 4
