"""An indexed RDF triple store over pluggable array-native backends.

Triples are dictionary-encoded and kept in a **committed**
:class:`~repro.rdf.backend.StoreBackend` — by default a
:class:`~repro.rdf.backend.ColumnarBackend` wrapping four sorted
``int64`` permutations (SPO, POS, OSP, PSO) that answer every
single-triple-pattern access path; a
:class:`~repro.rdf.backend.ShardedBackend` splits the same graph across
N snapshot directories when it outgrows one index — plus two small
write-side structures: a *delta set* of triples inserted one at a time
and a list of *pending bulk batches* ingested through the array-native
:meth:`TripleStore.add_all`.  Each arriving batch is deduplicated on
the spot — against itself, the committed backend
(:meth:`~repro.rdf.backend.StoreBackend.isin_rows`, packed-key binary
search, no index rebuild), and the batches already pending — so the
staged parts stay mutually disjoint and chunked ingest stays amortized:
the permutation sorts run once, at the next read, not once per batch.
Reads consolidate lazily: the first backend access after a mutation
folds delta and pending rows into a fresh committed backend (same
backend type, same shard layout), so steady-state queries always run
against flat arrays with no per-triple Python overhead.

:class:`TripleStore` is a *facade*: its mutation and accessor API is
unchanged from the original dict-of-dict-of-set implementation, so the
matcher, the baselines, and all existing callers keep working.  The
legacy set/list accessors (:meth:`objects_of`, :meth:`out_edges`, ...)
are now thin shims over the backend's sorted-ndarray equivalents —
internal hot paths read :attr:`TripleStore.backend` directly.  Every
derived structure is cached lazily and stamped with the store's
**generation counter**, which every mutation bumps (``add`` per new
triple, ``add_all`` exactly once per batch that added anything); a
cache built before a mutation can therefore never be served afterwards.

Stores round-trip to disk: :meth:`TripleStore.save_snapshot` writes the
backend's columns as ``.npy`` files next to a versioned manifest (and
the term dictionaries, when present) — pass ``shards=N`` to write a
sharded snapshot instead — and :meth:`TripleStore.load_snapshot` maps
either format back as read-only memmaps (``shard_ids=[...]`` attaches a
shard subset of a sharded snapshot); no per-triple deserialisation,
pages shared across worker processes; the default checksum verification
is one sequential CRC32 pass over the columns, skippable via
``verify=False`` for a truly O(1) load.  A memmap-backed store is
demoted to in-memory arrays on its first mutation; the on-disk snapshot
is never written through.

The store is the substrate under everything else: ground-truth
cardinality computation (:mod:`repro.rdf.matcher`), random-walk
training-data sampling (:mod:`repro.sampling`), and every baseline
estimator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.rdf.backend import (
    ColumnarBackend,
    ShardedBackend,
    StoreBackend,
    load_backend,
)
from repro.rdf.columnar import (
    ColumnarIndex,
    SnapshotError,
    coerce_rows,
    pack_rows,
)
from repro.rdf.dictionary import GraphDictionary
from repro.rdf.terms import Triple, TriplePattern, Variable, is_bound

#: File holding the term dictionaries inside a store snapshot directory.
DICTIONARY_NAME = "dictionary.json"


class ReadOnlyStoreError(RuntimeError):
    """Mutation attempted on a store opened with ``read_only=True``.

    Parallel-labeling workers attach to one shared on-disk snapshot
    (:meth:`TripleStore.load_snapshot`); a worker that mutated its copy
    would silently diverge from its siblings — every process would keep
    answering, each against a different graph.  Opening the snapshot
    read-only turns that silent divergence into this loud error.
    """


def _coerce_batch(triples) -> np.ndarray:
    """Normalise bulk-ingest input to a contiguous ``(N, 3)`` int64 array.

    Accepts an ``(N, 3)`` array (any integer dtype) or any iterable of
    ``(s, p, o)`` triples.
    """
    if not isinstance(triples, np.ndarray):
        triples = np.array(list(triples), dtype=np.int64)
    return coerce_rows(triples)


class TripleStore:
    """Triple store facade over a pluggable array-native backend.

    Attributes:
        dictionary: the node/predicate dictionaries when the store was built
            from lexical data; None for purely synthetic id-level stores.
        generation: mutation counter; bumped by every successful ``add``
            and once per ``add_all`` batch that added at least one triple.
            Lazily derived structures remember the generation they were
            built at and rebuild when it moved on.
    """

    def __init__(self, dictionary: Optional[GraphDictionary] = None) -> None:
        self.dictionary = dictionary
        self.generation: int = 0
        # Set by load_snapshot(read_only=True): mutations raise instead
        # of demoting, so snapshot-sharing workers cannot diverge.
        self._read_only: bool = False
        # Provenance: the snapshot directory this store was loaded from
        # or last saved to, valid only while the generation is unchanged
        # (see :attr:`snapshot_source`).
        self._snapshot_path: Optional[Path] = None
        self._snapshot_generation: int = -1
        # Committed backend + write-side staging (see module docstring).
        self._committed: StoreBackend = ColumnarBackend.empty()
        self._delta: Set[Triple] = set()
        self._pending: List[np.ndarray] = []
        self._pending_rows: int = 0
        # Lazily built set view of pending rows for O(1) membership
        # probes; invalidated whenever pending changes.
        self._pending_probe: Optional[Set[Triple]] = None
        # Generation-stamped caches: (generation, payload).
        self._backend_cache: Optional[Tuple[int, StoreBackend]] = None
        self._merged_cache: Optional[Tuple[int, ColumnarIndex]] = None
        self._set_cache: Optional[Tuple[int, Set[Triple]]] = None
        self._nodes_cache: Optional[Tuple[int, List[int]]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _check_writable(self) -> None:
        if self._read_only:
            raise ReadOnlyStoreError(
                "store was opened read-only (snapshot-sharing worker); "
                "mutating it would silently diverge from sibling "
                "processes mapping the same snapshot — load with "
                "read_only=False to get a private copy-on-write store"
            )

    def add(self, s: int, p: int, o: int) -> bool:
        """Insert a triple; returns False when it was already present.

        Raises :class:`ReadOnlyStoreError` on a store opened with
        ``read_only=True``.
        """
        self._check_writable()
        triple = (int(s), int(p), int(o))
        if (
            triple in self._delta
            or self._in_pending(triple)
            or (self._committed.size and self._committed.contains(*triple))
        ):
            return False
        self._delta.add(triple)
        set_cache = self._set_cache
        self.generation += 1
        if set_cache is not None and set_cache[0] == self.generation - 1:
            # Keep the materialised set coherent instead of rebuilding it
            # from scratch on the next read.
            set_cache[1].add(triple)
            self._set_cache = (self.generation, set_cache[1])
        return True

    def add_all(self, triples) -> int:
        """Bulk-insert triples; returns the number actually added.

        Accepts an ``(N, 3)`` int array or any iterable of ``(s, p, o)``
        triples.  The batch is deduplicated with vectorized packed-row
        operations and merged against the existing backend — no
        per-triple Python work — and the generation is bumped **once**
        for the whole batch (not at all when every row was a duplicate).
        A memmap-backed snapshot is never mutated in place: new rows
        land in pending staging and the next consolidation builds fresh
        in-memory arrays.  Raises :class:`ReadOnlyStoreError` on a store
        opened with ``read_only=True``.
        """
        self._check_writable()
        rows = _coerce_batch(triples)
        if rows.shape[0] == 0:
            return 0
        if self._delta:
            # Mixed per-triple + bulk usage: fold the delta so the batch
            # dedupe below only has to look at arrays.  Bulk-only
            # chunked ingest never takes this branch and never pays a
            # rebuild here.
            self._consolidate()
        fresh = self._dedupe_batch(
            rows,
            self._committed if self._committed.size else None,
            self._pending,
        )
        if fresh.shape[0] == 0:
            return 0
        self._pending.append(fresh)
        self._pending_rows += int(fresh.shape[0])
        self._pending_probe = None
        self.generation += 1
        return int(fresh.shape[0])

    @staticmethod
    def _dedupe_batch(
        rows: np.ndarray,
        existing: Optional[StoreBackend],
        pending: Sequence[np.ndarray] = (),
    ) -> np.ndarray:
        """Unique rows of *rows* absent from *existing* and *pending*.

        Fast path: when all ids are non-negative and the combined value
        ranges fit, each row packs into one ordered int64 key
        (``(s * Rp + p) * Ro + o``), uniqued with an explicit sort +
        neighbour-diff (np.sort takes the SIMD path for int64,
        np.unique does not, ~20x).  Arbitrary ids fall back to bytewise
        void records (correct for equality, slower to sort).  Membership
        against the committed data is one backend
        :meth:`~repro.rdf.backend.StoreBackend.isin_rows` pass — a
        packed binary search on the columnar backend, per-owning-shard
        searches on the sharded one; never an index rebuild, so chunked
        ingest stays amortized.
        """
        lo = [int(rows[:, i].min()) for i in range(3)]
        hi = [int(rows[:, i].max()) for i in range(3)]
        for batch in pending:
            lo = [min(a, int(b)) for a, b in zip(lo, batch.min(axis=0))]
            hi = [max(a, int(b)) for a, b in zip(hi, batch.max(axis=0))]
        radix_p = hi[1] + 1
        radix_o = hi[2] + 1
        packable = (
            min(lo) >= 0
            and (hi[0] + 1) * radix_p * radix_o < 2**63
        )
        if packable:
            def pack(s, p, o):
                return (
                    np.asarray(s) * radix_p + np.asarray(p)
                ) * radix_o + np.asarray(o)

            keys = pack(rows[:, 0], rows[:, 1], rows[:, 2])
            keys.sort()
            head = np.ones(1, dtype=bool)
            unique_keys = keys[
                np.concatenate((head, keys[1:] != keys[:-1]))
            ]
            if pending:
                pending_keys = np.concatenate(
                    [pack(b[:, 0], b[:, 1], b[:, 2]) for b in pending]
                )
                unique_keys = unique_keys[
                    ~np.isin(unique_keys, pending_keys)
                ]
            subjects, rest = np.divmod(unique_keys, radix_p * radix_o)
            predicates, objects = np.divmod(rest, radix_o)
            unique_rows = np.column_stack((subjects, predicates, objects))
        else:
            packed = pack_rows(rows)
            _, keep = np.unique(packed, return_index=True)
            unique_rows = rows[keep]
            if pending:
                mask = ~np.isin(
                    pack_rows(unique_rows),
                    pack_rows(np.concatenate(list(pending))),
                )
                unique_rows = unique_rows[mask]
        if existing is not None and existing.size and unique_rows.size:
            unique_rows = unique_rows[~existing.isin_rows(unique_rows)]
        return unique_rows

    def _consolidate(self) -> None:
        """Fold pending batches and the delta set into the committed backend.

        All parts are mutually disjoint and internally deduplicated by
        construction, so consolidation is one concatenation plus the
        backend rebuild — never a set round-trip.  The rebuild preserves
        the backend's representation (a sharded backend stays sharded,
        same layout).  A memmap-backed committed backend is replaced
        (its pages copied into fresh in-memory arrays), never written
        through.
        """
        if not self._pending and not self._delta:
            return
        parts = []
        if self._committed.size:
            parts.append(self._committed.rows())
        parts.extend(self._pending)
        if self._delta:
            parts.append(
                np.array(sorted(self._delta), dtype=np.int64).reshape(-1, 3)
            )
        rows = np.concatenate(parts) if parts else np.empty(
            (0, 3), dtype=np.int64
        )
        self._committed = self._committed.rebuild(rows)
        self._delta = set()
        self._pending = []
        self._pending_rows = 0
        self._pending_probe = None

    # ------------------------------------------------------------------
    # Backend access
    # ------------------------------------------------------------------

    @property
    def backend(self) -> StoreBackend:
        """The committed array-native backend of the current generation.

        Built lazily on first access after a mutation; all vectorized
        paths (fast counters, samplers, stats, baselines) read through
        this.  The returned backend carries the store's generation as
        its :attr:`~repro.rdf.backend.StoreBackend.generation` stamp.
        """
        cache = self._backend_cache
        if cache is None or cache[0] != self.generation:
            self._consolidate()
            self._committed.generation = self.generation
            self._backend_cache = (self.generation, self._committed)
        return self._backend_cache[1]

    @property
    def columnar(self) -> ColumnarIndex:
        """A single sorted-permutation index of the current generation.

        On the default columnar backend this *is* the committed index
        (no copy — memmap identity is preserved for loaded snapshots).
        On a sharded backend it is a merged in-memory index built from
        all attached shards, cached per generation: the dense fallback
        for consumers that read raw permutation columns (the vectorized
        samplers, range workloads).  Accessor-level consumers should
        prefer :attr:`backend`, which routes to shards without merging.
        """
        backend = self.backend
        if isinstance(backend, ColumnarBackend):
            return backend.index
        cache = self._merged_cache
        if cache is None or cache[0] != self.generation:
            self._merged_cache = (
                self.generation,
                ColumnarIndex.from_array(backend.rows()),
            )
        return self._merged_cache[1]

    @property
    def _triples(self) -> Set[Triple]:
        """Materialised set view of the current generation (cached).

        Kept for external callers written against the original
        set-backed implementation; internal hot paths read
        :attr:`backend` instead.
        """
        cache = self._set_cache
        if cache is not None and cache[0] == self.generation:
            return cache[1]
        triples = set(map(tuple, self.backend.rows().tolist()))
        self._set_cache = (self.generation, triples)
        return triples

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._committed.size + self._pending_rows + len(self._delta)

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = (int(t) for t in triple)
        if (s, p, o) in self._delta or self._in_pending((s, p, o)):
            return True
        return self._committed.contains(s, p, o)

    def _in_pending(self, triple: Triple) -> bool:
        """Membership probe over the pending bulk batches.

        One O(pending rows) set build on the first probe after a batch,
        O(1) per probe afterwards — never a consolidation: a membership
        check between ingest batches must not force a full permutation
        rebuild of the store.
        """
        if not self._pending:
            return False
        if self._pending_probe is None:
            rows = np.concatenate(self._pending)
            self._pending_probe = set(map(tuple, rows.tolist()))
        return triple in self._pending_probe

    def __iter__(self) -> Iterator[Triple]:
        return iter(map(tuple, self.backend.rows().tolist()))

    @property
    def num_triples(self) -> int:
        return len(self)

    def nodes(self) -> List[int]:
        """All node ids appearing as subject or object (sorted, cached)."""
        cache = self._nodes_cache
        if cache is None or cache[0] != self.generation:
            nodes = self.backend.nodes().tolist()
            self._nodes_cache = (self.generation, nodes)
            return nodes
        return cache[1]

    def predicates(self) -> List[int]:
        """All predicate ids in use (sorted)."""
        return self.backend.predicates().tolist()

    @property
    def num_nodes(self) -> int:
        return len(self.nodes())

    @property
    def num_predicates(self) -> int:
        return int(self.backend.predicates().size)

    def subjects(self) -> List[int]:
        """All distinct subject ids (sorted)."""
        return self.backend.subjects().tolist()

    def objects(self) -> List[int]:
        """All distinct object ids (sorted)."""
        return self.backend.objects().tolist()

    def objects_of(self, s: int, p: int) -> Set[int]:
        """Objects o with (s, p, o) in the store.

        Legacy set shim; array consumers should call
        ``store.backend.objects_of(s, p)`` (sorted ndarray, no copy).
        """
        return set(self.backend.objects_of(s, p).tolist())

    def subjects_of(self, p: int, o: int) -> Set[int]:
        """Subjects s with (s, p, o) in the store.

        Legacy set shim; array consumers should call
        ``store.backend.subjects_of(p, o)``.
        """
        return set(self.backend.subjects_of(p, o).tolist())

    def predicates_between(self, s: int, o: int) -> Set[int]:
        """Predicates p with (s, p, o) in the store.

        Legacy set shim; array consumers should call
        ``store.backend.predicates_between(s, o)``.
        """
        return set(self.backend.predicates_between(s, o).tolist())

    def out_predicates(self, s: int) -> Set[int]:
        """The emitting predicate set of *s* (its characteristic set).

        Legacy set shim; array consumers should call
        ``store.backend.out_predicates(s)`` (sorted distinct ndarray).
        """
        return set(self.backend.out_predicates(s).tolist())

    def subjects_with_predicate(self, p: int) -> List[int]:
        """Distinct subjects appearing with predicate *p* (sorted)."""
        return self.backend.predicate_subject_stats(p)[0].tolist()

    def objects_with_predicate(self, p: int) -> List[int]:
        """Distinct objects appearing with predicate *p* (sorted)."""
        return self.backend.predicate_object_stats(p)[0].tolist()

    def out_edges(self, s: int) -> List[Tuple[int, int]]:
        """All (p, o) pairs leaving node *s*, sorted by (p, o).

        Legacy list shim; array consumers should call
        ``store.backend.out_slice(s)`` for the two sorted columns.
        """
        preds, objs = self.backend.out_slice(s)
        return list(zip(preds.tolist(), objs.tolist()))

    def in_edges(self, o: int) -> List[Tuple[int, int]]:
        """All (s, p) pairs entering node *o*, sorted by (s, p).

        Legacy list shim; array consumers should call
        ``store.backend.in_slice(o)`` for the two sorted columns.
        """
        subs, preds = self.backend.in_slice(o)
        return list(zip(subs.tolist(), preds.tolist()))

    def out_degree(self, s: int) -> int:
        return self.backend.out_degree(s)

    def in_degree(self, o: int) -> int:
        return self.backend.in_degree(o)

    def predicate_count(self, p: int) -> int:
        """Number of triples with predicate *p*."""
        return self.backend.predicate_count(p)

    # ------------------------------------------------------------------
    # Single-pattern matching
    # ------------------------------------------------------------------

    def match_pattern(self, tp: TriplePattern) -> Iterator[Triple]:
        """Yield every stored triple matching a single triple pattern.

        Repeated variables inside the pattern (e.g. ``(?x, p, ?x)``) are
        honoured: positions sharing a variable must carry equal ids.
        """
        s_b, p_b, o_b = is_bound(tp.s), is_bound(tp.p), is_bound(tp.o)
        candidates = self._candidates(tp, s_b, p_b, o_b)
        same_so = isinstance(tp.s, Variable) and tp.s == tp.o
        same_sp = isinstance(tp.s, Variable) and tp.s == tp.p
        same_po = isinstance(tp.p, Variable) and tp.p == tp.o
        for triple in candidates:
            s, p, o = triple
            if same_so and s != o:
                continue
            if same_sp and s != p:
                continue
            if same_po and p != o:
                continue
            yield triple

    def _candidates(
        self, tp: TriplePattern, s_b: bool, p_b: bool, o_b: bool
    ) -> Iterator[Triple]:
        """Route the bound positions to the backend's best access path."""
        backend = self.backend
        if s_b and p_b and o_b:
            triple = tp.as_triple()
            if backend.contains(*triple):
                yield triple
            return
        if s_b and p_b:
            for o in backend.objects_of(tp.s, tp.p).tolist():
                yield (tp.s, tp.p, o)
            return
        if p_b and o_b:
            for s in backend.subjects_of(tp.p, tp.o).tolist():
                yield (s, tp.p, tp.o)
            return
        if s_b and o_b:
            for p in backend.predicates_between(tp.s, tp.o).tolist():
                yield (tp.s, p, tp.o)
            return
        if s_b:
            preds, objs = backend.out_slice(tp.s)
            for p, o in zip(preds.tolist(), objs.tolist()):
                yield (tp.s, p, o)
            return
        if p_b:
            subs, objs = backend.pred_slice(tp.p)
            for s, o in zip(subs.tolist(), objs.tolist()):
                yield (s, tp.p, o)
            return
        if o_b:
            subs, preds = backend.in_slice(tp.o)
            for s, p in zip(subs.tolist(), preds.tolist()):
                yield (s, p, tp.o)
            return
        yield from iter(self)

    def count_pattern(self, tp: TriplePattern) -> int:
        """Exact result count of a single triple pattern.

        Every no-repeated-variable shape is a pure range width on one
        permutation (routed to the owning shard on a sharded backend) —
        no candidate materialisation.
        """
        has_repeat = len(tp.variables) != len(set(tp.variables))
        if has_repeat:
            return sum(1 for _ in self.match_pattern(tp))
        s = tp.s if is_bound(tp.s) else None
        p = tp.p if is_bound(tp.p) else None
        o = tp.o if is_bound(tp.o) else None
        if s is None and p is None and o is None:
            return len(self)
        return self.backend.count(s, p, o)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_lexical(
        cls, triples: Iterable[Tuple[str, str, str]]
    ) -> "TripleStore":
        """Build a store (plus dictionaries) from lexical string triples."""
        dictionary = GraphDictionary()
        store = cls(dictionary)
        for s, p, o in triples:
            store.add(*dictionary.encode_triple(s, p, o))
        return store

    @classmethod
    def from_backend(
        cls,
        backend: StoreBackend,
        dictionary: Optional[GraphDictionary] = None,
    ) -> "TripleStore":
        """Adopt an existing backend as the committed state, as-is.

        The backend becomes the committed state at generation 0 with no
        per-triple work.  If it is memmap-backed, the first mutation
        demotes the store to in-memory arrays; the underlying files are
        never modified.
        """
        store = cls(dictionary)
        store._committed = backend
        backend.generation = 0
        store._backend_cache = (0, backend)
        return store

    @classmethod
    def from_columnar(
        cls,
        index: ColumnarIndex,
        dictionary: Optional[GraphDictionary] = None,
    ) -> "TripleStore":
        """Adopt an existing index (typically a loaded snapshot) as-is.

        The index is wrapped in a :class:`ColumnarBackend`;
        ``store.columnar`` keeps returning this exact object.
        """
        return cls.from_backend(ColumnarBackend(index), dictionary)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @property
    def read_only(self) -> bool:
        """True when this store was opened with ``read_only=True``."""
        return self._read_only

    @property
    def snapshot_source(self) -> Optional[Path]:
        """The on-disk snapshot this store still mirrors, if any.

        Set by :meth:`save_snapshot` and :meth:`load_snapshot` and
        **invalidated by any mutation**: once the store's generation has
        moved past the snapshotted one, the path is no longer a faithful
        image of the in-memory state, and handing it to snapshot-sharing
        workers would make them label against stale data.  Consumers
        (``repro.rdf.parallel``) therefore re-snapshot when this returns
        None instead of trusting a demoted parent's old directory.
        """
        if (
            self._snapshot_path is not None
            and self._snapshot_generation == self.generation
        ):
            return self._snapshot_path
        return None

    def save_snapshot(
        self,
        directory: Union[str, Path],
        record_source: bool = True,
        shards: Optional[int] = None,
        shard_by: str = "subject",
    ) -> Path:
        """Persist the store (backend + dictionaries) to *directory*.

        With ``shards=None`` (default) the committed backend is written
        in its own representation — a columnar store writes the familiar
        single-index snapshot, a sharded store its shard directories.
        ``shards=N`` re-shards the full triple set into N directories
        (``shard_by`` selects ``"subject"`` — the default, uniform hash
        of the subject — or ``"predicate"`` routing) behind a top-level
        manifest listing every shard with its triple count and CRC32.
        In every case the term dictionaries are written as JSON when
        present, the manifest carries the dictionary checksum, and the
        manifest is written last.  Returns the manifest path.

        By default the directory is recorded as this store's
        :attr:`snapshot_source`.  Pass ``record_source=False`` for
        throwaway snapshots (e.g. a labeling pool's tempdir): a path
        that is deleted right after use must not linger as the store's
        supposed on-disk image, or the next pool would attach its
        workers to a directory that no longer exists.
        """
        directory = Path(directory)
        extra = {"has_dictionary": self.dictionary is not None}
        if self.dictionary is not None:
            extra["dictionary_checksum"] = self.dictionary.checksum()
            directory.mkdir(parents=True, exist_ok=True)
            (directory / DICTIONARY_NAME).write_text(
                json.dumps(self.dictionary.to_payload()) + "\n",
                encoding="utf-8",
            )
        backend = self.backend
        if shards is not None:
            if (
                not isinstance(backend, ShardedBackend)
                or backend.num_shards != shards
                or backend.shard_by != shard_by
            ):
                backend = ShardedBackend.from_rows(
                    backend.rows(), shards, shard_by
                )
        manifest = backend.save(directory, extra_manifest=extra)
        if record_source:
            self._snapshot_path = directory
            self._snapshot_generation = self.generation
        return manifest

    @classmethod
    def load_snapshot(
        cls,
        directory: Union[str, Path],
        mmap_mode: Optional[str] = "r",
        verify: bool = True,
        read_only: bool = False,
        load_dictionary: bool = True,
        shard_ids: Optional[Sequence[int]] = None,
    ) -> "TripleStore":
        """Load a saved store: columns come back as read-only memmaps.

        Works on both snapshot formats — the manifest's ``format``
        marker picks :class:`ColumnarBackend` or
        :class:`ShardedBackend`, so callers need not know how the
        snapshot was saved.  ``shard_ids=[...]`` attaches only those
        shards of a sharded snapshot (the per-shard worker mode; the
        store then answers as if it held exactly those shards' triples);
        passing it for a single-index snapshot raises
        :class:`SnapshotError`.

        There is no per-triple work; with the default ``verify=True``
        the load still performs one O(N) sequential CRC32 pass over the
        columns (pass ``verify=False`` for a truly O(1) load).
        ``mmap_mode=None`` loads eagerly instead.  With
        ``read_only=True`` every later mutation raises
        :class:`ReadOnlyStoreError` instead of demoting to private
        in-memory arrays — the mode parallel-labeling workers use so one
        worker cannot silently diverge from siblings mapping the same
        snapshot.  ``load_dictionary=False`` skips parsing the term
        dictionaries entirely — id-level consumers like the labeling
        pool's workers never decode a term, and re-building the
        dictionary in every worker process would be the one non-O(1),
        non-shared part of their attach.  Raises
        :class:`~repro.rdf.columnar.SnapshotError` on a missing,
        corrupted, truncated, or version-mismatched snapshot.
        """
        directory = Path(directory)
        backend, manifest = load_backend(
            directory,
            mmap_mode=mmap_mode,
            verify=verify,
            shard_ids=shard_ids,
        )
        dictionary = None
        if manifest.get("has_dictionary") and load_dictionary:
            path = directory / DICTIONARY_NAME
            if not path.is_file():
                raise SnapshotError(
                    f"snapshot manifest promises dictionaries but "
                    f"{path} is missing"
                )
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                dictionary = GraphDictionary.from_payload(payload)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                raise SnapshotError(
                    f"unreadable snapshot dictionary {path}: {exc}"
                )
            expected = manifest.get("dictionary_checksum")
            if verify and expected is not None:
                checksum = dictionary.checksum()
                if checksum != expected:
                    raise SnapshotError(
                        f"snapshot dictionary at {path} failed checksum "
                        f"verification ({checksum} != {expected!r})"
                    )
        store = cls.from_backend(backend, dictionary)
        store._read_only = bool(read_only)
        store._snapshot_path = directory
        store._snapshot_generation = store.generation
        return store

    def memory_bytes(self) -> int:
        """Resident size of the permutation columns, in bytes.

        Used by the Table II memory comparison: four permutations of
        three int64 columns each, 96 bytes per triple (shard count does
        not change the total — shards partition the triples).
        """
        return len(self) * 3 * 8 * 4
