"""An indexed, in-memory RDF triple store.

The store keeps dictionary-encoded triples in four permutation indexes
(SPO, POS, OSP, PSO) so that every single-triple-pattern access path —
any subset of {s, p, o} bound — is answered without a scan.  This mirrors
the index layouts of RDF-3X-style engines at the scale this reproduction
needs (up to a few hundred thousand triples).

The store is the substrate under everything else: ground-truth cardinality
computation (:mod:`repro.rdf.matcher`), random-walk training-data sampling
(:mod:`repro.sampling`), and every baseline estimator.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.dictionary import GraphDictionary
from repro.rdf.terms import Triple, TriplePattern, Variable, is_bound


class TripleStore:
    """In-memory triple store with full permutation indexes.

    Attributes:
        dictionary: the node/predicate dictionaries when the store was built
            from lexical data; None for purely synthetic id-level stores.
    """

    def __init__(self, dictionary: Optional[GraphDictionary] = None) -> None:
        self.dictionary = dictionary
        self._triples: Set[Triple] = set()
        self._spo: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        self._pos: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        self._osp: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        self._pso: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        # Flattened adjacency caches for O(1) random-walk sampling;
        # rebuilt lazily after mutation.
        self._out_edges: Optional[Dict[int, List[Tuple[int, int]]]] = None
        self._in_edges: Optional[Dict[int, List[Tuple[int, int]]]] = None
        self._nodes_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, s: int, p: int, o: int) -> bool:
        """Insert a triple; returns False when it was already present."""
        triple = (s, p, o)
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._spo[s].setdefault(p, set()).add(o)
        self._pos[p].setdefault(o, set()).add(s)
        self._osp[o].setdefault(s, set()).add(p)
        self._pso[p].setdefault(s, set()).add(o)
        self._out_edges = None
        self._in_edges = None
        self._nodes_cache = None
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number actually added."""
        added = 0
        for s, p, o in triples:
            if self.add(s, p, o):
                added += 1
        return added

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    @property
    def num_triples(self) -> int:
        return len(self._triples)

    def nodes(self) -> List[int]:
        """All node ids appearing as subject or object (sorted, cached)."""
        if self._nodes_cache is None:
            ids = set(self._spo.keys()) | set(self._osp.keys())
            self._nodes_cache = sorted(ids)
        return self._nodes_cache

    def predicates(self) -> List[int]:
        """All predicate ids in use (sorted)."""
        return sorted(self._pso.keys())

    @property
    def num_nodes(self) -> int:
        return len(self.nodes())

    @property
    def num_predicates(self) -> int:
        return len(self._pso)

    def subjects(self) -> Iterable[int]:
        return self._spo.keys()

    def objects_of(self, s: int, p: int) -> Set[int]:
        """Objects o with (s, p, o) in the store."""
        return self._spo.get(s, {}).get(p, set())

    def subjects_of(self, p: int, o: int) -> Set[int]:
        """Subjects s with (s, p, o) in the store."""
        return self._pos.get(p, {}).get(o, set())

    def predicates_between(self, s: int, o: int) -> Set[int]:
        """Predicates p with (s, p, o) in the store."""
        return self._osp.get(o, {}).get(s, set())

    def out_predicates(self, s: int) -> Set[int]:
        """The emitting predicate set of *s* (its characteristic set)."""
        return set(self._spo.get(s, {}).keys())

    def out_edges(self, s: int) -> List[Tuple[int, int]]:
        """All (p, o) pairs leaving node *s*, as a flat list (cached)."""
        if self._out_edges is None:
            self._build_adjacency()
        return self._out_edges.get(s, [])  # type: ignore[union-attr]

    def in_edges(self, o: int) -> List[Tuple[int, int]]:
        """All (s, p) pairs entering node *o*, as a flat list (cached)."""
        if self._in_edges is None:
            self._build_adjacency()
        return self._in_edges.get(o, [])  # type: ignore[union-attr]

    def out_degree(self, s: int) -> int:
        return sum(len(objs) for objs in self._spo.get(s, {}).values())

    def in_degree(self, o: int) -> int:
        return sum(len(preds) for preds in self._osp.get(o, {}).values())

    def predicate_count(self, p: int) -> int:
        """Number of triples with predicate *p*."""
        return sum(len(objs) for objs in self._pso.get(p, {}).values())

    def _build_adjacency(self) -> None:
        out: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        inc: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for s, p, o in self._triples:
            out[s].append((p, o))
            inc[o].append((s, p))
        self._out_edges = dict(out)
        self._in_edges = dict(inc)

    # ------------------------------------------------------------------
    # Single-pattern matching
    # ------------------------------------------------------------------

    def match_pattern(self, tp: TriplePattern) -> Iterator[Triple]:
        """Yield every stored triple matching a single triple pattern.

        Repeated variables inside the pattern (e.g. ``(?x, p, ?x)``) are
        honoured: positions sharing a variable must carry equal ids.
        """
        s_b, p_b, o_b = is_bound(tp.s), is_bound(tp.p), is_bound(tp.o)
        candidates = self._candidates(tp, s_b, p_b, o_b)
        same_so = isinstance(tp.s, Variable) and tp.s == tp.o
        same_sp = isinstance(tp.s, Variable) and tp.s == tp.p
        same_po = isinstance(tp.p, Variable) and tp.p == tp.o
        for triple in candidates:
            s, p, o = triple
            if same_so and s != o:
                continue
            if same_sp and s != p:
                continue
            if same_po and p != o:
                continue
            yield triple

    def _candidates(
        self, tp: TriplePattern, s_b: bool, p_b: bool, o_b: bool
    ) -> Iterator[Triple]:
        """Pick the best index for the bound positions and iterate it."""
        if s_b and p_b and o_b:
            triple = tp.as_triple()
            if triple in self._triples:
                yield triple
            return
        if s_b and p_b:
            for o in self.objects_of(tp.s, tp.p):
                yield (tp.s, tp.p, o)
            return
        if p_b and o_b:
            for s in self.subjects_of(tp.p, tp.o):
                yield (s, tp.p, tp.o)
            return
        if s_b and o_b:
            for p in self.predicates_between(tp.s, tp.o):
                yield (tp.s, p, tp.o)
            return
        if s_b:
            for p, objs in self._spo.get(tp.s, {}).items():
                for o in objs:
                    yield (tp.s, p, o)
            return
        if p_b:
            for s, objs in self._pso.get(tp.p, {}).items():
                for o in objs:
                    yield (s, tp.p, o)
            return
        if o_b:
            for s, preds in self._osp.get(tp.o, {}).items():
                for p in preds:
                    yield (s, p, tp.o)
            return
        yield from self._triples

    def count_pattern(self, tp: TriplePattern) -> int:
        """Exact result count of a single triple pattern.

        Fast paths avoid materialising candidates whenever the pattern has
        no repeated variables.
        """
        has_repeat = len(tp.variables) != len(set(tp.variables))
        if has_repeat:
            return sum(1 for _ in self.match_pattern(tp))
        s_b, p_b, o_b = is_bound(tp.s), is_bound(tp.p), is_bound(tp.o)
        if s_b and p_b and o_b:
            return 1 if tp.as_triple() in self._triples else 0
        if s_b and p_b:
            return len(self.objects_of(tp.s, tp.p))
        if p_b and o_b:
            return len(self.subjects_of(tp.p, tp.o))
        if s_b and o_b:
            return len(self.predicates_between(tp.s, tp.o))
        if s_b:
            return self.out_degree(tp.s)
        if p_b:
            return self.predicate_count(tp.p)
        if o_b:
            return self.in_degree(tp.o)
        return len(self._triples)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_lexical(
        cls, triples: Iterable[Tuple[str, str, str]]
    ) -> "TripleStore":
        """Build a store (plus dictionaries) from lexical string triples."""
        dictionary = GraphDictionary()
        store = cls(dictionary)
        for s, p, o in triples:
            store.add(*dictionary.encode_triple(s, p, o))
        return store

    def memory_bytes(self) -> int:
        """Rough resident size of the index structures, in bytes.

        Used by the Table II memory comparison; counts index entries at
        pointer granularity rather than calling sys.getsizeof on every
        container, which would dominate runtime.
        """
        # Each triple appears in 4 indexes plus the base set; an entry in a
        # Python set of ints costs ~32 bytes at these sizes.
        per_triple = 32 * 5
        return len(self._triples) * per_triple
