"""An indexed, in-memory RDF triple store over a columnar numpy backend.

Triples are dictionary-encoded and, on first read, snapshotted into a
:class:`~repro.rdf.columnar.ColumnarIndex`: four sorted ``int64``
permutations (SPO, POS, OSP, PSO) answering every single-triple-pattern
access path — any subset of {s, p, o} bound — with two binary searches
over a contiguous column instead of dict/set traversal.  This mirrors
the sorted-permutation layouts of RDF-3X-style engines while keeping
the whole graph in a dozen flat arrays that the vectorized counters
(:mod:`repro.rdf.fastcount`), samplers
(:mod:`repro.sampling.random_walk`) and statistics
(:mod:`repro.rdf.stats`) consume without per-triple Python overhead.

:class:`TripleStore` is a *facade*: its mutation and accessor API is
unchanged from the original dict-of-dict-of-set implementation, so the
matcher, the baselines, and all existing callers keep working.  Every
derived structure — the columnar snapshot, the legacy dict indexes, the
flattened adjacency lists — is cached lazily and stamped with the
store's **generation counter**, which ``add`` bumps; a cache built
before a mutation can therefore never be served afterwards.

The store is the substrate under everything else: ground-truth
cardinality computation (:mod:`repro.rdf.matcher`), random-walk
training-data sampling (:mod:`repro.sampling`), and every baseline
estimator.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.columnar import ColumnarIndex
from repro.rdf.dictionary import GraphDictionary
from repro.rdf.terms import Triple, TriplePattern, Variable, is_bound


class TripleStore:
    """In-memory triple store with full permutation indexes.

    Attributes:
        dictionary: the node/predicate dictionaries when the store was built
            from lexical data; None for purely synthetic id-level stores.
        generation: mutation counter; bumped by every successful ``add``.
            Lazily derived structures remember the generation they were
            built at and rebuild when it moved on.
    """

    def __init__(self, dictionary: Optional[GraphDictionary] = None) -> None:
        self.dictionary = dictionary
        self._triples: Set[Triple] = set()
        self.generation: int = 0
        # Generation-stamped caches: (generation, payload).
        self._columnar_cache: Optional[Tuple[int, ColumnarIndex]] = None
        self._legacy_cache: Optional[Tuple[int, tuple]] = None
        self._adjacency_cache: Optional[Tuple[int, dict, dict]] = None
        self._nodes_cache: Optional[Tuple[int, List[int]]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, s: int, p: int, o: int) -> bool:
        """Insert a triple; returns False when it was already present."""
        triple = (int(s), int(p), int(o))
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self.generation += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number actually added."""
        added = 0
        for s, p, o in triples:
            if self.add(s, p, o):
                added += 1
        return added

    # ------------------------------------------------------------------
    # Columnar snapshot
    # ------------------------------------------------------------------

    @property
    def columnar(self) -> ColumnarIndex:
        """The sorted-permutation snapshot of the current generation.

        Built lazily on first access after a mutation; all vectorized
        paths (fast counters, samplers, stats) read through this.
        """
        cache = self._columnar_cache
        if cache is None or cache[0] != self.generation:
            index = ColumnarIndex.from_triples(self._triples)
            self._columnar_cache = (self.generation, index)
            return index
        return cache[1]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return tuple(int(t) for t in triple) in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    @property
    def num_triples(self) -> int:
        return len(self._triples)

    def nodes(self) -> List[int]:
        """All node ids appearing as subject or object (sorted, cached)."""
        cache = self._nodes_cache
        if cache is None or cache[0] != self.generation:
            nodes = self.columnar.nodes().tolist()
            self._nodes_cache = (self.generation, nodes)
            return nodes
        return cache[1]

    def predicates(self) -> List[int]:
        """All predicate ids in use (sorted)."""
        return self.columnar.predicates().tolist()

    @property
    def num_nodes(self) -> int:
        return len(self.nodes())

    @property
    def num_predicates(self) -> int:
        return int(self.columnar.predicates().size)

    def subjects(self) -> List[int]:
        """All distinct subject ids (sorted)."""
        return self.columnar.subjects().tolist()

    def objects(self) -> List[int]:
        """All distinct object ids (sorted)."""
        return self.columnar.objects().tolist()

    def objects_of(self, s: int, p: int) -> Set[int]:
        """Objects o with (s, p, o) in the store."""
        return set(self.columnar.objects_of(s, p).tolist())

    def subjects_of(self, p: int, o: int) -> Set[int]:
        """Subjects s with (s, p, o) in the store."""
        return set(self.columnar.subjects_of(p, o).tolist())

    def predicates_between(self, s: int, o: int) -> Set[int]:
        """Predicates p with (s, p, o) in the store."""
        return set(self.columnar.predicates_between(s, o).tolist())

    def out_predicates(self, s: int) -> Set[int]:
        """The emitting predicate set of *s* (its characteristic set)."""
        return set(self.columnar.out_predicates(s).tolist())

    def subjects_with_predicate(self, p: int) -> List[int]:
        """Distinct subjects appearing with predicate *p* (sorted)."""
        return self.columnar.predicate_subject_stats(p)[0].tolist()

    def objects_with_predicate(self, p: int) -> List[int]:
        """Distinct objects appearing with predicate *p* (sorted)."""
        return self.columnar.predicate_object_stats(p)[0].tolist()

    def out_edges(self, s: int) -> List[Tuple[int, int]]:
        """All (p, o) pairs leaving node *s*, as a flat list (cached)."""
        return self._adjacency()[0].get(s, [])

    def in_edges(self, o: int) -> List[Tuple[int, int]]:
        """All (s, p) pairs entering node *o*, as a flat list (cached)."""
        return self._adjacency()[1].get(o, [])

    def out_degree(self, s: int) -> int:
        return self.columnar.out_degree(s)

    def in_degree(self, o: int) -> int:
        return self.columnar.in_degree(o)

    def predicate_count(self, p: int) -> int:
        """Number of triples with predicate *p*."""
        return self.columnar.predicate_count(p)

    def _adjacency(self) -> Tuple[dict, dict]:
        """Flattened out-/in-adjacency dicts of the current generation.

        The cache is keyed by :attr:`generation`, so a build that
        happened before any mutation is discarded rather than served
        stale (regression-tested).
        """
        cache = self._adjacency_cache
        if cache is not None and cache[0] == self.generation:
            return cache[1], cache[2]
        col = self.columnar
        out: Dict[int, List[Tuple[int, int]]] = {}
        pairs_out = list(zip(col.spo_p.tolist(), col.spo_o.tolist()))
        subs, degs = col.subject_degrees()
        start = 0
        for s, d in zip(subs.tolist(), degs.tolist()):
            out[s] = pairs_out[start: start + d]
            start += d
        inc: Dict[int, List[Tuple[int, int]]] = {}
        pairs_in = list(zip(col.osp_s.tolist(), col.osp_p.tolist()))
        objs, indegs = col.object_degrees()
        start = 0
        for o, d in zip(objs.tolist(), indegs.tolist()):
            inc[o] = pairs_in[start: start + d]
            start += d
        self._adjacency_cache = (self.generation, out, inc)
        return out, inc

    # ------------------------------------------------------------------
    # Legacy dict indexes (compatibility views)
    # ------------------------------------------------------------------

    def _legacy_indexes(self) -> tuple:
        """Dict-of-dict-of-set views of the four permutations.

        Kept only for external code written against the original
        implementation; everything internal reads :attr:`columnar`.
        """
        cache = self._legacy_cache
        if cache is not None and cache[0] == self.generation:
            return cache[1]
        spo: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        pos: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        osp: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        pso: Dict[int, Dict[int, Set[int]]] = defaultdict(dict)
        for s, p, o in self._triples:
            spo[s].setdefault(p, set()).add(o)
            pos[p].setdefault(o, set()).add(s)
            osp[o].setdefault(s, set()).add(p)
            pso[p].setdefault(s, set()).add(o)
        indexes = (spo, pos, osp, pso)
        self._legacy_cache = (self.generation, indexes)
        return indexes

    @property
    def _spo(self) -> Dict[int, Dict[int, Set[int]]]:
        return self._legacy_indexes()[0]

    @property
    def _pos(self) -> Dict[int, Dict[int, Set[int]]]:
        return self._legacy_indexes()[1]

    @property
    def _osp(self) -> Dict[int, Dict[int, Set[int]]]:
        return self._legacy_indexes()[2]

    @property
    def _pso(self) -> Dict[int, Dict[int, Set[int]]]:
        return self._legacy_indexes()[3]

    # ------------------------------------------------------------------
    # Single-pattern matching
    # ------------------------------------------------------------------

    def match_pattern(self, tp: TriplePattern) -> Iterator[Triple]:
        """Yield every stored triple matching a single triple pattern.

        Repeated variables inside the pattern (e.g. ``(?x, p, ?x)``) are
        honoured: positions sharing a variable must carry equal ids.
        """
        s_b, p_b, o_b = is_bound(tp.s), is_bound(tp.p), is_bound(tp.o)
        candidates = self._candidates(tp, s_b, p_b, o_b)
        same_so = isinstance(tp.s, Variable) and tp.s == tp.o
        same_sp = isinstance(tp.s, Variable) and tp.s == tp.p
        same_po = isinstance(tp.p, Variable) and tp.p == tp.o
        for triple in candidates:
            s, p, o = triple
            if same_so and s != o:
                continue
            if same_sp and s != p:
                continue
            if same_po and p != o:
                continue
            yield triple

    def _candidates(
        self, tp: TriplePattern, s_b: bool, p_b: bool, o_b: bool
    ) -> Iterator[Triple]:
        """Slice the best permutation for the bound positions."""
        col = self.columnar
        if s_b and p_b and o_b:
            triple = tp.as_triple()
            if triple in self._triples:
                yield triple
            return
        if s_b and p_b:
            for o in col.objects_of(tp.s, tp.p).tolist():
                yield (tp.s, tp.p, o)
            return
        if p_b and o_b:
            for s in col.subjects_of(tp.p, tp.o).tolist():
                yield (s, tp.p, tp.o)
            return
        if s_b and o_b:
            for p in col.predicates_between(tp.s, tp.o).tolist():
                yield (tp.s, p, tp.o)
            return
        if s_b:
            preds, objs = col.out_slice(tp.s)
            for p, o in zip(preds.tolist(), objs.tolist()):
                yield (tp.s, p, o)
            return
        if p_b:
            subs, objs = col.pred_slice(tp.p)
            for s, o in zip(subs.tolist(), objs.tolist()):
                yield (s, tp.p, o)
            return
        if o_b:
            subs, preds = col.in_slice(tp.o)
            for s, p in zip(subs.tolist(), preds.tolist()):
                yield (s, p, tp.o)
            return
        yield from self._triples

    def count_pattern(self, tp: TriplePattern) -> int:
        """Exact result count of a single triple pattern.

        Every no-repeated-variable shape is a pure range width on one
        permutation — no candidate materialisation.
        """
        has_repeat = len(tp.variables) != len(set(tp.variables))
        if has_repeat:
            return sum(1 for _ in self.match_pattern(tp))
        col = self.columnar
        s_b, p_b, o_b = is_bound(tp.s), is_bound(tp.p), is_bound(tp.o)
        if s_b and p_b and o_b:
            return 1 if tp.as_triple() in self._triples else 0
        if s_b and p_b:
            return col.count_sp(tp.s, tp.p)
        if p_b and o_b:
            return col.count_po(tp.p, tp.o)
        if s_b and o_b:
            return col.count_so(tp.s, tp.o)
        if s_b:
            return col.out_degree(tp.s)
        if p_b:
            return col.predicate_count(tp.p)
        if o_b:
            return col.in_degree(tp.o)
        return len(self._triples)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_lexical(
        cls, triples: Iterable[Tuple[str, str, str]]
    ) -> "TripleStore":
        """Build a store (plus dictionaries) from lexical string triples."""
        dictionary = GraphDictionary()
        store = cls(dictionary)
        for s, p, o in triples:
            store.add(*dictionary.encode_triple(s, p, o))
        return store

    def memory_bytes(self) -> int:
        """Resident size of the columnar permutations, in bytes.

        Used by the Table II memory comparison: four permutations of
        three int64 columns each, 96 bytes per triple.
        """
        return len(self._triples) * 3 * 8 * 4
