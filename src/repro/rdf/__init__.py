"""RDF substrate: terms, dictionaries, the triple store, and exact matching.

This subpackage is the storage and query-evaluation layer every estimator
builds on.  Public surface:

- :class:`~repro.rdf.terms.Variable`, :class:`~repro.rdf.terms.TriplePattern`
  and the :func:`~repro.rdf.terms.pattern` helper,
- :class:`~repro.rdf.pattern.QueryPattern` with star/chain topology
  classification and the constructors
  :func:`~repro.rdf.pattern.star_pattern` /
  :func:`~repro.rdf.pattern.chain_pattern`,
- :class:`~repro.rdf.store.TripleStore` with full permutation indexes,
- :func:`~repro.rdf.matcher.count_bgp` — exact cardinalities,
- N-Triples / SPARQL-subset IO in :mod:`repro.rdf.parser`,
- dataset statistics in :mod:`repro.rdf.stats`.
"""

from repro.rdf.columnar import ColumnarIndex, SnapshotError
from repro.rdf.dictionary import UNBOUND_ID, GraphDictionary, TermDictionary
from repro.rdf.matcher import cardinalities, count_bgp, iter_bindings
from repro.rdf.parser import (
    ParseError,
    format_sparql,
    load_ntriples,
    parse_sparql,
    read_ntriples,
    write_ntriples,
)
from repro.rdf.pattern import (
    QueryPattern,
    Topology,
    chain_pattern,
    star_pattern,
)
from repro.rdf.stats import GraphStats, compute_stats
from repro.rdf.parallel import ParallelLabelingError, label_queries
from repro.rdf.store import ReadOnlyStoreError, TripleStore
from repro.rdf.treecount import count_tree, is_tree_query
from repro.rdf.terms import Triple, TriplePattern, Variable, pattern

__all__ = [
    "ColumnarIndex",
    "ParallelLabelingError",
    "ReadOnlyStoreError",
    "SnapshotError",
    "label_queries",
    "UNBOUND_ID",
    "GraphDictionary",
    "TermDictionary",
    "cardinalities",
    "count_bgp",
    "iter_bindings",
    "ParseError",
    "format_sparql",
    "load_ntriples",
    "parse_sparql",
    "read_ntriples",
    "write_ntriples",
    "QueryPattern",
    "Topology",
    "chain_pattern",
    "star_pattern",
    "GraphStats",
    "compute_stats",
    "TripleStore",
    "count_tree",
    "is_tree_query",
    "Triple",
    "TriplePattern",
    "Variable",
    "pattern",
]
