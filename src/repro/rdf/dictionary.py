"""Dictionary encoding between lexical RDF terms (URIs/literals) and ids.

Knowledge-graph engines almost universally dictionary-encode terms; LMKG's
encodings (Section V of the paper) assume every node and predicate carries an
integer id in ``[1, max]``.  Ids are assigned densely starting at 1 — id 0 is
reserved to mean "absent/unbound" in the model encodings, mirroring the
paper's treatment of unbound terms.

Nodes (subjects and objects) share a single id space, because a chain query
requires expressing that the object of one triple equals the subject of the
next.  Predicates get their own id space.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Sequence

#: Reserved id meaning "unbound"; never assigned to a real term.
UNBOUND_ID = 0


class TermDictionary:
    """Bidirectional mapping for one term domain (nodes or predicates)."""

    def __init__(self) -> None:
        self._to_id: Dict[str, int] = {}
        self._to_term: List[str] = []  # index i holds term with id i + 1

    def __len__(self) -> int:
        return len(self._to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._to_id

    def encode(self, term: str) -> int:
        """Return the id of *term*, assigning the next free id if new."""
        existing = self._to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._to_term) + 1
        self._to_id[term] = new_id
        self._to_term.append(term)
        return new_id

    def lookup(self, term: str) -> Optional[int]:
        """Return the id of *term* or None when it was never encoded."""
        return self._to_id.get(term)

    def decode(self, term_id: int) -> str:
        """Return the lexical form for *term_id*.

        Raises:
            KeyError: for the unbound id or any id never assigned.
        """
        if term_id == UNBOUND_ID:
            raise KeyError("id 0 is reserved for unbound terms")
        if not 1 <= term_id <= len(self._to_term):
            raise KeyError(f"unknown term id {term_id}")
        return self._to_term[term_id - 1]

    def items(self) -> Iterable[tuple]:
        """Iterate ``(term, id)`` pairs in id order."""
        for i, term in enumerate(self._to_term):
            yield term, i + 1

    def to_list(self) -> List[str]:
        """All terms in id order (id of ``result[i]`` is ``i + 1``)."""
        return list(self._to_term)

    @classmethod
    def from_terms(cls, terms: Sequence[str]) -> "TermDictionary":
        """Rebuild a dictionary from an id-ordered term list.

        Raises:
            ValueError: when the list carries a duplicate or non-string
                term (a corrupted snapshot payload).
        """
        dictionary = cls()
        for term in terms:
            if not isinstance(term, str):
                raise ValueError(f"non-string term {term!r}")
            if term in dictionary._to_id:
                raise ValueError(f"duplicate term {term!r}")
            dictionary.encode(term)
        return dictionary


class GraphDictionary:
    """The two dictionaries of a knowledge graph: nodes and predicates."""

    def __init__(self) -> None:
        self.nodes = TermDictionary()
        self.predicates = TermDictionary()

    @property
    def num_nodes(self) -> int:
        """Number of distinct subjects/objects (shared id space)."""
        return len(self.nodes)

    @property
    def num_predicates(self) -> int:
        return len(self.predicates)

    def encode_triple(self, s: str, p: str, o: str) -> tuple:
        """Encode a lexical triple, assigning ids as needed."""
        return (
            self.nodes.encode(s),
            self.predicates.encode(p),
            self.nodes.encode(o),
        )

    def decode_triple(self, triple: tuple) -> tuple:
        s, p, o = triple
        return (
            self.nodes.decode(s),
            self.predicates.decode(p),
            self.nodes.decode(o),
        )

    # ------------------------------------------------------------------
    # Persistence (store snapshots)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-serialisable form: both term lists in id order."""
        return {
            "nodes": self.nodes.to_list(),
            "predicates": self.predicates.to_list(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "GraphDictionary":
        """Rebuild from :meth:`to_payload` output.

        Raises:
            KeyError/TypeError/ValueError: when the payload is not a
                well-formed dictionary snapshot.
        """
        dictionary = cls()
        dictionary.nodes = TermDictionary.from_terms(payload["nodes"])
        dictionary.predicates = TermDictionary.from_terms(
            payload["predicates"]
        )
        return dictionary

    def checksum(self) -> str:
        """CRC32 over both term lists, as 8 hex digits.

        Recorded in store-snapshot manifests so a snapshot whose
        dictionaries drifted from its columns is rejected at load time.
        """
        crc = 0
        for domain in (self.nodes, self.predicates):
            for term in domain.to_list():
                crc = zlib.crc32(term.encode("utf-8"), crc)
                crc = zlib.crc32(b"\x00", crc)
            crc = zlib.crc32(b"\x01", crc)
        return f"{crc & 0xFFFFFFFF:08x}"
