"""Lexical IO: N-Triples files and a SPARQL-subset query parser.

The parser covers the fragment LMKG estimates over — SELECT queries whose
WHERE clause is a conjunction of triple patterns with URI terms and
variables — which is what the examples and tests need to read realistic
query text.  It is intentionally not a full SPARQL 1.1 parser.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from repro.rdf.dictionary import GraphDictionary
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import PatternTerm, TriplePattern, Variable


class ParseError(ValueError):
    """Raised when query or data text cannot be parsed."""


# ----------------------------------------------------------------------
# N-Triples
# ----------------------------------------------------------------------

_NT_TERM = re.compile(
    r"""<(?P<uri>[^>]*)>          # URI
      | "(?P<lit>(?:[^"\\]|\\.)*)"(?:\^\^<[^>]*>|@[A-Za-z0-9-]+)?  # literal
      | _:(?P<bnode>\S+)          # blank node
    """,
    re.VERBOSE,
)


def parse_ntriples_line(line: str) -> Union[Tuple[str, str, str], None]:
    """Parse one N-Triples line into lexical (s, p, o), or None for blanks.

    Literals keep their quoted lexical form (without datatype/lang tag);
    blank nodes keep the ``_:label`` form.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    terms: List[str] = []
    pos = 0
    for _ in range(3):
        match = _NT_TERM.match(stripped, pos)
        if match is None:
            raise ParseError(f"malformed N-Triples line: {line!r}")
        if match.group("uri") is not None:
            terms.append(match.group("uri"))
        elif match.group("lit") is not None:
            terms.append('"' + match.group("lit") + '"')
        else:
            terms.append("_:" + match.group("bnode"))
        pos = match.end()
        while pos < len(stripped) and stripped[pos] in " \t":
            pos += 1
    if pos >= len(stripped) or stripped[pos] != ".":
        raise ParseError(f"missing terminating '.' in: {line!r}")
    return (terms[0], terms[1], terms[2])


def read_ntriples(path: Union[str, Path]) -> Iterator[Tuple[str, str, str]]:
    """Stream lexical triples from an N-Triples file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            parsed = parse_ntriples_line(line)
            if parsed is not None:
                yield parsed


def load_ntriples(path: Union[str, Path]) -> TripleStore:
    """Load an N-Triples file into a dictionary-encoded store."""
    return TripleStore.from_lexical(read_ntriples(path))


def write_ntriples(
    path: Union[str, Path], triples: Iterable[Tuple[str, str, str]]
) -> int:
    """Write lexical triples as N-Triples; returns the line count."""

    def render(term: str) -> str:
        if term.startswith('"') or term.startswith("_:"):
            return term
        return f"<{term}>"

    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for s, p, o in triples:
            handle.write(f"{render(s)} {render(p)} {render(o)} .\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# SPARQL subset
# ----------------------------------------------------------------------

_TOKEN = re.compile(
    r"""\?(?P<var>[A-Za-z_][A-Za-z0-9_]*)
      | <(?P<uri>[^>]*)>
      | "(?P<lit>(?:[^"\\]|\\.)*)"
      | (?P<punct>[{}.;,])
      | (?P<word>[A-Za-z_:][A-Za-z0-9_:\-]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at {pos}")
        if match.group("var") is not None:
            tokens.append(("var", match.group("var")))
        elif match.group("uri") is not None:
            tokens.append(("term", match.group("uri")))
        elif match.group("lit") is not None:
            tokens.append(("term", '"' + match.group("lit") + '"'))
        elif match.group("punct") is not None:
            tokens.append(("punct", match.group("punct")))
        else:
            tokens.append(("word", match.group("word")))
        pos = match.end()
    return tokens


def parse_sparql(
    text: str, dictionary: GraphDictionary
) -> QueryPattern:
    """Parse a SELECT query's WHERE clause into a :class:`QueryPattern`.

    Supported form::

        SELECT ?x ?y WHERE { ?x <p> <o> . ?x <q> ?y ; <r> ?z . }

    Semicolon shorthand (shared subject) and prefixed bare words as terms
    are accepted.  Terms are resolved against *dictionary*; unknown terms
    raise :class:`ParseError` because a term absent from the graph cannot
    be dictionary-encoded (its true cardinality is zero).
    """
    tokens = _tokenize(text)
    try:
        brace_open = next(
            i for i, (k, v) in enumerate(tokens)
            if k == "punct" and v == "{"
        )
        brace_close = max(
            i for i, (k, v) in enumerate(tokens)
            if k == "punct" and v == "}"
        )
    except (StopIteration, ValueError):
        raise ParseError("query must contain a braced WHERE clause")
    body = tokens[brace_open + 1: brace_close]

    def resolve(kind: str, value: str, position: str) -> PatternTerm:
        if kind == "var":
            return Variable(value)
        table = (
            dictionary.predicates if position == "p" else dictionary.nodes
        )
        term_id = table.lookup(value)
        if term_id is None:
            raise ParseError(
                f"term {value!r} does not occur in the graph ({position})"
            )
        return term_id

    triples: List[TriplePattern] = []
    idx = 0
    current_subject: PatternTerm = None  # type: ignore[assignment]
    expect_subject = True
    while idx < len(body):
        if expect_subject:
            kind, value = body[idx]
            if kind == "punct":
                raise ParseError(f"expected subject, got {value!r}")
            current_subject = resolve(kind, value, "s")
            idx += 1
        if idx + 1 >= len(body):
            raise ParseError("truncated triple pattern")
        p_kind, p_value = body[idx]
        o_kind, o_value = body[idx + 1]
        predicate = resolve(p_kind, p_value, "p")
        obj = resolve(o_kind, o_value, "o")
        triples.append(TriplePattern(current_subject, predicate, obj))
        idx += 2
        if idx < len(body):
            kind, value = body[idx]
            if kind != "punct" or value not in ".;":
                raise ParseError(f"expected '.' or ';', got {value!r}")
            expect_subject = value == "."
            idx += 1
        else:
            expect_subject = True
    if not triples:
        raise ParseError("empty WHERE clause")
    return QueryPattern(triples)


def format_sparql(
    query: QueryPattern, dictionary: GraphDictionary
) -> str:
    """Render a query pattern back to SPARQL text (for examples/logs)."""

    def render(term: PatternTerm, position: str) -> str:
        if isinstance(term, Variable):
            return f"?{term.name}"
        table = (
            dictionary.predicates if position == "p" else dictionary.nodes
        )
        lexical = table.decode(term)
        if lexical.startswith('"'):
            return lexical
        return f"<{lexical}>"

    variables = " ".join(f"?{v.name}" for v in query.variables) or "*"
    lines = [
        "  "
        + " ".join(
            (
                render(tp.s, "s"),
                render(tp.p, "p"),
                render(tp.o, "o"),
            )
        )
        + " ."
        for tp in query.triples
    ]
    return f"SELECT {variables} WHERE {{\n" + "\n".join(lines) + "\n}"
