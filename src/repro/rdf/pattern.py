"""Basic graph patterns (BGPs): query graphs over triple patterns.

A :class:`QueryPattern` bundles the triple patterns of a SPARQL
WHERE-clause and knows its topology.  LMKG focuses on the two most common
topologies in real query logs (Bonifati et al., VLDB 2017): *star* queries,
whose triples share a single centre subject, and *chain* queries, where the
object of each triple is the subject of the next.  Everything else is
*composite* and gets decomposed before estimation
(:mod:`repro.core.decomposition`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.rdf.terms import PatternTerm, TriplePattern, Variable, is_bound


class Topology(enum.Enum):
    """Recognised query-graph shapes."""

    STAR = "star"
    CHAIN = "chain"
    SINGLE = "single"
    COMPOSITE = "composite"


@dataclass(frozen=True)
class QueryPattern:
    """An ordered collection of triple patterns forming one query."""

    triples: Tuple[TriplePattern, ...]

    def __init__(self, triples: Sequence[TriplePattern]) -> None:
        object.__setattr__(self, "triples", tuple(triples))
        if not self.triples:
            raise ValueError("a query pattern needs at least one triple")

    def __len__(self) -> int:
        return len(self.triples)

    def __iter__(self):
        return iter(self.triples)

    @property
    def size(self) -> int:
        """Query size = number of triple patterns, as used in the paper."""
        return len(self.triples)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All distinct variables, in first-occurrence order."""
        seen: Dict[Variable, None] = {}
        for tp in self.triples:
            for v in tp.variables:
                seen.setdefault(v, None)
        return tuple(seen.keys())

    @property
    def num_unbound(self) -> int:
        return len(self.variables)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def topology(self) -> Topology:
        """Classify this pattern as star, chain, single, or composite."""
        if len(self.triples) == 1:
            return Topology.SINGLE
        if self.is_star():
            return Topology.STAR
        if self.is_chain():
            return Topology.CHAIN
        return Topology.COMPOSITE

    def is_star(self) -> bool:
        """True when all triples share one centre subject (term or var)."""
        if len(self.triples) < 2:
            return False
        centre = self.triples[0].s
        return all(tp.s == centre for tp in self.triples)

    def is_chain(self) -> bool:
        """True when triples form a chain: object i equals subject i+1."""
        if len(self.triples) < 2:
            return False
        for prev, nxt in zip(self.triples, self.triples[1:]):
            if prev.o != nxt.s:
                return False
        # A chain must not loop back onto the same centre like a star does.
        return True

    # ------------------------------------------------------------------
    # Node / edge orderings for the encoders (Section V of the paper)
    # ------------------------------------------------------------------

    def node_order(self) -> List[PatternTerm]:
        """Distinct node terms (subjects/objects) in traversal order.

        For a star this yields [centre, o1, o2, ...]; for a chain
        [s1, o1(=s2), o2, ...].  For composite patterns the order follows
        first occurrence across triples, which is exactly the "ordering of
        the nodes in the query" the SG-Encoding requires.
        """
        order: Dict[PatternTerm, None] = {}
        for tp in self.triples:
            order.setdefault(tp.s, None)
            order.setdefault(tp.o, None)
        return list(order.keys())

    def edge_order(self) -> List[Tuple[int, PatternTerm]]:
        """Edges as (triple index, predicate term) in triple order.

        Each triple contributes one edge even when two triples share the
        same predicate term: edge *occurrences* are ordered, matching the
        adjacency tensor A of the SG-Encoding whose third axis indexes
        edge occurrences.
        """
        return [(i, tp.p) for i, tp in enumerate(self.triples)]

    def join_count(self) -> int:
        """Number of joins = size - 1 for connected star/chain patterns."""
        return max(0, len(self.triples) - 1)

    def canonical_key(self) -> Tuple:
        """A hashable key identifying the pattern up to variable naming.

        Variables are replaced by their index in first-occurrence order so
        that two patterns differing only in variable names compare equal.
        Used for deduplicating sampled training queries.
        """
        var_ids: Dict[Variable, int] = {}

        def norm(term: PatternTerm):
            if isinstance(term, Variable):
                if term not in var_ids:
                    var_ids[term] = len(var_ids)
                return ("var", var_ids[term])
            return ("term", term)

        return tuple(
            (norm(tp.s), norm(tp.p), norm(tp.o)) for tp in self.triples
        )

    def __repr__(self) -> str:
        inner = " . ".join(repr(tp) for tp in self.triples)
        return f"QueryPattern[{inner}]"


def star_pattern(
    centre: PatternTerm, pairs: Sequence[Tuple[PatternTerm, PatternTerm]]
) -> QueryPattern:
    """Build a subject-star query from a centre and (predicate, object) pairs."""
    return QueryPattern(
        [TriplePattern(centre, p, o) for p, o in pairs]
    )


def chain_pattern(terms: Sequence[PatternTerm]) -> QueryPattern:
    """Build a chain query from the alternating node/predicate term list.

    *terms* must look like ``[n1, p1, n2, p2, ..., pk, nk+1]`` — the same
    flattened form the paper uses for the autoregressive factorisation.
    """
    if len(terms) < 3 or len(terms) % 2 == 0:
        raise ValueError(
            "chain terms must alternate node/predicate/node/... "
            f"(odd length >= 3, got {len(terms)})"
        )
    triples = []
    for i in range(0, len(terms) - 2, 2):
        triples.append(TriplePattern(terms[i], terms[i + 1], terms[i + 2]))
    return QueryPattern(triples)
