"""Specialised exact counters for star and chain queries.

Generating training data requires labelling tens of thousands of queries
with their true cardinality.  The generic backtracking matcher
(:mod:`repro.rdf.matcher`) enumerates solutions, so its cost grows with
the answer size; for the two topologies LMKG supports there are
closed-form/DP counters whose cost is independent of the result
cardinality:

- **Star** (?s shared, objects distinct variables or bound): the count is
  ``sum over candidate subjects of the product over triples of the
  per-triple match count`` — per-subject factors multiply because the
  object variables are distinct.
- **Chain** (n1 -p1-> n2 -p2-> ... with distinct node variables): a
  forward dynamic program over "number of partial walks ending at node v"
  gives the count in one pass per triple.

Both are *exact* and are validated against the generic matcher in the
test suite.  :func:`count_query` dispatches to the fast path when the
query shape allows it and falls back to :func:`repro.rdf.matcher.count_bgp`
otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.rdf import matcher
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.rdf.terms import Variable, is_bound


def _distinct_variables(query: QueryPattern) -> bool:
    """True when no variable occurs in two *different* roles that the
    fast counters cannot handle (they handle only the structural sharing
    that defines the topology)."""
    seen = {}
    for t_idx, tp in enumerate(query.triples):
        for pos, term in zip("spo", tp):
            if isinstance(term, Variable):
                seen.setdefault(term, []).append((t_idx, pos))
    return seen


def count_star(store: TripleStore, query: QueryPattern) -> Optional[int]:
    """Exact count for a subject-star query; None when not applicable.

    Applicable when all triples share the subject term, predicates are
    bound, and every object is either bound or a variable that occurs
    exactly once in the query.
    """
    centre = query.triples[0].s
    for tp in query.triples:
        if tp.s != centre or not is_bound(tp.p):
            return None
    occurrences = _distinct_variables(query)
    for var, occ in occurrences.items():
        if var == centre:
            if any(pos != "s" for _, pos in occ):
                return None
        elif len(occ) != 1 or occ[0][1] != "o":
            return None

    if is_bound(centre):
        candidates: Iterable[int] = (centre,)
    else:
        # Seed candidates from the most selective triple.
        best = min(
            query.triples,
            key=lambda tp: (
                len(store.subjects_of(tp.p, tp.o))
                if is_bound(tp.o)
                else store.predicate_count(tp.p)
            ),
        )
        if is_bound(best.o):
            candidates = store.subjects_of(best.p, best.o)
        else:
            candidates = store._pso.get(best.p, {}).keys()

    total = 0
    for s in candidates:
        product = 1
        for tp in query.triples:
            if is_bound(tp.o):
                if tp.o not in store.objects_of(s, tp.p):
                    product = 0
                    break
            else:
                factor = len(store.objects_of(s, tp.p))
                if factor == 0:
                    product = 0
                    break
                product *= factor
        total += product
    return total


def count_chain(store: TripleStore, query: QueryPattern) -> Optional[int]:
    """Exact count for a chain query via a forward DP; None if not
    applicable.

    Applicable when object i is subject i+1, predicates are bound, and
    every node variable occurs only in its chain positions.
    """
    triples = query.triples
    for prev, nxt in zip(triples, triples[1:]):
        if prev.o != nxt.s:
            return None
    for tp in triples:
        if not is_bound(tp.p):
            return None
    # Build the occurrence map the chain structure *implies* and require
    # the actual variable occurrences to match it exactly.  A variable
    # appearing anywhere else (a cycle back to an earlier node) breaks the
    # DP's independence assumption, so those queries fall back.
    chain_nodes = [triples[0].s] + [tp.o for tp in triples]
    var_nodes = [t for t in chain_nodes if isinstance(t, Variable)]
    if len(var_nodes) != len(set(var_nodes)):
        return None
    expected: Dict[Variable, list] = {}
    last = len(chain_nodes) - 1
    for i, node in enumerate(chain_nodes):
        if not isinstance(node, Variable):
            continue
        positions = []
        if i < last:
            positions.append((i, "s"))
        if i > 0:
            positions.append((i - 1, "o"))
        expected[node] = sorted(positions)
    occurrences = _distinct_variables(query)
    for var, occ in occurrences.items():
        if sorted(occ) != expected.get(var):
            return None

    # frontier: node id -> number of partial walks ending at that node.
    first = triples[0]
    frontier: Dict[int, int] = {}
    if is_bound(first.s):
        frontier[first.s] = 1
    else:
        for s in store._spo.keys():
            frontier[s] = 1

    for tp in triples:
        new_frontier: Dict[int, int] = {}
        for node, ways in frontier.items():
            objs = store.objects_of(node, tp.p)
            if not objs:
                continue
            if is_bound(tp.o):
                if tp.o in objs:
                    new_frontier[tp.o] = new_frontier.get(tp.o, 0) + ways
            else:
                for o in objs:
                    new_frontier[o] = new_frontier.get(o, 0) + ways
        frontier = new_frontier
        if not frontier:
            return 0
    return sum(frontier.values())


def count_query(store: TripleStore, query: QueryPattern) -> int:
    """Exact cardinality using the fastest applicable strategy."""
    if len(query.triples) == 1:
        tp = query.triples[0]
        if len(tp.variables) == len(set(tp.variables)):
            return store.count_pattern(tp)
        return matcher.count_bgp(store, query)
    topo = query.topology()
    if topo is Topology.STAR:
        result = count_star(store, query)
        if result is not None:
            return result
    if topo is Topology.CHAIN:
        result = count_chain(store, query)
        if result is not None:
            return result
    return matcher.count_bgp(store, query)
