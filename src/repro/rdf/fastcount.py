"""Vectorized exact counters for star and chain queries.

Generating training data requires labelling tens of thousands of queries
with their true cardinality.  The generic backtracking matcher
(:mod:`repro.rdf.matcher`) enumerates solutions, so its cost grows with
the answer size; for the two topologies LMKG supports there are
closed-form/DP counters whose cost is independent of the result
cardinality, and both run as **array reductions over the store
backend** (:mod:`repro.rdf.backend`) with no per-triple Python work —
identically on a single columnar index or a sharded store:

- **Star** (?s shared, objects distinct variables or bound): the count is
  ``sum over candidate subjects of the product over triples of the
  per-triple match count``.  Candidate subjects are one sorted array;
  each triple contributes a factor vector — an ``sp_counts`` fan-out for
  unbound objects, a sorted-membership mask for bound ones — and the
  answer is the sum of the running elementwise product.
- **Chain** (n1 -p1-> n2 -p2-> ... with distinct node variables): a
  forward DP over "number of partial walks ending at node v".  The
  frontier is a (nodes, ways) array pair; each step expands contiguous
  PSO ranges (``sp_ranges`` + one ``np.repeat``) and re-aggregates with
  ``np.unique``/``np.add.at`` — one segment-product pass per triple.

Both are *exact* and are validated against the generic matcher in the
test suite (including hypothesis property tests on random graphs).
Counts are accumulated in int64; when the float shadow of a partial
result nears the int64 range, the counter falls back to scalar-probe
arbitrary-precision Python implementations (``_count_star_python`` /
``_count_chain_python``), which double as the per-triple reference that
`benchmarks/bench_store_throughput.py` measures the vectorized path
against.  :func:`count_query`
dispatches to the fast path when the query shape allows it and falls
back to :func:`repro.rdf.matcher.count_bgp` otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.rdf import matcher
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.rdf.terms import Variable, is_bound

#: Above this magnitude int64 products may overflow; fall back to Python.
_INT64_SAFE = float(2 ** 62)


def _distinct_variables(query: QueryPattern) -> bool:
    """True when no variable occurs in two *different* roles that the
    fast counters cannot handle (they handle only the structural sharing
    that defines the topology)."""
    seen = {}
    for t_idx, tp in enumerate(query.triples):
        for pos, term in zip("spo", tp):
            if isinstance(term, Variable):
                seen.setdefault(term, []).append((t_idx, pos))
    return seen


def _star_applicable(query: QueryPattern) -> bool:
    """Shape check shared by the vectorized and Python star counters."""
    centre = query.triples[0].s
    for tp in query.triples:
        if tp.s != centre or not is_bound(tp.p):
            return False
    occurrences = _distinct_variables(query)
    for var, occ in occurrences.items():
        if var == centre:
            if any(pos != "s" for _, pos in occ):
                return False
        elif len(occ) != 1 or occ[0][1] != "o":
            return False
    return True


def count_star(store: TripleStore, query: QueryPattern) -> Optional[int]:
    """Exact count for a subject-star query; None when not applicable.

    Applicable when all triples share the subject term, predicates are
    bound, and every object is either bound or a variable that occurs
    exactly once in the query.  One factor vector per triple, one sum.
    """
    if not _star_applicable(query):
        return None
    centre = query.triples[0].s
    col = store.backend

    best = None
    best_counts = None
    if is_bound(centre):
        candidates = np.array([centre], dtype=np.int64)
    else:
        # Seed candidates from the most selective triple.
        best = min(
            query.triples,
            key=lambda tp: (
                col.count_po(tp.p, tp.o)
                if is_bound(tp.o)
                else col.predicate_count(tp.p)
            ),
        )
        if is_bound(best.o):
            candidates = col.subjects_of(best.p, best.o)
        else:
            # The grouped predicate slice gives the seed triple's
            # fan-out per candidate along with the candidates.
            candidates, best_counts = col.predicate_subject_stats(best.p)
    if candidates.size == 0:
        return 0

    products = np.ones(candidates.size, dtype=np.int64)
    shadow = np.ones(candidates.size, dtype=np.float64)
    seeded = False
    for tp in query.triples:
        if tp is best and best_counts is not None and not seeded:
            # Fan-outs already known from candidate construction.
            seeded = True
            products *= best_counts
            shadow *= best_counts
        elif is_bound(tp.o):
            member = col.sp_have_object(candidates, tp.p, tp.o)
            products *= member
            shadow *= member
        else:
            counts = col.sp_counts(candidates, tp.p)
            products *= counts
            shadow *= counts
        if float(shadow.max(initial=0.0)) > _INT64_SAFE:
            return _count_star_python(store, query)
    total = float(shadow.sum())
    if total > _INT64_SAFE:
        return _count_star_python(store, query)
    return int(products.sum())


def _chain_applicable(query: QueryPattern) -> bool:
    """Shape check shared by the vectorized and Python chain counters."""
    triples = query.triples
    for prev, nxt in zip(triples, triples[1:]):
        if prev.o != nxt.s:
            return False
    for tp in triples:
        if not is_bound(tp.p):
            return False
    # Build the occurrence map the chain structure *implies* and require
    # the actual variable occurrences to match it exactly.  A variable
    # appearing anywhere else (a cycle back to an earlier node) breaks the
    # DP's independence assumption, so those queries fall back.
    chain_nodes = [triples[0].s] + [tp.o for tp in triples]
    var_nodes = [t for t in chain_nodes if isinstance(t, Variable)]
    if len(var_nodes) != len(set(var_nodes)):
        return False
    expected: Dict[Variable, list] = {}
    last = len(chain_nodes) - 1
    for i, node in enumerate(chain_nodes):
        if not isinstance(node, Variable):
            continue
        positions = []
        if i < last:
            positions.append((i, "s"))
        if i > 0:
            positions.append((i - 1, "o"))
        expected[node] = sorted(positions)
    occurrences = _distinct_variables(query)
    for var, occ in occurrences.items():
        if sorted(occ) != expected.get(var):
            return False
    return True


def count_chain(store: TripleStore, query: QueryPattern) -> Optional[int]:
    """Exact count for a chain query via a vectorized forward DP; None if
    not applicable.

    Applicable when object i is subject i+1, predicates are bound, and
    every node variable occurs only in its chain positions.  The
    frontier (nodes, walk counts) advances one predicate slice at a
    time: contiguous PSO ranges per frontier node, expanded with one
    ``np.repeat``, re-aggregated with ``np.unique`` + ``np.add.at``.
    """
    if not _chain_applicable(query):
        return None
    col = store.backend
    triples = query.triples

    first = triples[0]
    if is_bound(first.s):
        nodes = np.array([first.s], dtype=np.int64)
        ways = np.ones(nodes.size, dtype=np.int64)
    else:
        # Unbound start: every subject contributes weight 1, so the
        # first step is just the whole predicate slice grouped by
        # object — no per-subject range search needed.
        if is_bound(first.o):
            total = col.count_po(first.p, first.o)
            if total == 0:
                return 0
            nodes = np.array([first.o], dtype=np.int64)
            ways = np.array([total], dtype=np.int64)
        else:
            _, o_col = col.pred_slice(first.p)
            if o_col.size == 0:
                return 0
            nodes, ways = np.unique(o_col, return_counts=True)
        triples = triples[1:]

    # Float shadow of the frontier: int64 additions wrap silently, so
    # overflow is detected on the (monotone, non-wrapping) float copy
    # *before* trusting any int64 aggregate.
    shadow = ways.astype(np.float64)
    for tp in triples:
        if nodes.size == 0:
            return 0
        objs, lengths = col.sp_objects(nodes, tp.p)
        if objs.size == 0:
            return 0
        keep = lengths > 0
        if not keep.all():
            lengths = lengths[keep]
            ways, shadow = ways[keep], shadow[keep]
        if is_bound(tp.o):
            # Only walks stepping exactly onto the bound object survive;
            # membership per frontier node is one searchsorted pass.
            hit = objs == tp.o
            total_shadow = float(
                np.repeat(shadow, lengths)[hit].sum()
            )
            if total_shadow > _INT64_SAFE:
                return _count_chain_python(store, query)
            total = int(np.repeat(ways, lengths)[hit].sum())
            if total == 0:
                return 0
            nodes = np.array([tp.o], dtype=np.int64)
            ways = np.array([total], dtype=np.int64)
            shadow = np.array([total_shadow])
        else:
            nodes, inverse = np.unique(objs, return_inverse=True)
            shadow = np.bincount(
                inverse,
                weights=np.repeat(shadow, lengths),
                minlength=nodes.size,
            )
            if float(shadow.max(initial=0.0)) > _INT64_SAFE:
                return _count_chain_python(store, query)
            acc = np.zeros(nodes.size, dtype=np.int64)
            np.add.at(acc, inverse, np.repeat(ways, lengths))
            ways = acc
    if float(shadow.sum()) > _INT64_SAFE:
        return _count_chain_python(store, query)
    return int(ways.sum())


# ----------------------------------------------------------------------
# Reference implementations (scalar-probe, arbitrary-precision)
# ----------------------------------------------------------------------


def _count_star_python(
    store: TripleStore, query: QueryPattern
) -> Optional[int]:
    """Per-subject scalar-probe star counter (arbitrary precision).

    Exact with Python ints, so it cannot overflow; serves as the
    overflow fallback of :func:`count_star` and as the per-triple-probe
    reference that ``bench_store_throughput`` measures the vectorized
    path against.  Every probe is a scalar backend call — one binary
    search each — mirroring the original per-subject loop's work
    profile.
    """
    if not _star_applicable(query):
        return None
    backend = store.backend
    centre = query.triples[0].s
    if is_bound(centre):
        candidates: Iterable[int] = (int(centre),)
    else:
        best = min(
            query.triples,
            key=lambda tp: (
                backend.count_po(tp.p, tp.o)
                if is_bound(tp.o)
                else backend.predicate_count(tp.p)
            ),
        )
        if is_bound(best.o):
            candidates = backend.subjects_of(best.p, best.o).tolist()
        else:
            candidates = backend.predicate_subject_stats(best.p)[0].tolist()

    total = 0
    for s in candidates:
        product = 1
        for tp in query.triples:
            if is_bound(tp.o):
                if not backend.contains(s, tp.p, tp.o):
                    product = 0
                    break
            else:
                fanout = backend.count_sp(s, tp.p)
                if fanout == 0:
                    product = 0
                    break
                product *= fanout
        total += product
    return total


def _count_chain_python(
    store: TripleStore, query: QueryPattern
) -> Optional[int]:
    """Dict-frontier scalar-probe chain DP (see
    :func:`_count_star_python` for why it is kept)."""
    if not _chain_applicable(query):
        return None
    backend = store.backend
    triples = query.triples
    first = triples[0]
    frontier: Dict[int, int] = {}
    if is_bound(first.s):
        frontier[int(first.s)] = 1
    else:
        for s in backend.subjects().tolist():
            frontier[s] = 1

    for tp in triples:
        new_frontier: Dict[int, int] = {}
        for node, ways in frontier.items():
            objs = backend.objects_of(node, tp.p)
            if objs.size == 0:
                continue
            if is_bound(tp.o):
                # objs is sorted: scalar membership is one bisect.
                pos = int(np.searchsorted(objs, tp.o))
                if pos < objs.size and int(objs[pos]) == tp.o:
                    new_frontier[tp.o] = new_frontier.get(tp.o, 0) + ways
            else:
                for o in objs.tolist():
                    new_frontier[o] = new_frontier.get(o, 0) + ways
        frontier = new_frontier
        if not frontier:
            return 0
    return sum(frontier.values())


def count_query(store: TripleStore, query: QueryPattern) -> int:
    """Exact cardinality using the fastest applicable strategy."""
    if len(query.triples) == 1:
        tp = query.triples[0]
        if len(tp.variables) == len(set(tp.variables)):
            return store.count_pattern(tp)
        return matcher.count_bgp(store, query)
    topo = query.topology()
    if topo is Topology.STAR:
        result = count_star(store, query)
        if result is not None:
            return result
    if topo is Topology.CHAIN:
        result = count_chain(store, query)
        if result is not None:
            return result
    return matcher.count_bgp(store, query)
