"""Exact counting for tree-shaped BGPs via message passing.

The SG-Encoding was designed so that one model can also learn tree
queries (paper §V-A1: "the same model may later be trained on tree or
clique queries of a predefined size").  Supporting that requires exact
tree cardinalities for training labels; enumeration through the generic
matcher grows with the answer size, while the classic message-passing DP
is linear in the graph fan-out:

    count(node = v) = prod over child edges (p, child, direction) of
                      sum over matching neighbours w of count(child = w)

valid whenever the query's undirected shape is a tree and every variable
occurs at exactly the positions the tree implies (no hidden cycles).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import PatternTerm, TriplePattern, Variable, is_bound


def is_tree_query(query: QueryPattern) -> bool:
    """True when the query's undirected node graph is a tree.

    Requires: connected, |edges| = |nodes| - 1, no repeated edges between
    the same node pair collapsing the count, and every variable used only
    as a node (bound predicates).
    """
    if any(not is_bound(tp.p) for tp in query.triples):
        return False
    nodes = query.node_order()
    if len(nodes) != len(query.triples) + 1:
        return False
    adjacency: Dict[PatternTerm, Set[PatternTerm]] = defaultdict(set)
    for tp in query.triples:
        if tp.s == tp.o:
            return False
        adjacency[tp.s].add(tp.o)
        adjacency[tp.o].add(tp.s)
    # Connectivity check by BFS over the undirected shape.
    seen = {nodes[0]}
    frontier = [nodes[0]]
    while frontier:
        current = frontier.pop()
        for neighbour in adjacency[current]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) == len(nodes)


def _build_rooted_tree(
    query: QueryPattern,
) -> Tuple[PatternTerm, Dict[PatternTerm, List[Tuple]]]:
    """Orient the tree away from the first subject.

    Returns (root, children) where children[node] is a list of
    ``(predicate, child_node, outgoing)`` — ``outgoing`` is True when the
    stored triple runs node -> child.
    """
    root = query.triples[0].s
    edges: List[Tuple] = []
    for tp in query.triples:
        edges.append(tp)
    children: Dict[PatternTerm, List[Tuple]] = defaultdict(list)
    placed: Set[int] = set()
    frontier = [root]
    visited = {root}
    while frontier:
        current = frontier.pop()
        for idx, tp in enumerate(edges):
            if idx in placed:
                continue
            if tp.s == current and tp.o not in visited:
                children[current].append((tp.p, tp.o, True))
                visited.add(tp.o)
                frontier.append(tp.o)
                placed.add(idx)
            elif tp.o == current and tp.s not in visited:
                children[current].append((tp.p, tp.s, False))
                visited.add(tp.s)
                frontier.append(tp.s)
                placed.add(idx)
    return root, children


def count_tree(store: TripleStore, query: QueryPattern) -> Optional[int]:
    """Exact cardinality of a tree BGP, or None when not applicable.

    Applicable when :func:`is_tree_query` holds and every variable is
    distinct (occurs at one tree node).
    """
    if not is_tree_query(query):
        return None
    variables = [
        t for t in query.node_order() if isinstance(t, Variable)
    ]
    if len(variables) != len(set(variables)):
        return None
    root, children = _build_rooted_tree(query)

    # The DP makes huge numbers of tiny (term, value) probes; each is
    # one sorted-range slice on the backend (routed to the owning shard
    # on a sharded store), memoised per (tree node, graph value).
    backend = store.backend

    memo: Dict[Tuple[PatternTerm, int], int] = {}

    def subtree_count(term: PatternTerm, value: int, depth: int) -> int:
        key = (term, value)
        cached = memo.get(key)
        if cached is not None:
            return cached
        product = 1
        for predicate, child, outgoing in children.get(term, []):
            neighbours = (
                backend.objects_of(value, predicate)
                if outgoing
                else backend.subjects_of(predicate, value)
            )
            if isinstance(child, Variable):
                total = 0
                for w in neighbours.tolist():
                    total += subtree_count(child, w, depth + 1)
            else:
                # neighbours is sorted: membership is one bisect.
                pos = int(np.searchsorted(neighbours, child))
                present = (
                    pos < neighbours.size
                    and int(neighbours[pos]) == child
                )
                total = (
                    subtree_count(child, child, depth + 1)
                    if present
                    else 0
                )
            if total == 0:
                product = 0
                break
            product *= total
        memo[key] = product
        return product

    if is_bound(root):
        return subtree_count(root, root, 0)
    # Candidate roots: nodes matching the root's most selective edge.
    total = 0
    first_p, first_child, outgoing = children[root][0]
    if outgoing:
        candidates = store.subjects_with_predicate(first_p)
    else:
        candidates = store.objects_with_predicate(first_p)
    for value in candidates:
        total += subtree_count(root, value, 0)
    return total
