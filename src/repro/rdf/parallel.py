"""Multiprocess query labeling over one shared memory-mapped snapshot.

Training-set generation labels tens of thousands of star/chain queries
with their exact cardinality.  The vectorized counters
(:mod:`repro.rdf.fastcount`) removed the per-triple Python work; this
module removes the single-core ceiling by sharding a query batch across
a ``multiprocessing`` pool.

The design follows directly from the snapshot subsystem:

- **No store pickling, no per-worker rebuild.**  Each worker attaches to
  the same on-disk snapshot via :meth:`TripleStore.load_snapshot` —
  twelve ``np.load(..., mmap_mode="r")`` calls, so the permutation
  columns are shared read-only pages, resident **once** across the whole
  pool.  Only the queries and their int64 counts cross process
  boundaries.
- **Workers are read-only.**  Snapshots are attached with
  ``read_only=True``: a worker that mutated its copy would silently
  diverge from its siblings, so mutation raises
  :class:`~repro.rdf.store.ReadOnlyStoreError` instead (see
  :func:`label_queries` for the parent-side guard).
- **Chunked scheduling.**  Query costs are skewed (a hub-centred star is
  orders of magnitude more work than a leaf chain), so the batch is cut
  into many more chunks than workers and chunks are handed out
  dynamically; a worker stuck on an expensive chunk does not idle the
  rest of the pool.
- **Deterministic ordering.**  Chunks carry their offset and results are
  reassembled by it, so the output is byte-identical to labeling the
  batch serially with :func:`~repro.rdf.fastcount.count_query`,
  regardless of worker count or completion order.
- **Loud failures.**  A query that raises inside a worker surfaces as a
  :class:`ParallelLabelingError` carrying the worker-side traceback —
  never a silently shorter or reordered result list.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import tempfile
import traceback
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.rdf.fastcount import count_query
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore

#: Chunks handed out per worker (dynamic scheduling granularity): enough
#: that one expensive chunk cannot stall the pool for long, few enough
#: that per-chunk IPC stays negligible.
CHUNKS_PER_WORKER = 4

#: Process-global snapshot handle, populated once per worker by
#: :func:`_init_worker` so tasks carry only (offset, queries).
_WORKER_STORE: Optional[TripleStore] = None

#: Traceback of a failed worker attach, reported by the first chunk the
#: worker receives.  An initializer that *raised* instead would make
#: ``multiprocessing.Pool`` respawn the crashing worker forever — the
#: pool would hang rather than fail loudly.
_WORKER_INIT_ERROR: Optional[str] = None


class ParallelLabelingError(RuntimeError):
    """A labeling worker failed; carries the worker-side traceback."""


def available_cpus() -> int:
    """CPUs actually usable by this process.

    ``os.cpu_count()`` reports the host's logical CPUs even when the
    process is confined to fewer by cgroups or CPU affinity (containers,
    CI runners); the affinity mask reflects the real budget where the
    platform exposes it.
    """
    if hasattr(os, "sched_getaffinity"):
        return max(1, len(os.sched_getaffinity(0)))
    return max(1, os.cpu_count() or 1)


def default_workers() -> int:
    """Worker count used for ``workers=None``: one per available core."""
    return available_cpus()


def resolve_context(
    mp_context: Union[str, multiprocessing.context.BaseContext, None],
) -> multiprocessing.context.BaseContext:
    """Resolve a start-method name (or None) to a multiprocessing context.

    Defaults to ``fork`` where available (Linux): workers then inherit
    the imported modules and attach to the snapshot in milliseconds.
    Elsewhere ``spawn`` is used; everything crossing the pipe (snapshot
    path, queries, counts) is plain picklable data either way.
    """
    if isinstance(mp_context, multiprocessing.context.BaseContext):
        return mp_context
    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        mp_context = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(mp_context)


def chunk_queries(
    queries: Sequence[QueryPattern], workers: int, chunk_size: Optional[int]
) -> List[tuple]:
    """Split *queries* into ``(offset, slice)`` tasks.

    With the default ``chunk_size=None`` the batch is cut into about
    :data:`CHUNKS_PER_WORKER` chunks per worker so dynamic scheduling
    can rebalance skewed query costs.
    """
    total = len(queries)
    if chunk_size is None:
        chunk_size = max(1, math.ceil(total / (workers * CHUNKS_PER_WORKER)))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (start, list(queries[start:start + chunk_size]))
        for start in range(0, total, chunk_size)
    ]


def _init_worker(snapshot_dir: str) -> None:
    """Pool initializer: attach this process to the shared snapshot.

    ``verify=False`` skips the CRC32 pass — the parent verified (or
    just wrote) the snapshot before starting the pool, and re-hashing
    it N times defeats the O(1) attach.  ``load_dictionary=False``
    skips re-parsing the term dictionaries, which counting never
    touches and which, unlike the memmapped columns, would be a
    private per-worker copy.  ``read_only=True`` turns any accidental
    worker mutation into a loud
    :class:`~repro.rdf.store.ReadOnlyStoreError`.

    A failed attach must not raise here: ``multiprocessing.Pool``
    respawns a worker whose initializer dies, which loops forever
    instead of surfacing the error.  The traceback is stashed and
    reported by the first chunk instead.
    """
    global _WORKER_STORE, _WORKER_INIT_ERROR
    try:
        _WORKER_STORE = TripleStore.load_snapshot(
            snapshot_dir,
            verify=False,
            read_only=True,
            load_dictionary=False,
        )
    except BaseException:
        _WORKER_STORE = None
        _WORKER_INIT_ERROR = traceback.format_exc()


def _label_chunk(task: tuple) -> tuple:
    """Label one ``(offset, queries)`` chunk against the worker snapshot.

    Returns ``(offset, counts, None)`` on success and ``(offset, None,
    traceback)`` on failure: exceptions are shipped as data because a
    raised exception type that fails to unpickle in the parent would
    otherwise hang or obscure the real error.
    """
    offset, queries = task
    store = _WORKER_STORE
    try:
        if store is None:
            raise RuntimeError(
                "worker failed to attach to the shared snapshot:\n"
                f"{_WORKER_INIT_ERROR or '(no attach was attempted)'}"
            )
        return (offset, [count_query(store, q) for q in queries], None)
    except BaseException:
        return (offset, None, traceback.format_exc())


def label_serial(
    store: TripleStore, queries: Sequence[QueryPattern]
) -> List[int]:
    """The serial reference path: ``count_query`` in input order."""
    return [count_query(store, q) for q in queries]


def label_queries(
    queries: Sequence[QueryPattern],
    store: Optional[TripleStore] = None,
    snapshot_dir: Union[str, Path, None] = None,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    mp_context: Union[str, multiprocessing.context.BaseContext, None] = None,
) -> List[int]:
    """Exact cardinalities of *queries*, sharded across worker processes.

    Exactly one data source is required: an in-memory *store*, an
    on-disk *snapshot_dir*, or both (the directory then takes priority
    as the shared image, but only while it is current — see below).
    A *snapshot_dir* given without a store is loaded once, checksum-
    verified, in the parent; workers attach with ``verify=False``
    because some parent-side process has always either just written or
    just verified the files they map.

    ``workers=1`` (the default) labels serially in-process;
    ``workers=None`` uses one worker per core.  The result is always the
    counts of *queries* in input order, identical to
    :func:`label_serial`.

    Guard against demoted parents: a store that was loaded from (or
    saved to) a snapshot but has since been **mutated** no longer
    matches the files on disk
    (:attr:`~repro.rdf.store.TripleStore.snapshot_source` returns None).
    In that case the current in-memory state is re-snapshotted to a
    temporary directory for the pool instead of attaching workers to the
    stale image — parallel labeling answers against what the caller
    sees, never against what used to be on disk.

    Raises :class:`ParallelLabelingError` when a worker fails, with the
    worker-side traceback in the message.
    """
    if store is None and snapshot_dir is None:
        raise ValueError("label_queries needs a store or a snapshot_dir")
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if store is None:
        # Verified (CRC32) parent-side attach: workers skip the check,
        # so this is the one place corruption gets caught — labeling a
        # training set against bit-rotted columns must raise
        # SnapshotError here, not return wrong cardinalities.
        store = TripleStore.load_snapshot(snapshot_dir)
    queries = list(queries)
    # Serial fast paths: no pool to pay for.
    if workers == 1 or len(queries) <= 1:
        return label_serial(store, queries)

    if snapshot_dir is not None and store.snapshot_source != Path(
        snapshot_dir
    ):
        # The directory does not (or no longer does) mirror the store
        # the caller handed us; trust the in-memory state.
        snapshot_dir = None
    if snapshot_dir is None:
        # Reuse the store's own still-current snapshot when it has one.
        snapshot_dir = store.snapshot_source

    context = resolve_context(mp_context)
    if snapshot_dir is not None:
        return _label_pooled(
            Path(snapshot_dir), queries, workers, chunk_size, context
        )
    with tempfile.TemporaryDirectory(prefix="repro-label-") as tmp:
        shared = Path(tmp) / "snapshot"
        # record_source=False: this directory dies with the pool; it
        # must not linger as the store's supposed on-disk image or the
        # next pooled call would attach workers to a deleted path.
        store.save_snapshot(shared, record_source=False)
        return _label_pooled(shared, queries, workers, chunk_size, context)


def _label_pooled(
    snapshot_dir: Path,
    queries: List[QueryPattern],
    workers: int,
    chunk_size: Optional[int],
    context: multiprocessing.context.BaseContext,
) -> List[int]:
    """Run the chunked pool and reassemble counts in input order."""
    tasks = chunk_queries(queries, workers, chunk_size)
    # Never hold more processes than there are chunks of work.
    workers = min(workers, len(tasks))
    counts: List[Optional[int]] = [None] * len(queries)
    with context.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(str(snapshot_dir),),
    ) as pool:
        for offset, chunk_counts, error in pool.imap_unordered(
            _label_chunk, tasks
        ):
            if error is not None:
                raise ParallelLabelingError(
                    f"labeling worker failed on chunk at offset {offset}:"
                    f"\n{error}"
                )
            counts[offset:offset + len(chunk_counts)] = chunk_counts
    return counts  # type: ignore[return-value]
