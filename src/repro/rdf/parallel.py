"""Multiprocess query labeling over one shared memory-mapped snapshot.

Training-set generation labels tens of thousands of star/chain queries
with their exact cardinality.  The vectorized counters
(:mod:`repro.rdf.fastcount`) removed the per-triple Python work; this
module removes the single-core ceiling by sharding a query batch across
a ``multiprocessing`` pool.

The design follows directly from the snapshot subsystem:

- **No store pickling, no per-worker rebuild.**  Each worker attaches to
  the same on-disk snapshot via :meth:`TripleStore.load_snapshot` —
  twelve ``np.load(..., mmap_mode="r")`` calls, so the permutation
  columns are shared read-only pages, resident **once** across the whole
  pool.  Only the queries and their int64 counts cross process
  boundaries.
- **Workers are read-only.**  Snapshots are attached with
  ``read_only=True``: a worker that mutated its copy would silently
  diverge from its siblings, so mutation raises
  :class:`~repro.rdf.store.ReadOnlyStoreError` instead (see
  :func:`label_queries` for the parent-side guard).
- **Chunked scheduling.**  Query costs are skewed (a hub-centred star is
  orders of magnitude more work than a leaf chain), so the batch is cut
  into many more chunks than workers and chunks are handed out
  dynamically; a worker stuck on an expensive chunk does not idle the
  rest of the pool.
- **Deterministic ordering.**  Chunks carry their offset and results are
  reassembled by it, so the output is byte-identical to labeling the
  batch serially with :func:`~repro.rdf.fastcount.count_query`,
  regardless of worker count or completion order.
- **Loud failures.**  A query that raises inside a worker surfaces as a
  :class:`ParallelLabelingError` carrying the worker-side traceback —
  never a silently shorter or reordered result list.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import tempfile
import traceback
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.rdf.backend import SHARDED_FORMAT, snapshot_format
from repro.rdf.columnar import SnapshotError
from repro.rdf.fastcount import count_query
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import TriplePattern, is_bound

#: Chunks handed out per worker (dynamic scheduling granularity): enough
#: that one expensive chunk cannot stall the pool for long, few enough
#: that per-chunk IPC stays negligible.
CHUNKS_PER_WORKER = 4

#: Process-global snapshot handle, populated once per worker by
#: :func:`_init_worker` so tasks carry only (offset, queries).
_WORKER_STORE: Optional[TripleStore] = None

#: Traceback of a failed worker attach, reported by the first chunk the
#: worker receives.  An initializer that *raised* instead would make
#: ``multiprocessing.Pool`` respawn the crashing worker forever — the
#: pool would hang rather than fail loudly.
_WORKER_INIT_ERROR: Optional[str] = None


class ParallelLabelingError(RuntimeError):
    """A labeling worker failed; carries the worker-side traceback."""


class ParallelMatchError(RuntimeError):
    """A match worker failed; carries the worker-side traceback."""


def available_cpus() -> int:
    """CPUs actually usable by this process.

    ``os.cpu_count()`` reports the host's logical CPUs even when the
    process is confined to fewer by cgroups or CPU affinity (containers,
    CI runners); the affinity mask reflects the real budget where the
    platform exposes it.
    """
    if hasattr(os, "sched_getaffinity"):
        return max(1, len(os.sched_getaffinity(0)))
    return max(1, os.cpu_count() or 1)


def default_workers() -> int:
    """Worker count used for ``workers=None``: one per available core."""
    return available_cpus()


def resolve_context(
    mp_context: Union[str, multiprocessing.context.BaseContext, None],
) -> multiprocessing.context.BaseContext:
    """Resolve a start-method name (or None) to a multiprocessing context.

    Defaults to ``fork`` where available (Linux): workers then inherit
    the imported modules and attach to the snapshot in milliseconds.
    Elsewhere ``spawn`` is used; everything crossing the pipe (snapshot
    path, queries, counts) is plain picklable data either way.
    """
    if isinstance(mp_context, multiprocessing.context.BaseContext):
        return mp_context
    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        mp_context = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(mp_context)


def chunk_queries(
    queries: Sequence[QueryPattern], workers: int, chunk_size: Optional[int]
) -> List[tuple]:
    """Split *queries* into ``(offset, slice)`` tasks.

    With the default ``chunk_size=None`` the batch is cut into about
    :data:`CHUNKS_PER_WORKER` chunks per worker so dynamic scheduling
    can rebalance skewed query costs.
    """
    total = len(queries)
    if chunk_size is None:
        chunk_size = max(1, math.ceil(total / (workers * CHUNKS_PER_WORKER)))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (start, list(queries[start:start + chunk_size]))
        for start in range(0, total, chunk_size)
    ]


def _init_worker(
    snapshot_dir: str, shard_ids: Optional[Sequence[int]] = None
) -> None:
    """Pool initializer: attach this process to the shared snapshot.

    ``verify=False`` skips the CRC32 pass — the parent verified (or
    just wrote) the snapshot before starting the pool, and re-hashing
    it N times defeats the O(1) attach.  ``load_dictionary=False``
    skips re-parsing the term dictionaries, which counting never
    touches and which, unlike the memmapped columns, would be a
    private per-worker copy.  ``read_only=True`` turns any accidental
    worker mutation into a loud
    :class:`~repro.rdf.store.ReadOnlyStoreError`.

    ``shard_ids`` attaches only those shards of a sharded snapshot —
    the per-shard worker mode of :func:`match_patterns`.

    A failed attach must not raise here: ``multiprocessing.Pool``
    respawns a worker whose initializer dies, which loops forever
    instead of surfacing the error.  The traceback is stashed and
    reported by the first chunk instead.
    """
    global _WORKER_STORE, _WORKER_INIT_ERROR
    try:
        _WORKER_STORE = TripleStore.load_snapshot(
            snapshot_dir,
            verify=False,
            read_only=True,
            load_dictionary=False,
            shard_ids=shard_ids,
        )
    except BaseException:
        _WORKER_STORE = None
        _WORKER_INIT_ERROR = traceback.format_exc()


def _label_chunk(task: tuple) -> tuple:
    """Label one ``(offset, queries)`` chunk against the worker snapshot.

    Returns ``(offset, counts, None)`` on success and ``(offset, None,
    traceback)`` on failure: exceptions are shipped as data because a
    raised exception type that fails to unpickle in the parent would
    otherwise hang or obscure the real error.
    """
    offset, queries = task
    store = _WORKER_STORE
    try:
        if store is None:
            raise RuntimeError(
                "worker failed to attach to the shared snapshot:\n"
                f"{_WORKER_INIT_ERROR or '(no attach was attempted)'}"
            )
        return (offset, [count_query(store, q) for q in queries], None)
    except BaseException:
        return (offset, None, traceback.format_exc())


def label_serial(
    store: TripleStore, queries: Sequence[QueryPattern]
) -> List[int]:
    """The serial reference path: ``count_query`` in input order."""
    return [count_query(store, q) for q in queries]


def label_queries(
    queries: Sequence[QueryPattern],
    store: Optional[TripleStore] = None,
    snapshot_dir: Union[str, Path, None] = None,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    mp_context: Union[str, multiprocessing.context.BaseContext, None] = None,
) -> List[int]:
    """Exact cardinalities of *queries*, sharded across worker processes.

    Exactly one data source is required: an in-memory *store*, an
    on-disk *snapshot_dir*, or both (the directory then takes priority
    as the shared image, but only while it is current — see below).
    A *snapshot_dir* given without a store is loaded once, checksum-
    verified, in the parent; workers attach with ``verify=False``
    because some parent-side process has always either just written or
    just verified the files they map.

    ``workers=1`` (the default) labels serially in-process;
    ``workers=None`` uses one worker per core.  The result is always the
    counts of *queries* in input order, identical to
    :func:`label_serial`.

    Guard against demoted parents: a store that was loaded from (or
    saved to) a snapshot but has since been **mutated** no longer
    matches the files on disk
    (:attr:`~repro.rdf.store.TripleStore.snapshot_source` returns None).
    In that case the current in-memory state is re-snapshotted to a
    temporary directory for the pool instead of attaching workers to the
    stale image — parallel labeling answers against what the caller
    sees, never against what used to be on disk.

    Raises :class:`ParallelLabelingError` when a worker fails, with the
    worker-side traceback in the message.
    """
    if store is None and snapshot_dir is None:
        raise ValueError("label_queries needs a store or a snapshot_dir")
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if store is None:
        # Verified (CRC32) parent-side attach: workers skip the check,
        # so this is the one place corruption gets caught — labeling a
        # training set against bit-rotted columns must raise
        # SnapshotError here, not return wrong cardinalities.
        store = TripleStore.load_snapshot(snapshot_dir)
    queries = list(queries)
    # Serial fast paths: no pool to pay for.
    if workers == 1 or len(queries) <= 1:
        return label_serial(store, queries)

    if snapshot_dir is not None and store.snapshot_source != Path(
        snapshot_dir
    ):
        # The directory does not (or no longer does) mirror the store
        # the caller handed us; trust the in-memory state.
        snapshot_dir = None
    if snapshot_dir is None:
        # Reuse the store's own still-current snapshot when it has one.
        snapshot_dir = store.snapshot_source

    context = resolve_context(mp_context)
    if snapshot_dir is not None:
        return _label_pooled(
            Path(snapshot_dir), queries, workers, chunk_size, context
        )
    with tempfile.TemporaryDirectory(prefix="repro-label-") as tmp:
        shared = Path(tmp) / "snapshot"
        # record_source=False: this directory dies with the pool; it
        # must not linger as the store's supposed on-disk image or the
        # next pooled call would attach workers to a deleted path.
        store.save_snapshot(shared, record_source=False)
        return _label_pooled(shared, queries, workers, chunk_size, context)


def _label_pooled(
    snapshot_dir: Path,
    queries: List[QueryPattern],
    workers: int,
    chunk_size: Optional[int],
    context: multiprocessing.context.BaseContext,
) -> List[int]:
    """Run the chunked pool and reassemble counts in input order."""
    tasks = chunk_queries(queries, workers, chunk_size)
    # Never hold more processes than there are chunks of work.
    workers = min(workers, len(tasks))
    counts: List[Optional[int]] = [None] * len(queries)
    with context.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(str(snapshot_dir),),
    ) as pool:
        for offset, chunk_counts, error in pool.imap_unordered(
            _label_chunk, tasks
        ):
            if error is not None:
                raise ParallelLabelingError(
                    f"labeling worker failed on chunk at offset {offset}:"
                    f"\n{error}"
                )
            counts[offset:offset + len(chunk_counts)] = chunk_counts
    return counts  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Parallel pattern matching
# ----------------------------------------------------------------------


def _pattern_rows(store: TripleStore, tp: TriplePattern) -> np.ndarray:
    """All matching triples of one pattern as an ``(N, 3)`` int64 array.

    For every bound-position shape the backend's lookup order coincides
    with the global SPO row order of the matches, so this is canonical
    without any extra sort; repeated-variable patterns go through the
    facade's filtered enumeration (same order, fewer rows).
    """
    if len(tp.variables) == len(set(tp.variables)):
        return store.backend.lookup(
            tp.s if is_bound(tp.s) else None,
            tp.p if is_bound(tp.p) else None,
            tp.o if is_bound(tp.o) else None,
        )
    rows = list(store.match_pattern(tp))
    if not rows:
        return np.empty((0, 3), dtype=np.int64)
    return np.array(rows, dtype=np.int64)


def match_serial(
    store: TripleStore, patterns: Sequence[TriplePattern]
) -> List[np.ndarray]:
    """The serial reference path: one lookup per pattern, input order."""
    return [_pattern_rows(store, tp) for tp in patterns]


def _match_chunk(task: tuple) -> tuple:
    """Match one ``(offset, patterns)`` chunk against the worker snapshot."""
    offset, patterns = task
    store = _WORKER_STORE
    try:
        if store is None:
            raise RuntimeError(
                "worker failed to attach to the shared snapshot:\n"
                f"{_WORKER_INIT_ERROR or '(no attach was attempted)'}"
            )
        return (offset, [_pattern_rows(store, tp) for tp in patterns], None)
    except BaseException:
        return (offset, None, traceback.format_exc())


def _match_shard(task: tuple) -> tuple:
    """Answer every pattern against one shard of a sharded snapshot.

    The attach happens inside the task (not a pool initializer) because
    each task maps a *different* shard subset; with ``verify=False`` it
    is a handful of O(1) memmap opens.  Errors ship as data, like the
    labeling chunks.
    """
    snapshot_dir, shard_id, patterns = task
    try:
        store = TripleStore.load_snapshot(
            snapshot_dir,
            verify=False,
            read_only=True,
            load_dictionary=False,
            shard_ids=[shard_id],
        )
        return (
            shard_id,
            [_pattern_rows(store, tp) for tp in patterns],
            None,
        )
    except BaseException:
        return (shard_id, None, traceback.format_exc())


def match_patterns(
    patterns: Sequence[TriplePattern],
    store: Optional[TripleStore] = None,
    snapshot_dir: Union[str, Path, None] = None,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    mp_context: Union[str, multiprocessing.context.BaseContext, None] = None,
) -> List[np.ndarray]:
    """Enumerate the matches of many patterns, fanned out across workers.

    Returns one ``(N, 3)`` int64 array per pattern, rows in global SPO
    order — byte-identical to :func:`match_serial` regardless of worker
    count, snapshot format, or completion order.

    The data-source rules match :func:`label_queries` (in-memory store,
    on-disk snapshot, or both with the staleness guard).  The pool mode
    depends on the snapshot format:

    - **Sharded snapshot**: one task per shard; each worker attaches
      *only its shard* (``shard_ids=[i]``) and answers every pattern on
      it, so a worker's resident set is one shard's columns, not the
      whole graph.  The parent concatenates the per-shard matches of
      each pattern and restores SPO order with one lexsort — exact,
      because shards partition the matches.  This is the path that
      scales enumeration past one mmap'd index: per-worker copy work
      shrinks with the shard, where per-pattern counting overhead would
      not.
    - **Single-index snapshot**: patterns are chunked dynamically across
      workers attached to the shared image, like labeling.

    Raises :class:`ParallelMatchError` when a worker fails, with the
    worker-side traceback in the message.
    """
    if store is None and snapshot_dir is None:
        raise ValueError("match_patterns needs a store or a snapshot_dir")
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if store is None:
        store = TripleStore.load_snapshot(snapshot_dir)
    patterns = list(patterns)
    if workers == 1 or len(patterns) <= 1:
        return match_serial(store, patterns)

    if snapshot_dir is not None and store.snapshot_source != Path(
        snapshot_dir
    ):
        snapshot_dir = None
    if snapshot_dir is None:
        snapshot_dir = store.snapshot_source

    context = resolve_context(mp_context)
    if snapshot_dir is not None:
        return _match_pooled(
            Path(snapshot_dir), patterns, workers, chunk_size, context
        )
    with tempfile.TemporaryDirectory(prefix="repro-match-") as tmp:
        shared = Path(tmp) / "snapshot"
        store.save_snapshot(shared, record_source=False)
        return _match_pooled(shared, patterns, workers, chunk_size, context)


def _match_pooled(
    snapshot_dir: Path,
    patterns: List[TriplePattern],
    workers: int,
    chunk_size: Optional[int],
    context: multiprocessing.context.BaseContext,
) -> List[np.ndarray]:
    """Dispatch to the per-shard or chunked pool by snapshot format."""
    try:
        sharded = snapshot_format(snapshot_dir) == SHARDED_FORMAT
    except SnapshotError:
        sharded = False
    if sharded:
        from repro.rdf.backend import read_sharded_manifest

        manifest = read_sharded_manifest(snapshot_dir)
        return _match_sharded(
            snapshot_dir, patterns, workers, manifest["num_shards"], context
        )
    results: List[Optional[np.ndarray]] = [None] * len(patterns)
    tasks = chunk_queries(patterns, workers, chunk_size)
    workers = min(workers, len(tasks))
    with context.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(str(snapshot_dir),),
    ) as pool:
        for offset, arrays, error in pool.imap_unordered(
            _match_chunk, tasks
        ):
            if error is not None:
                raise ParallelMatchError(
                    f"match worker failed on chunk at offset {offset}:"
                    f"\n{error}"
                )
            results[offset:offset + len(arrays)] = arrays
    return results  # type: ignore[return-value]


def _match_sharded(
    snapshot_dir: Path,
    patterns: List[TriplePattern],
    workers: int,
    num_shards: int,
    context: multiprocessing.context.BaseContext,
) -> List[np.ndarray]:
    """One worker task per shard; merge each pattern back to SPO order."""
    tasks = [
        (str(snapshot_dir), shard_id, patterns)
        for shard_id in range(num_shards)
    ]
    per_pattern: List[List[np.ndarray]] = [[] for _ in patterns]
    with context.Pool(processes=min(workers, num_shards)) as pool:
        for shard_id, arrays, error in pool.imap_unordered(
            _match_shard, tasks
        ):
            if error is not None:
                raise ParallelMatchError(
                    f"match worker failed on shard {shard_id}:\n{error}"
                )
            for idx, rows in enumerate(arrays):
                if rows.size:
                    per_pattern[idx].append(rows)
    merged: List[np.ndarray] = []
    for parts in per_pattern:
        if not parts:
            merged.append(np.empty((0, 3), dtype=np.int64))
        elif len(parts) == 1:
            merged.append(parts[0])
        else:
            rows = np.concatenate(parts)
            order = np.lexsort((rows[:, 2], rows[:, 1], rows[:, 0]))
            merged.append(rows[order])
    return merged
