"""The ``StoreBackend`` adapter seam: pluggable array-native store backends.

:class:`~repro.rdf.store.TripleStore` is a facade; everything it actually
needs from its storage layer is the narrow, array-native contract defined
here as the :class:`StoreBackend` protocol — pattern ``lookup``/``count``,
sorted ndarray accessors for every bound-position shape, bulk ``rebuild``
from a row array, snapshot ``save``/``load``, a ``generation`` stamp, and
``stats``.  The design follows the pluggable-adapter idiom of dbt: one
typed interface, many interchangeable implementations, each unit-testable
against the others without touching the consumers.

Two backends ship:

- :class:`ColumnarBackend` — today's single
  :class:`~repro.rdf.columnar.ColumnarIndex` snapshot, wrapped 1:1.  The
  facade, the vectorized counters, the samplers and the serving stack all
  keep their exact behaviour (and their bytes) on this backend.
- :class:`ShardedBackend` — the same graph cut into N shard directories,
  each an ordinary columnar snapshot, routed by a stable hash of the
  subject (default) or the predicate.  A pattern whose shard key is bound
  is answered by the owning shard alone; otherwise the lookup fans out
  over the shards and the per-shard results are merged back into the
  exact global permutation order, so every accessor is byte-identical to
  the single-index backend (property-tested in
  ``tests/rdf/test_backend.py``).  Because each shard is its own mmap'd
  snapshot, the dataset no longer has to fit one index — and worker pools
  can attach a shard subset (``shard_ids=...``) instead of the whole
  graph.

Sharding invariants the merges rely on:

- every triple lives in exactly one shard, so single-pattern counts are
  **additive** across shards and match sets **partition**;
- all triples of one subject land in one shard under subject routing
  (all triples of one predicate under predicate routing), so every
  ``(s, p)`` pair is wholly owned by one shard in *either* mode — fan-out
  merges of per-subject fan-outs and characteristic sets are exact, not
  approximate.

On-disk layout of a sharded snapshot::

    snapshot/
      manifest.json        # format "repro-sharded", shard list + CRC32s
      dictionary.json      # written by the store layer, when present
      shard-0000/          # a complete repro-columnar snapshot
        manifest.json
        spo_s.npy ... pso_o.npy
      shard-0001/
      ...

The top-level manifest records the shard count, the routing mode, and
per shard the directory, triple count and content CRC32; it is written
*after* the shards so its presence marks a complete snapshot.  Corruption
— a missing shard, a checksum mismatch, a shard swapped in from another
snapshot — raises :class:`~repro.rdf.columnar.SnapshotError` with a
description of exactly what disagreed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.rdf.columnar import (
    MANIFEST_NAME,
    ColumnarIndex,
    SnapshotError,
    coerce_rows,
    expand_ranges,
    in_sorted,
    pack_rows,
    read_manifest,
    run_starts,
)

#: On-disk format identifier of a sharded snapshot's top-level manifest.
SHARDED_FORMAT = "repro-sharded"
SHARDED_VERSION = 1

#: Shard-routing function identifier, recorded in the manifest so a load
#: can refuse a snapshot whose placement it would misroute.
ROUTING = "splitmix64"

#: Subdirectory name of shard *i* inside a sharded snapshot.
SHARD_DIR_FORMAT = "shard-{:04d}"

#: Valid shard_by modes and the row column each one routes on.
SHARD_MODES = {"subject": 0, "predicate": 1}

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_ROWS = np.empty((0, 3), dtype=np.int64)


def _mix64(values: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over an int64/uint64 array.

    Shard placement must survive save/load across platforms and be
    uniform even for structured id spaces (consecutive ids, strided
    ids), so routing uses a fixed integer mix rather than Python's
    ``hash`` (which is salted per process for str and not guaranteed
    stable across versions).
    """
    x = np.ascontiguousarray(values, dtype=np.int64).view(np.uint64).copy()
    x += np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def shard_of(values, num_shards: int) -> np.ndarray:
    """Owning shard id for an array of shard-key values, as int64."""
    values = np.atleast_1d(np.asarray(values, dtype=np.int64))
    return (_mix64(values) % np.uint64(num_shards)).astype(np.int64)


@dataclass(frozen=True)
class BackendStats:
    """Shape and footprint summary of one backend (for ``/stats`` etc.)."""

    backend: str
    num_triples: int
    num_shards: int
    attached_shards: int
    shard_by: Optional[str]
    memory_bytes: int
    generation: int


def _index_isin(index: ColumnarIndex, rows: np.ndarray) -> np.ndarray:
    """Boolean membership of ``(N, 3)`` *rows* in *index*.

    Fast path: when ids are non-negative and the combined value ranges
    fit, rows pack into one monotone int64 key, so the index's sorted
    SPO columns pack into an already-sorted haystack and membership is
    one ``searchsorted`` — no index rebuild.  Arbitrary ids fall back to
    bytewise void records.
    """
    if index.size == 0 or rows.shape[0] == 0:
        return np.zeros(rows.shape[0], dtype=bool)
    lo = [
        min(int(rows[:, 0].min()), int(index.spo_s[0])),
        min(int(rows[:, 1].min()), int(index.pso_p[0])),
        min(int(rows[:, 2].min()), int(index.osp_o[0])),
    ]
    hi = [
        max(int(rows[:, 0].max()), int(index.spo_s[-1])),
        max(int(rows[:, 1].max()), int(index.pso_p[-1])),
        max(int(rows[:, 2].max()), int(index.osp_o[-1])),
    ]
    radix_p = hi[1] + 1
    radix_o = hi[2] + 1
    if min(lo) >= 0 and (hi[0] + 1) * radix_p * radix_o < 2**63:
        def pack(s, p, o):
            return (np.asarray(s) * radix_p + np.asarray(p)) * radix_o + (
                np.asarray(o)
            )

        haystack = pack(index.spo_s, index.spo_p, index.spo_o)
        return in_sorted(haystack, pack(rows[:, 0], rows[:, 1], rows[:, 2]))
    return np.isin(pack_rows(rows), pack_rows(index.rows()))


def _merge_value_counts(
    pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ``(sorted values, counts)`` into global ones.

    Values may repeat across shards (e.g. the same object reached from
    subjects in different shards); counts of equal values are summed and
    the result comes back sorted — exactly what one ``np.unique`` over
    the concatenated raw column would produce.
    """
    parts = [(v, c) for v, c in pairs if v.size]
    if not parts:
        return _EMPTY_I64, _EMPTY_I64
    if len(parts) == 1:
        return parts[0]
    values = np.concatenate([v for v, _ in parts])
    counts = np.concatenate([c for _, c in parts])
    order = np.argsort(values, kind="stable")
    values, counts = values[order], counts[order]
    starts = run_starts(values)
    return values[starts[:-1]], np.add.reduceat(counts, starts[:-1])


def _concat_sorted(parts: List[np.ndarray]) -> np.ndarray:
    """Concatenate disjoint sorted arrays into one globally sorted array."""
    parts = [part for part in parts if part.size]
    if not parts:
        return _EMPTY_I64
    if len(parts) == 1:
        return parts[0]
    merged = np.concatenate(parts)
    merged.sort()
    return merged


class _PatternOps:
    """Pattern-level ``lookup``/``count`` shared by every backend.

    Both are expressed purely through the accessor contract, so any
    backend that implements the accessors answers patterns in the exact
    same order as the single-index backend — the matcher facade on top
    never sees which implementation is underneath.
    """

    def lookup(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> np.ndarray:
        """Matching triples of one bound-position pattern, ``(N, 3)``.

        Row order mirrors the permutation each shape is answered from
        (identical across backends): SPO for bound-s shapes, PSO for
        bound-p, OSP for bound-o, SPO for the full scan.
        """
        if s is not None and p is not None and o is not None:
            if self.contains(s, p, o):
                return np.array([[s, p, o]], dtype=np.int64)
            return _EMPTY_ROWS
        if s is not None and p is not None:
            objs = self.objects_of(s, p)
            return _fill_rows(s, p, objs, objs.size, "o")
        if p is not None and o is not None:
            subs = self.subjects_of(p, o)
            return _fill_rows(subs, p, o, subs.size, "s")
        if s is not None and o is not None:
            preds = self.predicates_between(s, o)
            return _fill_rows(s, preds, o, preds.size, "p")
        if s is not None:
            preds, objs = self.out_slice(s)
            return _fill_rows(s, preds, objs, preds.size, "po")
        if p is not None:
            subs, objs = self.pred_slice(p)
            return _fill_rows(subs, p, objs, subs.size, "so")
        if o is not None:
            subs, preds = self.in_slice(o)
            return _fill_rows(subs, preds, o, subs.size, "sp")
        return self.rows()

    def count(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> int:
        """Exact match count of one bound-position pattern."""
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        if s is not None and p is not None:
            return self.count_sp(s, p)
        if p is not None and o is not None:
            return self.count_po(p, o)
        if s is not None and o is not None:
            return self.count_so(s, o)
        if s is not None:
            return self.out_degree(s)
        if p is not None:
            return self.predicate_count(p)
        if o is not None:
            return self.in_degree(o)
        return self.size

    def subject_predicate_groups(self):
        """Yield (predicates, fanouts) lists per distinct subject.

        Groups :meth:`distinct_sp_pairs` by subject (SPO order), giving
        each subject's characteristic set and per-predicate fan-outs in
        one pass.
        """
        pair_s, pair_p, fanouts = self.distinct_sp_pairs()
        if pair_s.size == 0:
            return
        starts = run_starts(pair_s).tolist()
        preds = pair_p.tolist()
        fans = fanouts.tolist()
        for lo, hi in zip(starts, starts[1:]):
            yield preds[lo:hi], fans[lo:hi]


def _fill_rows(s, p, o, n: int, varying: str) -> np.ndarray:
    """Assemble ``(n, 3)`` rows from per-position scalars/arrays."""
    if n == 0:
        return _EMPTY_ROWS
    out = np.empty((n, 3), dtype=np.int64)
    for column, value, name in ((0, s, "s"), (1, p, "p"), (2, o, "o")):
        if name in varying:
            out[:, column] = value
        else:
            out[:, column] = int(value)
    return out


@runtime_checkable
class StoreBackend(Protocol):
    """The array-native storage contract behind :class:`TripleStore`.

    An implementation owns one immutable snapshot of a triple set and
    answers every access path with sorted ndarrays; the store facade
    layers mutation staging, caching and Python-native views on top.
    Implementations must be interchangeable: for the same triple set,
    every method returns byte-identical arrays (the hypothesis suite in
    ``tests/rdf/test_backend.py`` enforces this across backends).

    ``generation`` is a plain int attribute the owning store stamps when
    it commits the backend; freshly built backends start at 0.
    """

    size: int
    generation: int

    # Pattern-level API (provided by _PatternOps for the shipped backends)
    def lookup(self, s=None, p=None, o=None) -> np.ndarray: ...
    def count(self, s=None, p=None, o=None) -> int: ...

    # Bulk ingest / persistence
    def rebuild(self, rows: np.ndarray) -> "StoreBackend": ...
    def rows(self) -> np.ndarray: ...
    def isin_rows(self, rows: np.ndarray) -> np.ndarray: ...
    def save(self, directory, extra_manifest=None) -> Path: ...

    # Point and slice accessors (sorted ndarrays)
    def contains(self, s: int, p: int, o: int) -> bool: ...
    def objects_of(self, s: int, p: int) -> np.ndarray: ...
    def subjects_of(self, p: int, o: int) -> np.ndarray: ...
    def predicates_between(self, s: int, o: int) -> np.ndarray: ...
    def out_predicates(self, s: int) -> np.ndarray: ...
    def out_slice(self, s: int) -> Tuple[np.ndarray, np.ndarray]: ...
    def in_slice(self, o: int) -> Tuple[np.ndarray, np.ndarray]: ...
    def pred_slice(self, p: int) -> Tuple[np.ndarray, np.ndarray]: ...
    def pred_slice_by_object(
        self, p: int
    ) -> Tuple[np.ndarray, np.ndarray]: ...

    # Counts
    def out_degree(self, s: int) -> int: ...
    def in_degree(self, o: int) -> int: ...
    def predicate_count(self, p: int) -> int: ...
    def count_sp(self, s: int, p: int) -> int: ...
    def count_po(self, p: int, o: int) -> int: ...
    def count_so(self, s: int, o: int) -> int: ...

    # Domains and statistics
    def subjects(self) -> np.ndarray: ...
    def objects(self) -> np.ndarray: ...
    def predicates(self) -> np.ndarray: ...
    def nodes(self) -> np.ndarray: ...
    def subject_degrees(self) -> Tuple[np.ndarray, np.ndarray]: ...
    def object_degrees(self) -> Tuple[np.ndarray, np.ndarray]: ...
    def predicate_triple_counts(
        self,
    ) -> Tuple[np.ndarray, np.ndarray]: ...
    def predicate_subject_stats(
        self, p: int
    ) -> Tuple[np.ndarray, np.ndarray]: ...
    def predicate_object_stats(
        self, p: int
    ) -> Tuple[np.ndarray, np.ndarray]: ...
    def distinct_sp_pairs(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]: ...
    def subject_predicate_groups(self): ...

    # Vectorized frontier primitives
    def sp_counts(self, subjects: np.ndarray, p: int) -> np.ndarray: ...
    def sp_have_object(
        self, subjects: np.ndarray, p: int, o: int
    ) -> np.ndarray: ...
    def sp_objects(
        self, subjects: np.ndarray, p: int
    ) -> Tuple[np.ndarray, np.ndarray]: ...

    # Introspection
    def memory_bytes(self) -> int: ...
    def stats(self) -> BackendStats: ...


class ColumnarBackend(_PatternOps):
    """The single-snapshot backend: one :class:`ColumnarIndex`, wrapped.

    Pure composition — the wrapped index is exposed as :attr:`index` so
    existing array consumers (samplers reading raw permutation columns,
    memmap identity tests) keep working unchanged through
    ``TripleStore.columnar``.
    """

    __slots__ = ("index", "generation")

    def __init__(self, index: ColumnarIndex) -> None:
        self.index = index
        self.generation = 0

    @classmethod
    def empty(cls) -> "ColumnarBackend":
        return cls(ColumnarIndex.from_array(_EMPTY_ROWS))

    @classmethod
    def from_rows(cls, rows: np.ndarray) -> "ColumnarBackend":
        return cls(ColumnarIndex.from_array(rows))

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        mmap_mode: Optional[str] = "r",
        verify: bool = True,
    ) -> "ColumnarBackend":
        return cls(
            ColumnarIndex.load(directory, mmap_mode=mmap_mode, verify=verify)
        )

    # -- ingest / persistence ------------------------------------------

    @property
    def size(self) -> int:
        return self.index.size

    def rebuild(self, rows: np.ndarray) -> "ColumnarBackend":
        return ColumnarBackend(ColumnarIndex.from_array(rows))

    def rows(self) -> np.ndarray:
        return self.index.rows()

    def isin_rows(self, rows: np.ndarray) -> np.ndarray:
        return _index_isin(self.index, coerce_rows(rows))

    def save(
        self,
        directory: Union[str, Path],
        extra_manifest: Optional[Dict] = None,
    ) -> Path:
        return self.index.save(directory, extra_manifest=extra_manifest)

    # -- delegated accessors -------------------------------------------

    def contains(self, s: int, p: int, o: int) -> bool:
        return self.index.contains(s, p, o)

    def objects_of(self, s: int, p: int) -> np.ndarray:
        return self.index.objects_of(s, p)

    def subjects_of(self, p: int, o: int) -> np.ndarray:
        return self.index.subjects_of(p, o)

    def predicates_between(self, s: int, o: int) -> np.ndarray:
        return self.index.predicates_between(s, o)

    def out_predicates(self, s: int) -> np.ndarray:
        return self.index.out_predicates(s)

    def out_slice(self, s: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.index.out_slice(s)

    def in_slice(self, o: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.index.in_slice(o)

    def pred_slice(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.index.pred_slice(p)

    def pred_slice_by_object(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.index.pred_slice_by_object(p)

    def out_degree(self, s: int) -> int:
        return self.index.out_degree(s)

    def in_degree(self, o: int) -> int:
        return self.index.in_degree(o)

    def predicate_count(self, p: int) -> int:
        return self.index.predicate_count(p)

    def count_sp(self, s: int, p: int) -> int:
        return self.index.count_sp(s, p)

    def count_po(self, p: int, o: int) -> int:
        return self.index.count_po(p, o)

    def count_so(self, s: int, o: int) -> int:
        return self.index.count_so(s, o)

    def subjects(self) -> np.ndarray:
        return self.index.subjects()

    def objects(self) -> np.ndarray:
        return self.index.objects()

    def predicates(self) -> np.ndarray:
        return self.index.predicates()

    def nodes(self) -> np.ndarray:
        return self.index.nodes()

    def subject_degrees(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.index.subject_degrees()

    def object_degrees(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.index.object_degrees()

    def predicate_triple_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.index.predicate_triple_counts()

    def predicate_subject_stats(
        self, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.index.predicate_subject_stats(p)

    def predicate_object_stats(
        self, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.index.predicate_object_stats(p)

    def distinct_sp_pairs(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.index.distinct_sp_pairs()

    def sp_counts(self, subjects: np.ndarray, p: int) -> np.ndarray:
        return self.index.sp_counts(subjects, p)

    def sp_have_object(
        self, subjects: np.ndarray, p: int, o: int
    ) -> np.ndarray:
        return self.index.sp_have_object(subjects, p, o)

    def sp_objects(
        self, subjects: np.ndarray, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.index.sp_objects(subjects, p)

    def memory_bytes(self) -> int:
        return self.index.memory_bytes()

    def stats(self) -> BackendStats:
        return BackendStats(
            backend="columnar",
            num_triples=self.size,
            num_shards=1,
            attached_shards=1,
            shard_by=None,
            memory_bytes=self.memory_bytes(),
            generation=self.generation,
        )


class ShardedBackend(_PatternOps):
    """N columnar shards behind the same contract as one index.

    Construction routes each row to ``shard_of(shard key) % num_shards``;
    lookups whose shard key is bound go straight to the owning shard,
    everything else fans out and merges (see the module docstring for the
    invariants that make the merges exact).  A backend may be *partially
    attached* (``shard_ids`` a subset): it then behaves as a store
    holding exactly its shards' triples — the per-shard worker mode of
    the labeling/match pools.  Partial views refuse to :meth:`save`.
    """

    __slots__ = (
        "num_shards",
        "shard_by",
        "generation",
        "size",
        "_shards",
        "_shard_ids",
        "_by_id",
        "_by_subject",
        "_subjects",
        "_subject_degrees",
        "_objects",
        "_object_degrees",
        "_predicates",
        "_predicate_triples",
        "_nodes",
    )

    def __init__(
        self,
        shards: Sequence[ColumnarIndex],
        num_shards: int,
        shard_by: str = "subject",
        shard_ids: Optional[Sequence[int]] = None,
    ) -> None:
        if shard_by not in SHARD_MODES:
            raise ValueError(
                f"shard_by must be one of {sorted(SHARD_MODES)}, "
                f"got {shard_by!r}"
            )
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        shards = tuple(shards)
        if shard_ids is None:
            shard_ids = tuple(range(len(shards)))
        else:
            shard_ids = tuple(int(i) for i in shard_ids)
        if len(shard_ids) != len(shards):
            raise ValueError("shard_ids must parallel shards")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard_ids: {shard_ids}")
        for sid in shard_ids:
            if not 0 <= sid < num_shards:
                raise ValueError(
                    f"shard id {sid} out of range for {num_shards} shards"
                )
        self.num_shards = int(num_shards)
        self.shard_by = shard_by
        self.generation = 0
        self._shards = shards
        self._shard_ids = shard_ids
        self._by_id = dict(zip(shard_ids, shards))
        self._by_subject = shard_by == "subject"
        self.size = int(sum(shard.size for shard in shards))
        self._subjects = None
        self._subject_degrees = None
        self._objects = None
        self._object_degrees = None
        self._predicates = None
        self._predicate_triples = None
        self._nodes = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: np.ndarray,
        num_shards: int,
        shard_by: str = "subject",
    ) -> "ShardedBackend":
        """Shard an ``(N, 3)`` row array into *num_shards* indexes."""
        rows = coerce_rows(rows)
        column = SHARD_MODES.get(shard_by)
        if column is None:
            raise ValueError(
                f"shard_by must be one of {sorted(SHARD_MODES)}, "
                f"got {shard_by!r}"
            )
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        assignments = shard_of(rows[:, column], num_shards)
        shards = [
            ColumnarIndex.from_array(rows[assignments == sid])
            for sid in range(num_shards)
        ]
        return cls(shards, num_shards, shard_by)

    @property
    def shards(self) -> Tuple[ColumnarIndex, ...]:
        """The attached shard indexes, parallel to :attr:`shard_ids`."""
        return self._shards

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return self._shard_ids

    @property
    def fully_attached(self) -> bool:
        return len(self._shards) == self.num_shards

    # -- routing helpers -----------------------------------------------

    def _owner(self, key: int) -> Optional[ColumnarIndex]:
        """The attached shard owning one shard-key value, if any."""
        sid = int(shard_of(np.array([key], dtype=np.int64), self.num_shards)[0])
        return self._by_id.get(sid)

    def _scatter(self, keys: np.ndarray):
        """Yield ``(shard, positions)`` groups for an array of key values."""
        assignments = shard_of(keys, self.num_shards)
        for sid, shard in self._by_id.items():
            mask = assignments == sid
            if mask.any():
                yield shard, mask

    # -- ingest / persistence ------------------------------------------

    def rebuild(self, rows: np.ndarray) -> "ShardedBackend":
        """A fresh fully-attached backend over *rows*, same shard layout."""
        return ShardedBackend.from_rows(rows, self.num_shards, self.shard_by)

    def rows(self) -> np.ndarray:
        """All triples as one ``(N, 3)`` array in global SPO order."""
        parts = [shard.rows() for shard in self._shards if shard.size]
        if not parts:
            return _EMPTY_ROWS
        if len(parts) == 1:
            return parts[0]
        merged = np.concatenate(parts)
        order = np.lexsort((merged[:, 2], merged[:, 1], merged[:, 0]))
        return merged[order]

    def isin_rows(self, rows: np.ndarray) -> np.ndarray:
        rows = coerce_rows(rows)
        out = np.zeros(rows.shape[0], dtype=bool)
        if rows.shape[0] == 0 or self.size == 0:
            return out
        column = SHARD_MODES[self.shard_by]
        for shard, mask in self._scatter(rows[:, column]):
            out[mask] = _index_isin(shard, rows[mask])
        return out

    def save(
        self,
        directory: Union[str, Path],
        extra_manifest: Optional[Dict] = None,
    ) -> Path:
        """Write every shard as a columnar snapshot plus the top manifest.

        The top-level manifest is written last, so its presence marks a
        complete sharded snapshot; each entry cross-records the shard's
        triple count and content CRC32 so a shard swapped in from a
        different snapshot fails loudly at load time.
        """
        if not self.fully_attached:
            raise SnapshotError(
                f"cannot save a partially attached sharded backend "
                f"(holds shards {list(self._shard_ids)} of "
                f"{self.num_shards})"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        entries = []
        for sid, shard in zip(self._shard_ids, self._shards):
            shard_dir = SHARD_DIR_FORMAT.format(sid)
            shard.save(directory / shard_dir)
            entries.append(
                {
                    "directory": shard_dir,
                    "num_triples": shard.size,
                    "checksum": shard.content_checksum(),
                }
            )
        manifest = {
            "format": SHARDED_FORMAT,
            "version": SHARDED_VERSION,
            "num_triples": self.size,
            "num_shards": self.num_shards,
            "shard_by": self.shard_by,
            "routing": ROUTING,
            "shards": entries,
        }
        if extra_manifest:
            manifest.update(extra_manifest)
        manifest_path = directory / MANIFEST_NAME
        manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return manifest_path

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        mmap_mode: Optional[str] = "r",
        verify: bool = True,
        shard_ids: Optional[Sequence[int]] = None,
    ) -> "ShardedBackend":
        """Attach a sharded snapshot, whole or a shard subset.

        Each selected shard loads through :meth:`ColumnarIndex.load`
        (memmapped, per-shard manifest validated, checksummed under
        ``verify=True``) and is then cross-checked against the top-level
        manifest entry — a shard directory swapped in from another
        snapshot has a valid manifest of its own but the wrong checksum
        here.  Raises :class:`SnapshotError` on any disagreement.
        """
        directory = Path(directory)
        manifest = read_sharded_manifest(directory)
        entries = manifest["shards"]
        num_shards = manifest["num_shards"]
        if shard_ids is None:
            selected = list(range(num_shards))
        else:
            selected = [int(i) for i in shard_ids]
            for sid in selected:
                if not 0 <= sid < num_shards:
                    raise SnapshotError(
                        f"snapshot at {directory} has {num_shards} shards; "
                        f"shard id {sid} does not exist"
                    )
        shards = []
        total = 0
        for sid in selected:
            entry = entries[sid]
            shard_dir = directory / entry["directory"]
            shard = ColumnarIndex.load(
                shard_dir, mmap_mode=mmap_mode, verify=verify
            )
            if shard.size != entry["num_triples"]:
                raise SnapshotError(
                    f"shard {shard_dir} holds {shard.size} triples; the "
                    f"sharded manifest says {entry['num_triples']}"
                )
            shard_manifest = read_manifest(shard_dir)
            if shard_manifest.get("checksum") != entry["checksum"]:
                raise SnapshotError(
                    f"shard {shard_dir} does not belong to this snapshot: "
                    f"its checksum {shard_manifest.get('checksum')!r} "
                    f"disagrees with the sharded manifest entry "
                    f"{entry['checksum']!r}"
                )
            total += shard.size
            shards.append(shard)
        if shard_ids is None and total != manifest["num_triples"]:
            raise SnapshotError(
                f"sharded snapshot at {directory} sums to {total} triples "
                f"across shards; manifest says {manifest['num_triples']}"
            )
        return cls(
            shards,
            num_shards,
            manifest["shard_by"],
            shard_ids=selected,
        )

    # -- point and slice accessors -------------------------------------

    def contains(self, s: int, p: int, o: int) -> bool:
        shard = self._owner(s if self._by_subject else p)
        return shard.contains(s, p, o) if shard is not None else False

    def objects_of(self, s: int, p: int) -> np.ndarray:
        shard = self._owner(s if self._by_subject else p)
        return shard.objects_of(s, p) if shard is not None else _EMPTY_I64

    def subjects_of(self, p: int, o: int) -> np.ndarray:
        if not self._by_subject:
            shard = self._owner(p)
            return (
                shard.subjects_of(p, o) if shard is not None else _EMPTY_I64
            )
        return _concat_sorted(
            [shard.subjects_of(p, o) for shard in self._shards]
        )

    def predicates_between(self, s: int, o: int) -> np.ndarray:
        if self._by_subject:
            shard = self._owner(s)
            return (
                shard.predicates_between(s, o)
                if shard is not None
                else _EMPTY_I64
            )
        return _concat_sorted(
            [shard.predicates_between(s, o) for shard in self._shards]
        )

    def out_predicates(self, s: int) -> np.ndarray:
        if self._by_subject:
            shard = self._owner(s)
            return (
                shard.out_predicates(s) if shard is not None else _EMPTY_I64
            )
        return _concat_sorted(
            [shard.out_predicates(s) for shard in self._shards]
        )

    def out_slice(self, s: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._by_subject:
            shard = self._owner(s)
            if shard is None:
                return _EMPTY_I64, _EMPTY_I64
            return shard.out_slice(s)
        parts = [shard.out_slice(s) for shard in self._shards]
        return _merge_pair(parts)

    def in_slice(self, o: int) -> Tuple[np.ndarray, np.ndarray]:
        parts = [shard.in_slice(o) for shard in self._shards]
        return _merge_pair(parts)

    def pred_slice(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        if not self._by_subject:
            shard = self._owner(p)
            if shard is None:
                return _EMPTY_I64, _EMPTY_I64
            return shard.pred_slice(p)
        parts = [shard.pred_slice(p) for shard in self._shards]
        return _merge_pair(parts)

    def pred_slice_by_object(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        if not self._by_subject:
            shard = self._owner(p)
            if shard is None:
                return _EMPTY_I64, _EMPTY_I64
            return shard.pred_slice_by_object(p)
        parts = [shard.pred_slice_by_object(p) for shard in self._shards]
        return _merge_pair(parts)

    # -- counts --------------------------------------------------------

    def out_degree(self, s: int) -> int:
        if self._by_subject:
            shard = self._owner(s)
            return shard.out_degree(s) if shard is not None else 0
        return sum(shard.out_degree(s) for shard in self._shards)

    def in_degree(self, o: int) -> int:
        return sum(shard.in_degree(o) for shard in self._shards)

    def predicate_count(self, p: int) -> int:
        if not self._by_subject:
            shard = self._owner(p)
            return shard.predicate_count(p) if shard is not None else 0
        return sum(shard.predicate_count(p) for shard in self._shards)

    def count_sp(self, s: int, p: int) -> int:
        shard = self._owner(s if self._by_subject else p)
        return shard.count_sp(s, p) if shard is not None else 0

    def count_po(self, p: int, o: int) -> int:
        if not self._by_subject:
            shard = self._owner(p)
            return shard.count_po(p, o) if shard is not None else 0
        return sum(shard.count_po(p, o) for shard in self._shards)

    def count_so(self, s: int, o: int) -> int:
        if self._by_subject:
            shard = self._owner(s)
            return shard.count_so(s, o) if shard is not None else 0
        return sum(shard.count_so(s, o) for shard in self._shards)

    # -- domains and statistics ----------------------------------------

    def subjects(self) -> np.ndarray:
        return self.subject_degrees()[0]

    def subject_degrees(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._subjects is None:
            self._subjects, self._subject_degrees = _merge_value_counts(
                [shard.subject_degrees() for shard in self._shards]
            )
        return self._subjects, self._subject_degrees

    def objects(self) -> np.ndarray:
        return self.object_degrees()[0]

    def object_degrees(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._objects is None:
            self._objects, self._object_degrees = _merge_value_counts(
                [shard.object_degrees() for shard in self._shards]
            )
        return self._objects, self._object_degrees

    def predicates(self) -> np.ndarray:
        return self.predicate_triple_counts()[0]

    def predicate_triple_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._predicates is None:
            self._predicates, self._predicate_triples = _merge_value_counts(
                [shard.predicate_triple_counts() for shard in self._shards]
            )
        return self._predicates, self._predicate_triples

    def nodes(self) -> np.ndarray:
        if self._nodes is None:
            self._nodes = np.union1d(self.subjects(), self.objects())
        return self._nodes

    def predicate_subject_stats(
        self, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        if not self._by_subject:
            shard = self._owner(p)
            if shard is None:
                return _EMPTY_I64, _EMPTY_I64
            return shard.predicate_subject_stats(p)
        return _merge_value_counts(
            [shard.predicate_subject_stats(p) for shard in self._shards]
        )

    def predicate_object_stats(
        self, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        if not self._by_subject:
            shard = self._owner(p)
            if shard is None:
                return _EMPTY_I64, _EMPTY_I64
            return shard.predicate_object_stats(p)
        return _merge_value_counts(
            [shard.predicate_object_stats(p) for shard in self._shards]
        )

    def distinct_sp_pairs(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Every (s, p) pair is wholly owned by one shard in either
        # routing mode, so the per-shard pair lists are disjoint and a
        # lexsort reconstructs the exact global SPO pair order.
        parts = [
            shard.distinct_sp_pairs()
            for shard in self._shards
            if shard.size
        ]
        if not parts:
            return _EMPTY_I64, _EMPTY_I64, _EMPTY_I64
        if len(parts) == 1:
            return parts[0]
        pair_s = np.concatenate([part[0] for part in parts])
        pair_p = np.concatenate([part[1] for part in parts])
        fanouts = np.concatenate([part[2] for part in parts])
        order = np.lexsort((pair_p, pair_s))
        return pair_s[order], pair_p[order], fanouts[order]

    # -- vectorized frontier primitives --------------------------------

    def sp_counts(self, subjects: np.ndarray, p: int) -> np.ndarray:
        subjects = np.ascontiguousarray(subjects, dtype=np.int64)
        if not self._by_subject:
            shard = self._owner(p)
            if shard is None:
                return np.zeros(subjects.size, dtype=np.int64)
            return shard.sp_counts(subjects, p)
        out = np.zeros(subjects.size, dtype=np.int64)
        for shard, mask in self._scatter(subjects):
            out[mask] = shard.sp_counts(subjects[mask], p)
        return out

    def sp_have_object(
        self, subjects: np.ndarray, p: int, o: int
    ) -> np.ndarray:
        subjects = np.ascontiguousarray(subjects, dtype=np.int64)
        if not self._by_subject:
            shard = self._owner(p)
            if shard is None:
                return np.zeros(subjects.size, dtype=bool)
            return shard.sp_have_object(subjects, p, o)
        out = np.zeros(subjects.size, dtype=bool)
        for shard, mask in self._scatter(subjects):
            out[mask] = shard.sp_have_object(subjects[mask], p, o)
        return out

    def sp_objects(
        self, subjects: np.ndarray, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        subjects = np.ascontiguousarray(subjects, dtype=np.int64)
        if not self._by_subject:
            shard = self._owner(p)
            if shard is None:
                return _EMPTY_I64, np.zeros(subjects.size, dtype=np.int64)
            return shard.sp_objects(subjects, p)
        # Scatter subjects to their shards, gather per-shard object runs,
        # then place each run back at its subject's offset so the
        # concatenation order matches the input subject order exactly.
        lengths = np.zeros(subjects.size, dtype=np.int64)
        gathered = []
        for shard, mask in self._scatter(subjects):
            objs, lens = shard.sp_objects(subjects[mask], p)
            lengths[mask] = lens
            gathered.append((mask, objs))
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        out = np.empty(int(offsets[-1]), dtype=np.int64)
        for mask, objs in gathered:
            positions = np.flatnonzero(mask)
            out[
                expand_ranges(offsets[positions], lengths[positions])
            ] = objs
        return out, lengths

    # -- introspection -------------------------------------------------

    def memory_bytes(self) -> int:
        return sum(shard.memory_bytes() for shard in self._shards)

    def stats(self) -> BackendStats:
        return BackendStats(
            backend="sharded",
            num_triples=self.size,
            num_shards=self.num_shards,
            attached_shards=len(self._shards),
            shard_by=self.shard_by,
            memory_bytes=self.memory_bytes(),
            generation=self.generation,
        )


def _merge_pair(
    parts: List[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-shard two-column slices into global permutation order.

    Each part is a (primary-sorted, secondary) column pair from one
    shard; the merged result is lexsorted by (first column, second
    column) — exactly the order the single-index slice has, because
    within one permutation slice the remaining two columns are
    lexicographically sorted.
    """
    parts = [part for part in parts if part[0].size]
    if not parts:
        return _EMPTY_I64, _EMPTY_I64
    if len(parts) == 1:
        return parts[0]
    first = np.concatenate([part[0] for part in parts])
    second = np.concatenate([part[1] for part in parts])
    order = np.lexsort((second, first))
    return first[order], second[order]


def read_sharded_manifest(directory: Union[str, Path]) -> Dict:
    """Parse and validate a sharded snapshot's top-level manifest.

    Raises :class:`SnapshotError` with the specific disagreement on a
    missing, unparsable, foreign-format, wrong-version, wrong-routing, or
    structurally invalid manifest — typed errors the callers (and the
    corrupt-manifest tests) can rely on.
    """
    path = Path(directory) / MANIFEST_NAME
    if not path.is_file():
        raise SnapshotError(f"no snapshot manifest at {path}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"unreadable snapshot manifest {path}: {exc}")
    if not isinstance(manifest, dict):
        raise SnapshotError(f"snapshot manifest {path} is not a JSON object")
    if manifest.get("format") != SHARDED_FORMAT:
        raise SnapshotError(
            f"{path} is not a {SHARDED_FORMAT} snapshot "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") != SHARDED_VERSION:
        raise SnapshotError(
            f"sharded snapshot version {manifest.get('version')!r} "
            f"unsupported (expected {SHARDED_VERSION})"
        )
    if manifest.get("routing") != ROUTING:
        raise SnapshotError(
            f"sharded snapshot at {path} routes by "
            f"{manifest.get('routing')!r}; this build routes by "
            f"{ROUTING!r} and would misplace every lookup"
        )
    if manifest.get("shard_by") not in SHARD_MODES:
        raise SnapshotError(
            f"sharded snapshot at {path} has invalid shard_by "
            f"{manifest.get('shard_by')!r}"
        )
    num_shards = manifest.get("num_shards")
    if not isinstance(num_shards, int) or num_shards < 1:
        raise SnapshotError(
            f"sharded snapshot at {path} has invalid num_shards "
            f"{num_shards!r}"
        )
    num_triples = manifest.get("num_triples")
    if not isinstance(num_triples, int) or num_triples < 0:
        raise SnapshotError(
            f"sharded snapshot at {path} has invalid num_triples "
            f"{num_triples!r}"
        )
    entries = manifest.get("shards")
    if not isinstance(entries, list) or len(entries) != num_shards:
        raise SnapshotError(
            f"sharded snapshot at {path} lists "
            f"{len(entries) if isinstance(entries, list) else 'no'} "
            f"shard entries for num_shards={num_shards}"
        )
    for i, entry in enumerate(entries):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("directory"), str)
            or not isinstance(entry.get("num_triples"), int)
            or entry["num_triples"] < 0
            or not isinstance(entry.get("checksum"), str)
        ):
            raise SnapshotError(
                f"sharded snapshot at {path} has an invalid entry for "
                f"shard {i}: {entry!r}"
            )
    return manifest


def snapshot_format(directory: Union[str, Path]) -> str:
    """The ``format`` marker of the snapshot at *directory*.

    ``"repro-columnar"`` for a single-index snapshot,
    ``"repro-sharded"`` for a sharded one.  Raises
    :class:`SnapshotError` when no readable manifest exists.
    """
    path = Path(directory) / MANIFEST_NAME
    if not path.is_file():
        raise SnapshotError(f"no snapshot manifest at {path}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"unreadable snapshot manifest {path}: {exc}")
    if not isinstance(manifest, dict):
        raise SnapshotError(f"snapshot manifest {path} is not a JSON object")
    return str(manifest.get("format"))


def load_backend(
    directory: Union[str, Path],
    mmap_mode: Optional[str] = "r",
    verify: bool = True,
    shard_ids: Optional[Sequence[int]] = None,
) -> Tuple[Union[ColumnarBackend, ShardedBackend], Dict]:
    """Attach the snapshot at *directory*, whichever format it is.

    Dispatches on the manifest's ``format`` marker, so callers
    (``TripleStore.load_snapshot``, the worker pools) stay agnostic of
    how the snapshot was saved.  Returns ``(backend, manifest)``; the
    manifest is the top-level one, which carries the store layer's
    dictionary metadata in both formats.
    """
    if snapshot_format(directory) == SHARDED_FORMAT:
        backend = ShardedBackend.load(
            directory,
            mmap_mode=mmap_mode,
            verify=verify,
            shard_ids=shard_ids,
        )
        return backend, read_sharded_manifest(directory)
    # Anything else goes down the columnar path, whose manifest reader
    # raises the typed foreign-format/version errors callers rely on.
    if shard_ids is not None:
        raise SnapshotError(
            f"snapshot at {directory} is not sharded; "
            f"shard_ids={list(shard_ids)} cannot be attached"
        )
    backend = ColumnarBackend.load(
        directory, mmap_mode=mmap_mode, verify=verify
    )
    return backend, read_manifest(directory)
