"""Exact BGP evaluation: the ground-truth cardinality oracle.

Every experiment in the paper compares an estimator against the *true*
cardinality ``card(qp)`` — the number of variable bindings under which all
triple patterns of the query match the graph.  This module computes that
number exactly with a backtracking join whose next pattern is always the
one with the fewest candidate triples under the current bindings (a greedy
selectivity-first join order, the standard approach in RDF engines).

Single-pattern probes go through the store facade
(:meth:`TripleStore.match_pattern` / :meth:`TripleStore.count_pattern`),
which routes each bound-position shape to the best permutation slice of
the committed :class:`~repro.rdf.backend.StoreBackend` — so the join is
backend-agnostic: it produces identical bindings over a single columnar
index and over a sharded store.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import Triple, TriplePattern, Variable

Bindings = Dict[Variable, int]


def _match_single(
    store: TripleStore, tp: TriplePattern
) -> Iterator[Triple]:
    """Triples matching one pattern (repeated variables honoured)."""
    return store.match_pattern(tp)


def _count_single(store: TripleStore, tp: TriplePattern) -> int:
    """Exact single-pattern count, as a pure range width when possible."""
    return store.count_pattern(tp)


def _extend(
    bindings: Bindings, tp: TriplePattern, triple
) -> Optional[Bindings]:
    """Extend *bindings* so *tp* maps onto *triple*; None on conflict."""
    new = bindings
    copied = False
    for position, value in zip(tp, triple):
        if isinstance(position, Variable):
            bound = new.get(position)
            if bound is None:
                if not copied:
                    new = dict(new)
                    copied = True
                new[position] = value
            elif bound != value:
                return None
        elif position != value:
            return None
    return new


def _pick_next(
    store: TripleStore, remaining: List[TriplePattern], bindings: Bindings
) -> int:
    """Index of the remaining pattern with the fewest candidates."""
    best_idx = 0
    best_count = None
    for idx, tp in enumerate(remaining):
        bound_tp = tp.bind(bindings)
        count = _count_single(store, bound_tp)
        if best_count is None or count < best_count:
            best_idx, best_count = idx, count
            if best_count == 0:
                break
    return best_idx


def iter_bindings(
    store: TripleStore, query: QueryPattern
) -> Iterator[Bindings]:
    """Yield every solution mapping of *query* over *store*.

    Solutions follow SPARQL BGP semantics without DISTINCT: one result per
    total variable binding satisfying all triple patterns.
    """
    yield from _search(store, list(query.triples), {})


def _search(
    store: TripleStore, remaining: List[TriplePattern], bindings: Bindings
) -> Iterator[Bindings]:
    if not remaining:
        yield bindings
        return
    idx = _pick_next(store, remaining, bindings)
    tp = remaining[idx]
    rest = remaining[:idx] + remaining[idx + 1:]
    bound_tp = tp.bind(bindings)
    for triple in _match_single(store, bound_tp):
        extended = _extend(bindings, bound_tp, triple)
        if extended is not None:
            yield from _search(store, rest, extended)


def count_bgp(store: TripleStore, query: QueryPattern) -> int:
    """Exact cardinality ``card(qp)`` of *query* over *store*."""
    return _count(store, list(query.triples), {})


def _count(
    store: TripleStore, remaining: List[TriplePattern], bindings: Bindings
) -> int:
    if not remaining:
        return 1
    idx = _pick_next(store, remaining, bindings)
    tp = remaining[idx]
    rest = remaining[:idx] + remaining[idx + 1:]
    bound_tp = tp.bind(bindings)
    # Fast path: when this was the last pattern and it has no repeated
    # variables, the indexes count matches without enumerating them.
    if not rest and len(bound_tp.variables) == len(set(bound_tp.variables)):
        return _count_single(store, bound_tp)
    total = 0
    for triple in _match_single(store, bound_tp):
        extended = _extend(bindings, bound_tp, triple)
        if extended is not None:
            total += _count(store, rest, extended)
    return total


def cardinalities(
    store: TripleStore, queries: Sequence[QueryPattern]
) -> List[int]:
    """Exact cardinalities for a batch of queries."""
    return [count_bgp(store, q) for q in queries]
