"""Exact BGP evaluation: the ground-truth cardinality oracle.

Every experiment in the paper compares an estimator against the *true*
cardinality ``card(qp)`` — the number of variable bindings under which all
triple patterns of the query match the graph.  This module computes that
number exactly with a backtracking join whose next pattern is always the
one with the fewest candidate triples under the current bindings (a greedy
selectivity-first join order, the standard approach in RDF engines).

The backtracking join is pure pointer chasing — hundreds of thousands of
tiny single-pattern probes per query — so it reads the store's
generation-cached **dict indexes** (`TripleStore._legacy_indexes`), which
answer a probe by reference; the columnar permutations that serve the
vectorized counters would pay a binary search per probe here.  Both views
are snapshots of the same generation, so the results are identical.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import Triple, TriplePattern, Variable, is_bound

Bindings = Dict[Variable, int]

_EMPTY: dict = {}


def _match_single(
    store: TripleStore, tp: TriplePattern
) -> Iterator[Triple]:
    """Triples matching one pattern, via the dict indexes.

    Equivalent to ``store.match_pattern`` (including repeated-variable
    filtering) but tuned for the join's inner loop.
    """
    same_so = isinstance(tp.s, Variable) and tp.s == tp.o
    same_sp = isinstance(tp.s, Variable) and tp.s == tp.p
    same_po = isinstance(tp.p, Variable) and tp.p == tp.o
    for triple in _candidates(store, tp):
        s, p, o = triple
        if same_so and s != o:
            continue
        if same_sp and s != p:
            continue
        if same_po and p != o:
            continue
        yield triple


def _candidates(
    store: TripleStore, tp: TriplePattern
) -> Iterator[Triple]:
    """Best dict index for the bound positions of one pattern."""
    spo, pos, osp, _ = store._legacy_indexes()
    s_b, p_b, o_b = is_bound(tp.s), is_bound(tp.p), is_bound(tp.o)
    if s_b and p_b and o_b:
        triple = tp.as_triple()
        if triple in store:
            yield triple
        return
    if s_b and p_b:
        for o in spo.get(tp.s, _EMPTY).get(tp.p, ()):
            yield (tp.s, tp.p, o)
        return
    if p_b and o_b:
        for s in pos.get(tp.p, _EMPTY).get(tp.o, ()):
            yield (s, tp.p, tp.o)
        return
    if s_b and o_b:
        for p in osp.get(tp.o, _EMPTY).get(tp.s, ()):
            yield (tp.s, p, tp.o)
        return
    if s_b:
        for p, objs in spo.get(tp.s, _EMPTY).items():
            for o in objs:
                yield (tp.s, p, o)
        return
    if p_b:
        for o, subjects in pos.get(tp.p, _EMPTY).items():
            for s in subjects:
                yield (s, tp.p, o)
        return
    if o_b:
        for s, preds in osp.get(tp.o, _EMPTY).items():
            for p in preds:
                yield (s, p, tp.o)
        return
    yield from store


def _count_single(store: TripleStore, tp: TriplePattern) -> int:
    """Exact single-pattern count via the dict indexes."""
    variables = tp.variables
    if len(variables) != len(set(variables)):
        return sum(1 for _ in _match_single(store, tp))
    spo, pos, osp, pso = store._legacy_indexes()
    s_b, p_b, o_b = is_bound(tp.s), is_bound(tp.p), is_bound(tp.o)
    if s_b and p_b and o_b:
        return 1 if tp.as_triple() in store else 0
    if s_b and p_b:
        return len(spo.get(tp.s, _EMPTY).get(tp.p, ()))
    if p_b and o_b:
        return len(pos.get(tp.p, _EMPTY).get(tp.o, ()))
    if s_b and o_b:
        return len(osp.get(tp.o, _EMPTY).get(tp.s, ()))
    if s_b:
        return sum(len(objs) for objs in spo.get(tp.s, _EMPTY).values())
    if p_b:
        return sum(len(objs) for objs in pso.get(tp.p, _EMPTY).values())
    if o_b:
        return sum(
            len(preds) for preds in osp.get(tp.o, _EMPTY).values()
        )
    return len(store)


def _extend(
    bindings: Bindings, tp: TriplePattern, triple
) -> Optional[Bindings]:
    """Extend *bindings* so *tp* maps onto *triple*; None on conflict."""
    new = bindings
    copied = False
    for position, value in zip(tp, triple):
        if isinstance(position, Variable):
            bound = new.get(position)
            if bound is None:
                if not copied:
                    new = dict(new)
                    copied = True
                new[position] = value
            elif bound != value:
                return None
        elif position != value:
            return None
    return new


def _pick_next(
    store: TripleStore, remaining: List[TriplePattern], bindings: Bindings
) -> int:
    """Index of the remaining pattern with the fewest candidates."""
    best_idx = 0
    best_count = None
    for idx, tp in enumerate(remaining):
        bound_tp = tp.bind(bindings)
        count = _count_single(store, bound_tp)
        if best_count is None or count < best_count:
            best_idx, best_count = idx, count
            if best_count == 0:
                break
    return best_idx


def iter_bindings(
    store: TripleStore, query: QueryPattern
) -> Iterator[Bindings]:
    """Yield every solution mapping of *query* over *store*.

    Solutions follow SPARQL BGP semantics without DISTINCT: one result per
    total variable binding satisfying all triple patterns.
    """
    yield from _search(store, list(query.triples), {})


def _search(
    store: TripleStore, remaining: List[TriplePattern], bindings: Bindings
) -> Iterator[Bindings]:
    if not remaining:
        yield bindings
        return
    idx = _pick_next(store, remaining, bindings)
    tp = remaining[idx]
    rest = remaining[:idx] + remaining[idx + 1:]
    bound_tp = tp.bind(bindings)
    for triple in _match_single(store, bound_tp):
        extended = _extend(bindings, bound_tp, triple)
        if extended is not None:
            yield from _search(store, rest, extended)


def count_bgp(store: TripleStore, query: QueryPattern) -> int:
    """Exact cardinality ``card(qp)`` of *query* over *store*."""
    return _count(store, list(query.triples), {})


def _count(
    store: TripleStore, remaining: List[TriplePattern], bindings: Bindings
) -> int:
    if not remaining:
        return 1
    idx = _pick_next(store, remaining, bindings)
    tp = remaining[idx]
    rest = remaining[:idx] + remaining[idx + 1:]
    bound_tp = tp.bind(bindings)
    # Fast path: when this was the last pattern and it has no repeated
    # variables, the indexes count matches without enumerating them.
    if not rest and len(bound_tp.variables) == len(set(bound_tp.variables)):
        return _count_single(store, bound_tp)
    total = 0
    for triple in _match_single(store, bound_tp):
        extended = _extend(bindings, bound_tp, triple)
        if extended is not None:
            total += _count(store, rest, extended)
    return total


def cardinalities(
    store: TripleStore, queries: Sequence[QueryPattern]
) -> List[int]:
    """Exact cardinalities for a batch of queries."""
    return [count_bgp(store, q) for q in queries]
