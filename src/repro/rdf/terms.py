"""Core RDF vocabulary: terms, variables, triples, and triple patterns.

The library works with *dictionary-encoded* knowledge graphs: every URI or
literal is mapped to a small integer id (see :mod:`repro.rdf.dictionary`).
Inside queries, positions that are not bound to a term are held by
:class:`Variable` objects.  A :class:`TriplePattern` is a triple whose
positions may be variables; a fully bound pattern is just a triple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union


@dataclass(frozen=True, order=True)
class Variable:
    """An unbound SPARQL variable, e.g. ``?x``.

    Variables compare and hash by name, so two patterns mentioning ``?x``
    share the binding during matching.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        if self.name.startswith("?"):
            # Normalise "?x" to "x" so Variable("?x") == Variable("x").
            object.__setattr__(self, "name", self.name[1:])

    def __repr__(self) -> str:
        return f"?{self.name}"


#: A pattern position: either a dictionary-encoded term id or a variable.
PatternTerm = Union[int, Variable]

#: A fully bound, dictionary-encoded triple.
Triple = Tuple[int, int, int]


def is_bound(term: PatternTerm) -> bool:
    """Return True when *term* is a concrete term id, not a variable."""
    return not isinstance(term, Variable)


@dataclass(frozen=True)
class TriplePattern:
    """A single SPARQL triple pattern ``(s, p, o)``.

    Each position holds either an integer term id or a :class:`Variable`.
    """

    s: PatternTerm
    p: PatternTerm
    o: PatternTerm

    def __iter__(self) -> Iterator[PatternTerm]:
        yield self.s
        yield self.p
        yield self.o

    @property
    def is_fully_bound(self) -> bool:
        """True when no position is a variable."""
        return all(is_bound(t) for t in self)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """The variables of this pattern, in (s, p, o) position order."""
        return tuple(t for t in self if isinstance(t, Variable))

    @property
    def num_bound(self) -> int:
        """How many of the three positions carry a concrete term."""
        return sum(1 for t in self if is_bound(t))

    def bind(self, bindings: dict) -> "TriplePattern":
        """Return a copy with variables replaced from *bindings* when present.

        Variables missing from *bindings* stay unbound.
        """

        def resolve(term: PatternTerm) -> PatternTerm:
            if isinstance(term, Variable) and term in bindings:
                return bindings[term]
            return term

        return TriplePattern(resolve(self.s), resolve(self.p), resolve(self.o))

    def as_triple(self) -> Triple:
        """Return the pattern as a concrete triple.

        Raises:
            ValueError: if any position is still a variable.
        """
        if not self.is_fully_bound:
            raise ValueError(f"pattern {self} still has unbound variables")
        return (self.s, self.p, self.o)  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"({self.s} {self.p} {self.o})"


def pattern(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> TriplePattern:
    """Convenience constructor; strings are interpreted as variable names."""

    def coerce(t) -> PatternTerm:
        if isinstance(t, str):
            return Variable(t)
        return t

    return TriplePattern(coerce(s), coerce(p), coerce(o))
