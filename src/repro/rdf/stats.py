"""Dataset statistics: the numbers behind Table I and Fig. 4.

Provides per-graph summary statistics (triples, entities, predicates,
degree distributions) plus skew diagnostics used to verify that the
synthetic datasets reproduce the statistical character the paper relies
on (heavy-tailed degrees, correlated predicates).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.rdf.store import TripleStore


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one knowledge graph (Table I row)."""

    name: str
    num_triples: int
    num_entities: int
    num_predicates: int
    max_out_degree: int
    max_in_degree: int
    mean_out_degree: float
    degree_gini: float

    def table_row(self) -> Tuple[str, str, str, str]:
        """Formatted (name, triples, entities, predicates) row."""
        return (
            self.name,
            _si(self.num_triples),
            _si(self.num_entities),
            str(self.num_predicates),
        )


def _si(value: int) -> str:
    """Human format like the paper's Table I (~250K, ~2.7M)."""
    if value >= 1_000_000:
        return f"~{value / 1_000_000:.1f}M"
    if value >= 1_000:
        return f"~{value / 1_000:.0f}K"
    return str(value)


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample; 0 = uniform, →1 = skewed."""
    if len(values) == 0:
        return 0.0
    sorted_vals = np.sort(np.asarray(values, dtype=np.float64))
    total = sorted_vals.sum()
    if total == 0:
        return 0.0
    n = len(sorted_vals)
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * sorted_vals).sum()) / (n * total) - (n + 1) / n)


def compute_stats(store: TripleStore, name: str = "graph") -> GraphStats:
    """Compute the Table I statistics for *store*."""
    out_degrees = np.array(
        [store.out_degree(n) for n in store.subjects()], dtype=np.int64
    )
    in_degrees = np.array(
        [store.in_degree(n) for n in store._osp.keys()], dtype=np.int64
    )
    return GraphStats(
        name=name,
        num_triples=store.num_triples,
        num_entities=store.num_nodes,
        num_predicates=store.num_predicates,
        max_out_degree=int(out_degrees.max()) if len(out_degrees) else 0,
        max_in_degree=int(in_degrees.max()) if len(in_degrees) else 0,
        mean_out_degree=(
            float(out_degrees.mean()) if len(out_degrees) else 0.0
        ),
        degree_gini=gini(out_degrees),
    )


def predicate_histogram(store: TripleStore) -> Dict[int, int]:
    """Triple count per predicate — the base synopsis of naive estimators."""
    return {p: store.predicate_count(p) for p in store.predicates()}


def predicate_cooccurrence(store: TripleStore) -> Counter:
    """How often predicate pairs co-occur on the same subject.

    High co-occurrence relative to independent expectation is exactly the
    predicate correlation that breaks histogram estimators (Section I of
    the paper); the SWDF-like generator is validated against this.
    """
    cooc: Counter = Counter()
    for s in store.subjects():
        preds = sorted(store.out_predicates(s))
        for i, p1 in enumerate(preds):
            for p2 in preds[i + 1:]:
                cooc[(p1, p2)] += 1
    return cooc


def correlation_factor(store: TripleStore, p1: int, p2: int) -> float:
    """Observed/expected subject co-occurrence of two predicates.

    Values ≫ 1 mean the predicates are positively correlated, i.e. the
    independence assumption underestimates their conjunction.
    """
    subjects = list(store.subjects())
    n = len(subjects)
    if n == 0:
        return 1.0
    with_p1 = sum(1 for s in subjects if p1 in store.out_predicates(s))
    with_p2 = sum(1 for s in subjects if p2 in store.out_predicates(s))
    both = sum(
        1
        for s in subjects
        if p1 in store.out_predicates(s) and p2 in store.out_predicates(s)
    )
    expected = (with_p1 / n) * (with_p2 / n) * n
    if expected == 0:
        return 0.0 if both == 0 else float("inf")
    return both / expected


def degree_distribution(store: TripleStore) -> List[Tuple[int, int]]:
    """(degree, node count) pairs of the out-degree distribution, sorted."""
    counts = Counter(store.out_degree(n) for n in store.subjects())
    return sorted(counts.items())
