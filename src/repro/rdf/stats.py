"""Dataset statistics: the numbers behind Table I and Fig. 4.

Provides per-graph summary statistics (triples, entities, predicates,
degree distributions) plus skew diagnostics used to verify that the
synthetic datasets reproduce the statistical character the paper relies
on (heavy-tailed degrees, correlated predicates).  Everything reads the
columnar store snapshot: degree vectors, predicate histograms, and
characteristic-set scans are array reductions rather than per-node dict
walks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.rdf.store import TripleStore


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one knowledge graph (Table I row)."""

    name: str
    num_triples: int
    num_entities: int
    num_predicates: int
    max_out_degree: int
    max_in_degree: int
    mean_out_degree: float
    degree_gini: float

    def table_row(self) -> Tuple[str, str, str, str]:
        """Formatted (name, triples, entities, predicates) row."""
        return (
            self.name,
            _si(self.num_triples),
            _si(self.num_entities),
            str(self.num_predicates),
        )


def _si(value: int) -> str:
    """Human format like the paper's Table I (~250K, ~2.7M)."""
    if value >= 1_000_000:
        return f"~{value / 1_000_000:.1f}M"
    if value >= 1_000:
        return f"~{value / 1_000:.0f}K"
    return str(value)


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample; 0 = uniform, →1 = skewed."""
    if len(values) == 0:
        return 0.0
    sorted_vals = np.sort(np.asarray(values, dtype=np.float64))
    total = sorted_vals.sum()
    if total == 0:
        return 0.0
    n = len(sorted_vals)
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * sorted_vals).sum()) / (n * total) - (n + 1) / n)


def compute_stats(store: TripleStore, name: str = "graph") -> GraphStats:
    """Compute the Table I statistics for *store*."""
    col = store.backend
    _, out_degrees = col.subject_degrees()
    _, in_degrees = col.object_degrees()
    return GraphStats(
        name=name,
        num_triples=store.num_triples,
        num_entities=store.num_nodes,
        num_predicates=store.num_predicates,
        max_out_degree=int(out_degrees.max()) if len(out_degrees) else 0,
        max_in_degree=int(in_degrees.max()) if len(in_degrees) else 0,
        mean_out_degree=(
            float(out_degrees.mean()) if len(out_degrees) else 0.0
        ),
        degree_gini=gini(out_degrees),
    )


def predicate_histogram(store: TripleStore) -> Dict[int, int]:
    """Triple count per predicate — the base synopsis of naive estimators."""
    preds, counts = store.backend.predicate_triple_counts()
    return dict(zip(preds.tolist(), counts.tolist()))


def predicate_cooccurrence(store: TripleStore) -> Counter:
    """How often predicate pairs co-occur on the same subject.

    High co-occurrence relative to independent expectation is exactly the
    predicate correlation that breaks histogram estimators (Section I of
    the paper); the SWDF-like generator is validated against this.  The
    per-subject predicate sets come from one pass over the distinct
    (s, p) pairs of the SPO permutation.
    """
    cooc: Counter = Counter()
    for group, _ in store.backend.subject_predicate_groups():
        # Predicates are already sorted within the subject.
        for i, p1 in enumerate(group):
            for p2 in group[i + 1:]:
                cooc[(p1, p2)] += 1
    return cooc


def correlation_factor(store: TripleStore, p1: int, p2: int) -> float:
    """Observed/expected subject co-occurrence of two predicates.

    Values ≫ 1 mean the predicates are positively correlated, i.e. the
    independence assumption underestimates their conjunction.
    """
    col = store.backend
    n = col.subjects().size
    if n == 0:
        return 1.0
    subjects_p1 = col.predicate_subject_stats(p1)[0]
    subjects_p2 = col.predicate_subject_stats(p2)[0]
    with_p1 = subjects_p1.size
    with_p2 = subjects_p2.size
    both = np.intersect1d(
        subjects_p1, subjects_p2, assume_unique=True
    ).size
    expected = (with_p1 / n) * (with_p2 / n) * n
    if expected == 0:
        return 0.0 if both == 0 else float("inf")
    return both / expected


def degree_distribution(store: TripleStore) -> List[Tuple[int, int]]:
    """(degree, node count) pairs of the out-degree distribution, sorted."""
    _, out_degrees = store.backend.subject_degrees()
    degrees, counts = np.unique(out_degrees, return_counts=True)
    return list(zip(degrees.tolist(), counts.tolist()))
