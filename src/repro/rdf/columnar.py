"""Columnar permutation indexes: the numpy backend of the triple store.

A :class:`ColumnarIndex` holds one immutable snapshot of a dictionary-
encoded graph as four sorted ``int64`` column triples — the SPO, POS,
OSP, and PSO permutations of RDF-3X-style engines.  Every single-pattern
access path (any subset of {s, p, o} bound) is a pair of
``np.searchsorted`` calls producing a contiguous range over one
permutation, so lookups are ``O(log N)`` with no per-triple Python work,
and whole-range consumers (degree counts, adjacency slices, frontier
expansion) read contiguous array slices.

The index is deliberately free of dense id-space arrays: all lookups are
binary searches over the sorted primary columns, so sparse or very large
term ids cost nothing beyond the triples themselves.

:class:`~repro.rdf.store.TripleStore` owns mutation and rebuilds its
index lazily (guarded by a generation counter); the vectorized counters
(:mod:`repro.rdf.fastcount`), samplers (:mod:`repro.sampling.random_walk`)
and statistics (:mod:`repro.rdf.stats`) all run directly against this
class.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.rdf.terms import Triple

#: (lo, hi) bounds of a contiguous range inside one permutation.
Range = Tuple[int, int]

#: On-disk snapshot format identifier and version (bumped on layout change).
SNAPSHOT_FORMAT = "repro-columnar"
SNAPSHOT_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: The twelve persisted columns, one ``.npy`` file each, in manifest order.
PERMUTATION_COLUMNS = (
    "spo_s", "spo_p", "spo_o",
    "pos_p", "pos_o", "pos_s",
    "osp_o", "osp_s", "osp_p",
    "pso_p", "pso_s", "pso_o",
)


class SnapshotError(RuntimeError):
    """A snapshot directory is missing, corrupted, or incompatible."""


def read_manifest(directory: Union[str, Path]) -> Dict:
    """Parse and validate a snapshot manifest, raising :class:`SnapshotError`.

    Checks the format marker and version so a newer (or foreign) layout
    fails loudly instead of deserialising garbage.
    """
    path = Path(directory) / MANIFEST_NAME
    if not path.is_file():
        raise SnapshotError(f"no snapshot manifest at {path}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"unreadable snapshot manifest {path}: {exc}")
    if not isinstance(manifest, dict):
        raise SnapshotError(f"snapshot manifest {path} is not a JSON object")
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path} is not a {SNAPSHOT_FORMAT} snapshot "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {manifest.get('version')!r} unsupported "
            f"(expected {SNAPSHOT_VERSION})"
        )
    return manifest


def coerce_rows(rows: np.ndarray) -> np.ndarray:
    """Normalise *rows* to a contiguous ``(N, 3)`` int64 array.

    The single validation point shared by every consumer of triple-row
    arrays (index construction, packing, bulk ingest); empty input of
    any shape becomes ``(0, 3)``.
    """
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    if rows.size == 0:
        return rows.reshape(0, 3)
    if rows.ndim != 2 or rows.shape[1] != 3:
        raise ValueError(
            f"expected an (N, 3) array of triples, got shape {rows.shape}"
        )
    return rows


def pack_rows(rows: np.ndarray) -> np.ndarray:
    """View ``(N, 3)`` int64 rows as one opaque record per row.

    The void view compares rows bytewise, which is enough for equality-
    based set operations (``np.unique``/``np.isin``) regardless of value
    range — the general-purpose fallback when rows cannot be packed into
    a single ordered int64 key.
    """
    rows = coerce_rows(rows)
    return rows.view(np.dtype((np.void, rows.dtype.itemsize * 3))).ravel()


def _eq_range(
    column: np.ndarray, value: int, lo: int = 0, hi: Optional[int] = None
) -> Range:
    """Half-open index range where ``column[lo:hi] == value``.

    ``column[lo:hi]`` must be sorted; the returned bounds are absolute
    indices into *column*.
    """
    if hi is None:
        hi = column.size
    view = column[lo:hi]
    left = lo + int(np.searchsorted(view, value, side="left"))
    right = lo + int(np.searchsorted(view, value, side="right"))
    return left, right


def expand_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(start, start+length)`` for many ranges at once.

    The standard CSR "ranges to indices" construction: one ``np.repeat``
    plus one global ``arange``, no Python loop.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(
        ([0], np.cumsum(lengths)[:-1])
    )
    return np.repeat(starts - offsets, lengths) + np.arange(total)


def run_starts(values: np.ndarray) -> np.ndarray:
    """Start index of every equal-value run in a sorted array, plus the
    end sentinel, so ``zip(starts, starts[1:])`` walks the groups."""
    if values.size == 0:
        return np.zeros(1, dtype=np.int64)
    starts = np.flatnonzero(
        np.concatenate(([True], values[1:] != values[:-1]))
    )
    return np.append(starts, values.size)


def in_sorted(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean membership of *needles* in the sorted array *haystack*."""
    if haystack.size == 0:
        return np.zeros(len(needles), dtype=bool)
    pos = np.searchsorted(haystack, needles)
    pos = np.minimum(pos, haystack.size - 1)
    return haystack[pos] == needles


class ColumnarIndex:
    """Immutable sorted-permutation snapshot of a set of triples."""

    __slots__ = (
        "size",
        "spo_s", "spo_p", "spo_o",
        "pos_p", "pos_o", "pos_s",
        "osp_o", "osp_s", "osp_p",
        "pso_p", "pso_s", "pso_o",
        "_subjects", "_subject_degrees",
        "_objects", "_object_degrees",
        "_predicates", "_predicate_triples",
        "_nodes",
    )

    def __init__(
        self, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> None:
        s = np.ascontiguousarray(s, dtype=np.int64)
        p = np.ascontiguousarray(p, dtype=np.int64)
        o = np.ascontiguousarray(o, dtype=np.int64)
        if not (s.shape == p.shape == o.shape) or s.ndim != 1:
            raise ValueError("s, p, o must be equal-length 1-d arrays")
        self.size = int(s.size)
        order = np.lexsort((o, p, s))
        self.spo_s, self.spo_p, self.spo_o = s[order], p[order], o[order]
        order = np.lexsort((s, o, p))
        self.pos_p, self.pos_o, self.pos_s = p[order], o[order], s[order]
        order = np.lexsort((p, s, o))
        self.osp_o, self.osp_s, self.osp_p = o[order], s[order], p[order]
        order = np.lexsort((o, s, p))
        self.pso_p, self.pso_s, self.pso_o = p[order], s[order], o[order]
        self._subjects: Optional[np.ndarray] = None
        self._subject_degrees: Optional[np.ndarray] = None
        self._objects: Optional[np.ndarray] = None
        self._object_degrees: Optional[np.ndarray] = None
        self._predicates: Optional[np.ndarray] = None
        self._predicate_triples: Optional[np.ndarray] = None
        self._nodes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "ColumnarIndex":
        """Build from any iterable of (s, p, o) int triples."""
        data = np.array(list(triples), dtype=np.int64)
        if data.size == 0:
            data = data.reshape(0, 3)
        return cls(data[:, 0], data[:, 1], data[:, 2])

    @classmethod
    def from_array(cls, rows: np.ndarray) -> "ColumnarIndex":
        """Build from an ``(N, 3)`` array without tuple round-trips."""
        rows = coerce_rows(rows)
        return cls(rows[:, 0], rows[:, 1], rows[:, 2])

    @classmethod
    def _from_sorted_columns(
        cls, columns: Dict[str, np.ndarray]
    ) -> "ColumnarIndex":
        """Adopt already-sorted permutation columns (snapshot load path)."""
        self = cls.__new__(cls)
        self.size = int(columns["spo_s"].size)
        for name in PERMUTATION_COLUMNS:
            setattr(self, name, columns[name])
        self._subjects = None
        self._subject_degrees = None
        self._objects = None
        self._object_degrees = None
        self._predicates = None
        self._predicate_triples = None
        self._nodes = None
        return self

    def rows(self) -> np.ndarray:
        """The stored triples as an ``(N, 3)`` array, in SPO order."""
        return np.column_stack((self.spo_s, self.spo_p, self.spo_o))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def content_checksum(self) -> str:
        """CRC32 chained over all twelve columns, as 8 hex digits.

        Every column is an independently stored file that can corrupt
        independently, so all of them participate — a checksum over one
        permutation alone would wave through corruption in the other
        three (regression-tested).
        """
        crc = 0
        for name in PERMUTATION_COLUMNS:
            column = np.ascontiguousarray(getattr(self, name))
            crc = zlib.crc32(column.tobytes(), crc)
        return f"{crc & 0xFFFFFFFF:08x}"

    def save(
        self,
        directory: Union[str, Path],
        extra_manifest: Optional[Dict] = None,
    ) -> Path:
        """Persist the index: one ``.npy`` per column plus a manifest.

        The manifest (written last, so its presence marks a complete
        snapshot) records the format version, triple count and content
        checksum; *extra_manifest* lets the store layer attach
        dictionary metadata.  Returns the manifest path.
        """
        import os

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name in PERMUTATION_COLUMNS:
            # Write-then-rename: saving straight onto <name>.npy would
            # truncate the very file a memmap-backed column is reading
            # from (silent corruption on an in-place re-save), and a
            # crash mid-write would leave a torn column behind.
            final = directory / f"{name}.npy"
            tmp = directory / f"{name}.tmp.npy"
            np.save(tmp, np.ascontiguousarray(getattr(self, name)))
            os.replace(tmp, final)
        manifest = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "num_triples": self.size,
            "columns": list(PERMUTATION_COLUMNS),
            "checksum": self.content_checksum(),
        }
        if extra_manifest:
            manifest.update(extra_manifest)
        manifest_path = directory / MANIFEST_NAME
        manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return manifest_path

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        mmap_mode: Optional[str] = "r",
        verify: bool = True,
    ) -> "ColumnarIndex":
        """Load a saved index, as read-only memmaps by default.

        ``mmap_mode=None`` reads the columns eagerly into memory.  Every
        column is validated against the manifest (dtype, shape, length);
        ``verify=True`` additionally recomputes the content checksum.
        Raises :class:`SnapshotError` on any mismatch or corruption.
        """
        directory = Path(directory)
        manifest = read_manifest(directory)
        if manifest.get("columns") != list(PERMUTATION_COLUMNS):
            raise SnapshotError(
                f"snapshot at {directory} lists unexpected columns "
                f"{manifest.get('columns')!r}"
            )
        num_triples = manifest.get("num_triples")
        if not isinstance(num_triples, int) or num_triples < 0:
            raise SnapshotError(
                f"snapshot at {directory} has invalid num_triples "
                f"{num_triples!r}"
            )
        columns: Dict[str, np.ndarray] = {}
        for name in PERMUTATION_COLUMNS:
            path = directory / f"{name}.npy"
            if not path.is_file():
                raise SnapshotError(f"snapshot column missing: {path}")
            try:
                array = np.load(path, mmap_mode=mmap_mode)
            except (OSError, ValueError) as exc:
                raise SnapshotError(
                    f"unreadable snapshot column {path}: {exc}"
                )
            if array.ndim != 1 or array.dtype != np.int64:
                raise SnapshotError(
                    f"snapshot column {path} has dtype {array.dtype}/"
                    f"ndim {array.ndim}; expected 1-d int64"
                )
            if array.size != num_triples:
                raise SnapshotError(
                    f"snapshot column {path} holds {array.size} values; "
                    f"manifest says {num_triples}"
                )
            columns[name] = array
        index = cls._from_sorted_columns(columns)
        if verify:
            checksum = index.content_checksum()
            if checksum != manifest.get("checksum"):
                raise SnapshotError(
                    f"snapshot at {directory} failed checksum verification "
                    f"({checksum} != {manifest.get('checksum')!r})"
                )
        return index

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------

    def subjects(self) -> np.ndarray:
        """Sorted distinct subject ids."""
        if self._subjects is None:
            self._subjects, self._subject_degrees = np.unique(
                self.spo_s, return_counts=True
            )
        return self._subjects

    def subject_degrees(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted distinct subjects, out-degree of each)."""
        self.subjects()
        return self._subjects, self._subject_degrees

    def objects(self) -> np.ndarray:
        """Sorted distinct object ids."""
        if self._objects is None:
            self._objects, self._object_degrees = np.unique(
                self.osp_o, return_counts=True
            )
        return self._objects

    def object_degrees(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted distinct objects, in-degree of each)."""
        self.objects()
        return self._objects, self._object_degrees

    def predicates(self) -> np.ndarray:
        """Sorted distinct predicate ids."""
        if self._predicates is None:
            self._predicates, self._predicate_triples = np.unique(
                self.pso_p, return_counts=True
            )
        return self._predicates

    def predicate_triple_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted distinct predicates, triple count of each)."""
        self.predicates()
        return self._predicates, self._predicate_triples

    def nodes(self) -> np.ndarray:
        """Sorted distinct node ids (subject or object position)."""
        if self._nodes is None:
            self._nodes = np.union1d(self.subjects(), self.objects())
        return self._nodes

    # ------------------------------------------------------------------
    # Range lookups (one bound position)
    # ------------------------------------------------------------------

    def s_range(self, s: int) -> Range:
        return _eq_range(self.spo_s, s)

    def p_range_pso(self, p: int) -> Range:
        return _eq_range(self.pso_p, p)

    def p_range_pos(self, p: int) -> Range:
        return _eq_range(self.pos_p, p)

    def o_range(self, o: int) -> Range:
        return _eq_range(self.osp_o, o)

    # ------------------------------------------------------------------
    # Slices (contiguous adjacency views)
    # ------------------------------------------------------------------

    def out_slice(self, s: int) -> Tuple[np.ndarray, np.ndarray]:
        """(p, o) columns of all triples with subject *s* (p-sorted)."""
        lo, hi = self.s_range(s)
        return self.spo_p[lo:hi], self.spo_o[lo:hi]

    def in_slice(self, o: int) -> Tuple[np.ndarray, np.ndarray]:
        """(s, p) columns of all triples with object *o* (s-sorted)."""
        lo, hi = self.o_range(o)
        return self.osp_s[lo:hi], self.osp_p[lo:hi]

    def pred_slice(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        """(s, o) columns of all triples with predicate *p* (s-sorted)."""
        lo, hi = self.p_range_pso(p)
        return self.pso_s[lo:hi], self.pso_o[lo:hi]

    def pred_slice_by_object(
        self, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(o, s) columns of all triples with predicate *p* (o-sorted)."""
        lo, hi = self.p_range_pos(p)
        return self.pos_o[lo:hi], self.pos_s[lo:hi]

    # ------------------------------------------------------------------
    # Two-bound lookups
    # ------------------------------------------------------------------

    def objects_of(self, s: int, p: int) -> np.ndarray:
        """Sorted objects o with (s, p, o) stored."""
        lo, hi = self.s_range(s)
        lo, hi = _eq_range(self.spo_p, p, lo, hi)
        return self.spo_o[lo:hi]

    def subjects_of(self, p: int, o: int) -> np.ndarray:
        """Sorted subjects s with (s, p, o) stored."""
        lo, hi = self.p_range_pos(p)
        lo, hi = _eq_range(self.pos_o, o, lo, hi)
        return self.pos_s[lo:hi]

    def predicates_between(self, s: int, o: int) -> np.ndarray:
        """Sorted predicates p with (s, p, o) stored."""
        lo, hi = self.o_range(o)
        lo, hi = _eq_range(self.osp_s, s, lo, hi)
        return self.osp_p[lo:hi]

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------

    def contains(self, s: int, p: int, o: int) -> bool:
        objs = self.objects_of(s, p)
        if objs.size == 0:
            return False
        pos = int(np.searchsorted(objs, o))
        return pos < objs.size and int(objs[pos]) == o

    def out_degree(self, s: int) -> int:
        lo, hi = self.s_range(s)
        return hi - lo

    def in_degree(self, o: int) -> int:
        lo, hi = self.o_range(o)
        return hi - lo

    def predicate_count(self, p: int) -> int:
        lo, hi = self.p_range_pso(p)
        return hi - lo

    def count_sp(self, s: int, p: int) -> int:
        return self.objects_of(s, p).size

    def count_po(self, p: int, o: int) -> int:
        return self.subjects_of(p, o).size

    def count_so(self, s: int, o: int) -> int:
        return self.predicates_between(s, o).size

    def out_predicates(self, s: int) -> np.ndarray:
        """Sorted distinct predicates leaving subject *s*."""
        preds, _ = self.out_slice(s)
        return np.unique(preds)

    def distinct_sp_pairs(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(subject, predicate, fan-out) per distinct (s, p) pair.

        One boundary scan over the SPO columns; pairs come out in SPO
        order, so runs of equal subject are contiguous (see
        :func:`run_starts`).  Feeds the characteristic-set synopsis and
        the co-occurrence statistics.
        """
        s_col, p_col = self.spo_s, self.spo_p
        if s_col.size == 0:
            return s_col, p_col, s_col
        boundary = np.ones(s_col.size, dtype=bool)
        boundary[1:] = (s_col[1:] != s_col[:-1]) | (
            p_col[1:] != p_col[:-1]
        )
        idx = np.flatnonzero(boundary)
        fanouts = np.diff(np.append(idx, s_col.size))
        return s_col[idx], p_col[idx], fanouts

    def subject_predicate_groups(self):
        """Yield (predicates, fanouts) lists per distinct subject.

        Groups :meth:`distinct_sp_pairs` by subject (SPO order), giving
        each subject's characteristic set and per-predicate fan-outs in
        one pass — shared by the CSET synopsis and the co-occurrence
        statistics.
        """
        pair_s, pair_p, fanouts = self.distinct_sp_pairs()
        if pair_s.size == 0:
            return
        starts = run_starts(pair_s).tolist()
        preds = pair_p.tolist()
        fans = fanouts.tolist()
        for lo, hi in zip(starts, starts[1:]):
            yield preds[lo:hi], fans[lo:hi]

    # ------------------------------------------------------------------
    # Per-predicate distinct-term statistics
    # ------------------------------------------------------------------

    def predicate_subject_stats(
        self, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(distinct subjects of predicate p, triple count per subject)."""
        s_col, _ = self.pred_slice(p)
        return np.unique(s_col, return_counts=True)

    def predicate_object_stats(
        self, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(distinct objects of predicate p, triple count per object)."""
        o_col, _ = self.pred_slice_by_object(p)
        return np.unique(o_col, return_counts=True)

    # ------------------------------------------------------------------
    # Vectorized frontier primitives
    # ------------------------------------------------------------------

    def sp_ranges(
        self, subjects: np.ndarray, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-subject (lo, hi) ranges into the PSO arrays for one predicate.

        The returned bounds are absolute indices into ``pso_s``/``pso_o``;
        ``hi - lo`` is the (s, p) fan-out of each subject.
        """
        plo, phi = self.p_range_pso(p)
        view = self.pso_s[plo:phi]
        lo = plo + np.searchsorted(view, subjects, side="left")
        hi = plo + np.searchsorted(view, subjects, side="right")
        return lo, hi

    def sp_counts(self, subjects: np.ndarray, p: int) -> np.ndarray:
        """(s, p) fan-out for an array of subjects, as int64."""
        lo, hi = self.sp_ranges(subjects, p)
        return hi - lo

    def sp_have_object(
        self, subjects: np.ndarray, p: int, o: int
    ) -> np.ndarray:
        """Boolean mask: does (s, p, o) exist, for an array of subjects."""
        return in_sorted(self.subjects_of(p, o), subjects)

    def sp_objects(
        self, subjects: np.ndarray, p: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated (s, p) object runs for an array of subjects.

        Returns ``(objects, lengths)`` where ``lengths[i]`` is the
        fan-out of ``subjects[i]`` and ``objects`` holds the per-subject
        object runs back to back in input-subject order, each run sorted.
        """
        lo, hi = self.sp_ranges(subjects, p)
        lengths = hi - lo
        return self.pso_o[expand_ranges(lo, lengths)], lengths

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Resident bytes of the four permutations (12 int64 columns)."""
        return self.size * 3 * 8 * 4
