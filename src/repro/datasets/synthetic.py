"""Shared utilities for the synthetic knowledge-graph generators.

All three dataset generators (:mod:`repro.datasets.lubm`,
:mod:`repro.datasets.swdf`, :mod:`repro.datasets.yago`) need the same
primitives: heavy-tailed (Zipf-like) sampling over finite pools, skewed
integer ranges, and a builder that accumulates lexical triples into a
dictionary-encoded :class:`~repro.rdf.store.TripleStore`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.rdf.dictionary import GraphDictionary
from repro.rdf.store import TripleStore


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf weights over ranks 1..n."""
    if n <= 0:
        raise ValueError("pool size must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class ZipfSampler:
    """Draws indices in [0, n) with Zipfian popularity.

    The cumulative distribution is precomputed; each draw is one binary
    search, so sampling millions of triples stays fast.
    """

    def __init__(
        self, n: int, exponent: float, rng: np.random.Generator
    ) -> None:
        self._cdf = np.cumsum(zipf_weights(n, exponent))
        self._rng = rng
        self.n = n

    def draw(self) -> int:
        return int(np.searchsorted(self._cdf, self._rng.random()))

    def draw_many(self, count: int) -> np.ndarray:
        return np.searchsorted(self._cdf, self._rng.random(count))


def skewed_count(
    rng: np.random.Generator, low: int, high: int, exponent: float = 1.5
) -> int:
    """A count in [low, high] biased toward the low end (power-law-ish)."""
    if low > high:
        raise ValueError("low must not exceed high")
    span = high - low + 1
    weights = zipf_weights(span, exponent)
    return low + int(rng.choice(span, p=weights))


class GraphBuilder:
    """Accumulates lexical triples and produces an encoded store.

    Generators express their schema in readable lexical URIs; the builder
    handles dictionary encoding and duplicate suppression.
    """

    def __init__(self) -> None:
        self.dictionary = GraphDictionary()
        self.store = TripleStore(self.dictionary)

    def add(self, s: str, p: str, o: str) -> None:
        self.store.add(*self.dictionary.encode_triple(s, p, o))

    def add_batch(self, triples: Sequence[tuple]) -> None:
        """Encode and ingest many lexical triples in one bulk batch.

        Dictionary encoding is inherently per-term, but the encoded rows
        go through the store's array-native ``add_all`` — one
        deduplication pass and one generation bump for the whole batch.
        """
        encode = self.dictionary.encode_triple
        self.store.add_all([encode(s, p, o) for s, p, o in triples])

    @property
    def num_triples(self) -> int:
        return len(self.store)

    def build(self) -> TripleStore:
        return self.store


def pick_distinct(
    rng: np.random.Generator, pool: List[str], count: int
) -> List[str]:
    """Up to *count* distinct elements of *pool*, uniformly."""
    count = min(count, len(pool))
    if count == 0:
        return []
    idx = rng.choice(len(pool), size=count, replace=False)
    return [pool[i] for i in idx]
