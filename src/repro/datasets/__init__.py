"""Synthetic evaluation datasets calibrated to the paper's Table I.

SWDF-like (dense, 171 predicates), LUBM-like (faithful generator
re-implementation, 19 predicates), and YAGO-like (heterogeneous, huge
unique-term domain, 91 predicates).  See DESIGN.md for the substitution
rationale.
"""

from repro.datasets.lubm import LubmProfile, generate_lubm
from repro.datasets.registry import (
    DATASET_NAMES,
    SNAPSHOT_DIR_ENV,
    clear_cache,
    dataset_builders,
    load_dataset,
)
from repro.datasets.snapshot_cache import cache_key, cached_store
from repro.datasets.swdf import generate_swdf
from repro.datasets.yago import generate_yago

__all__ = [
    "LubmProfile",
    "generate_lubm",
    "DATASET_NAMES",
    "SNAPSHOT_DIR_ENV",
    "cache_key",
    "cached_store",
    "clear_cache",
    "dataset_builders",
    "load_dataset",
    "generate_swdf",
    "generate_yago",
]
