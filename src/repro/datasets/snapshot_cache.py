"""Snapshot caching for generated datasets.

Generating a dataset is the expensive part of every run that touches
one — the LUBM/SWDF/YAGO generators emit triples one at a time through
the dictionary encoder.  This module persists the finished store as a
columnar snapshot (see :meth:`repro.rdf.store.TripleStore.save_snapshot`)
so repeated runs skip generation entirely: a cache hit is an O(1)
memmap load whose pages are shared across worker processes.

Validation is delegated to the snapshot layer: a stale, truncated, or
checksum-mismatched snapshot raises
:class:`~repro.rdf.columnar.SnapshotError`, upon which the cache entry
is discarded and the dataset rebuilt (and re-saved) from the generator.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Callable, Optional, Union

from repro.rdf.columnar import SnapshotError
from repro.rdf.store import TripleStore

#: Bump when any generator's output changes for the same knobs, so
#: cached snapshots of the old output stop being served.  Folded into
#: every dataset cache key (registry and generator level).
GENERATOR_CACHE_VERSION = 1


def cached_store(
    directory: Union[str, Path],
    builder: Callable[[], TripleStore],
    mmap_mode: Optional[str] = "r",
    verify: bool = True,
) -> TripleStore:
    """Load the snapshot at *directory*, or build, save, and return.

    On any :class:`SnapshotError` (missing columns, stale checksum,
    version mismatch, ...) the cached entry is removed and the store is
    rebuilt from *builder*; the fresh snapshot replaces it.  The loaded
    store is memmap-backed by default (``mmap_mode=None`` for eager).
    ``verify=False`` skips the checksum pass — an O(N) sequential read
    of the columns — trading corruption detection for a truly O(1)
    hit on very large graphs.
    """
    directory = Path(directory)
    if directory.exists():
        try:
            return TripleStore.load_snapshot(
                directory, mmap_mode=mmap_mode, verify=verify
            )
        except SnapshotError:
            shutil.rmtree(directory, ignore_errors=True)
    store = builder()
    store.save_snapshot(directory)
    return store


def cache_key(name: str, **knobs) -> str:
    """A filesystem-safe snapshot directory name for one dataset config."""
    parts = [name]
    for key in sorted(knobs):
        parts.append(f"{key}-{knobs[key]}")
    return "_".join(str(part).replace("/", "-") for part in parts)
