"""SWDF-like conference-metadata knowledge-graph generator.

The Semantic Web Dog Food corpus (Möller et al., ISWC 2007) describes
papers, people, and events of the ESWC/ISWC conference series.  Its
defining characteristics — the ones the paper's experiments depend on —
are: a *small entity domain with dense interconnection* (~250K triples
over only ~76K entities), a *large predicate vocabulary* (171 predicates),
strong predicate correlations (authors have affiliations; papers have both
creators and events), and heavy skew (a few prolific authors, long tail of
one-paper visitors).

This generator reproduces those properties at a configurable scale:
conferences contain sessions, sessions contain papers, papers have 1-6
authors drawn Zipf-style from a shared person pool, people hold roles at
events and affiliations with a small organisation pool.  The predicate
vocabulary is padded with per-community annotation predicates to reach
SWDF's 171.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import GraphBuilder, ZipfSampler, skewed_count
from repro.rdf.store import TripleStore

TYPE = "rdf:type"

_CORE_PREDICATES = (
    TYPE,
    "dc:creator",
    "dc:title",
    "swc:isPartOf",
    "swc:hasTopic",
    "swc:hasRole",
    "swc:heldBy",
    "swc:hasLocation",
    "foaf:name",
    "foaf:based_near",
    "swrc:affiliation",
    "swrc:year",
    "ical:dtstart",
    "swc:relatedToEvent",
    "owl:sameAs",
    "rdfs:label",
    "foaf:homepage",
    "swc:attendeeListOf",
    "bibo:cites",
)

_ROLES = ("Chair", "PCMember", "Presenter", "Keynote")
_TOPICS = [f"topic{i}" for i in range(40)]
_LOCATIONS = [f"city{i}" for i in range(25)]


def annotation_predicates(total: int = 171) -> list:
    """Pad the core vocabulary with annotation predicates to SWDF's 171."""
    extra = total - len(_CORE_PREDICATES)
    return list(_CORE_PREDICATES) + [f"note:annot{i}" for i in range(extra)]


def generate_swdf(
    conferences: int = 12,
    papers_per_conference: int = 110,
    people_pool: int = 900,
    organisations: int = 80,
    num_predicates: int = 171,
    seed: int = 11,
) -> TripleStore:
    """Generate an SWDF-like store.

    Defaults yield roughly 25K triples over ~7K entities — the same
    1:3.3 entity:triple density as the real corpus.
    """
    rng = np.random.default_rng(seed)
    builder = GraphBuilder()
    predicates = annotation_predicates(num_predicates)
    annots = predicates[len(_CORE_PREDICATES):]

    people = [f"person{i}" for i in range(people_pool)]
    orgs = [f"org{i}" for i in range(organisations)]
    author_sampler = ZipfSampler(people_pool, 1.05, rng)

    _add_people(builder, rng, people, orgs)

    paper_counter = 0
    for c in range(conferences):
        conf = f"conf{c}"
        builder.add(conf, TYPE, "swc:ConferenceEvent")
        builder.add(
            conf, "swc:hasLocation",
            _LOCATIONS[int(rng.integers(len(_LOCATIONS)))],
        )
        builder.add(conf, "swrc:year", f'"{2005 + c % 15}"')
        paper_counter = _add_conference_content(
            builder, rng, conf, people, author_sampler, annots,
            papers_per_conference, paper_counter,
        )
    return builder.build()


def _add_people(builder, rng, people, orgs) -> None:
    affil_sampler = ZipfSampler(len(orgs), 0.9, rng)
    for i, person in enumerate(people):
        builder.add(person, TYPE, "foaf:Person")
        builder.add(person, "foaf:name", f'"name{i}"')
        org_index = affil_sampler.draw()
        org = orgs[org_index]
        builder.add(person, "swrc:affiliation", org)
        # Affiliation correlates with location: people from org k cluster
        # in org k's city, which is the kind of predicate correlation that
        # defeats independence-assuming estimators.  (Keyed by index, not
        # hash(str): builtin string hashing varies per process under
        # PYTHONHASHSEED and would make the dataset non-reproducible.)
        city = _LOCATIONS[org_index * 7 % len(_LOCATIONS)]
        if rng.random() < 0.7:
            builder.add(person, "foaf:based_near", city)
        if rng.random() < 0.25:
            builder.add(person, "foaf:homepage", f'"http://p{i}.example"')


def _add_conference_content(
    builder, rng, conf, people, author_sampler, annots,
    papers_per_conference, paper_counter,
) -> int:
    n_sessions = max(2, papers_per_conference // 12)
    sessions = []
    for s in range(n_sessions):
        session = f"session{s}.{conf}"
        builder.add(session, TYPE, "swc:SessionEvent")
        builder.add(session, "swc:isPartOf", conf)
        builder.add(
            session, "swc:hasTopic",
            _TOPICS[int(rng.integers(len(_TOPICS)))],
        )
        sessions.append(session)

    # Event roles: chairs and PC members, heavily reusing the same
    # prolific people (role/creator correlation).
    for _ in range(n_sessions * 2):
        person = people[author_sampler.draw()]
        role = f"role{paper_counter}.{conf}.{len(builder.store)}"
        builder.add(role, TYPE, f"swc:{_ROLES[int(rng.integers(4))]}Role")
        builder.add(role, "swc:heldBy", person)
        builder.add(role, "swc:relatedToEvent", conf)

    recent_papers = []
    for _ in range(papers_per_conference):
        paper = f"paper{paper_counter}"
        paper_counter += 1
        builder.add(paper, TYPE, "swrc:InProceedings")
        builder.add(paper, "dc:title", f'"title{paper_counter}"')
        session = sessions[int(rng.integers(len(sessions)))]
        builder.add(paper, "swc:isPartOf", session)
        topic = _TOPICS[int(rng.integers(len(_TOPICS)))]
        builder.add(paper, "swc:hasTopic", topic)
        n_authors = skewed_count(rng, 1, 6, exponent=1.2)
        for _ in range(n_authors):
            builder.add(paper, "dc:creator", people[author_sampler.draw()])
        if recent_papers and rng.random() < 0.4:
            cited = recent_papers[int(rng.integers(len(recent_papers)))]
            builder.add(paper, "bibo:cites", cited)
        # Sparse long-tail annotations spread over the padded predicate
        # vocabulary, reproducing SWDF's 171-predicate footprint.
        for _ in range(int(rng.integers(0, 3))):
            annot = annots[int(rng.integers(len(annots)))]
            builder.add(paper, annot, f'"v{int(rng.integers(50))}"')
        recent_papers.append(paper)
        if len(recent_papers) > 50:
            recent_papers.pop(0)
    return paper_counter
