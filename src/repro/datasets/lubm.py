"""LUBM-like university knowledge-graph generator.

LUBM (Guo, Pan, Heflin — J. Web Semantics 2005) is itself a synthetic
benchmark, so this module is a *re-implementation of its generator* rather
than an approximation of a real dump: universities contain departments,
departments employ faculty of three ranks plus lecturers, faculty teach
courses and hold degrees from other universities, students take courses
and graduate students have advisors, and everyone involved publishes.

The cardinality ratios follow the published LUBM profile (e.g. 15-25
departments per university, undergraduates ≈ 8-14 x faculty); the
``universities`` knob plays the role of LUBM's scale factor.  The paper
uses LUBM20 (~2.7M triples); the default here is CPU-sized but preserves
the schema, the 19-predicate domain, and the triples-per-entity ratio
(~4:1) that make LUBM behave the way it does in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.datasets.synthetic import GraphBuilder, pick_distinct, skewed_count
from repro.rdf.store import TripleStore

# The LUBM predicate vocabulary used by the generator (19 predicates,
# matching Table I's LUBM20 row).
TYPE = "rdf:type"
PREDICATES = (
    TYPE,
    "ub:subOrganizationOf",
    "ub:worksFor",
    "ub:headOf",
    "ub:memberOf",
    "ub:undergraduateDegreeFrom",
    "ub:mastersDegreeFrom",
    "ub:doctoralDegreeFrom",
    "ub:teacherOf",
    "ub:takesCourse",
    "ub:advisor",
    "ub:publicationAuthor",
    "ub:researchInterest",
    "ub:emailAddress",
    "ub:telephone",
    "ub:name",
    "ub:teachingAssistantOf",
    "ub:officeNumber",
    "ub:age",
)

_CLASSES = {
    "university": "ub:University",
    "department": "ub:Department",
    "full": "ub:FullProfessor",
    "associate": "ub:AssociateProfessor",
    "assistant": "ub:AssistantProfessor",
    "lecturer": "ub:Lecturer",
    "undergrad": "ub:UndergraduateStudent",
    "grad": "ub:GraduateStudent",
    "course": "ub:Course",
    "gradcourse": "ub:GraduateCourse",
    "publication": "ub:Publication",
    "research": "ub:ResearchGroup",
}

_INTERESTS = [f"interest{i}" for i in range(20)]


@dataclass(frozen=True)
class LubmProfile:
    """Per-department entity count ranges from the LUBM specification,
    scaled down by ``density`` to keep CPU runs fast while preserving the
    relative ratios."""

    departments_low: int = 3
    departments_high: int = 6
    full_low: int = 2
    full_high: int = 4
    associate_low: int = 3
    associate_high: int = 5
    assistant_low: int = 2
    assistant_high: int = 4
    lecturer_low: int = 1
    lecturer_high: int = 3
    undergrad_per_faculty: int = 6
    grad_per_faculty: int = 2
    courses_per_faculty: int = 2
    publications_low: int = 1
    publications_high: int = 5


def generate_lubm(
    universities: int = 5,
    seed: int = 7,
    profile: LubmProfile = LubmProfile(),
    cache_dir: Optional[Union[str, Path]] = None,
) -> TripleStore:
    """Generate a LUBM-like store; ``universities`` is the scale factor.

    With *cache_dir*, the generated store is persisted as a columnar
    snapshot keyed by the generator knobs, and later calls memory-map it
    back instead of regenerating (stale snapshots rebuild transparently).
    """
    if cache_dir is not None:
        import zlib

        from repro.datasets.snapshot_cache import (
            GENERATOR_CACHE_VERSION,
            cache_key,
            cached_store,
        )

        # The profile changes the generated graph, so it must key the
        # cache; a CRC of its (deterministic) repr keeps the path short.
        profile_tag = f"{zlib.crc32(repr(profile).encode()):08x}"
        directory = Path(cache_dir) / cache_key(
            "lubm",
            gen=GENERATOR_CACHE_VERSION,
            universities=universities,
            seed=seed,
            profile=profile_tag,
        )
        return cached_store(
            directory,
            lambda: generate_lubm(universities, seed, profile),
        )
    rng = np.random.default_rng(seed)
    builder = GraphBuilder()
    university_names = [f"univ{u}" for u in range(universities)]
    for name in university_names:
        builder.add(name, TYPE, _CLASSES["university"])

    pub_counter = 0
    for u, univ in enumerate(university_names):
        n_dept = int(
            rng.integers(profile.departments_low, profile.departments_high + 1)
        )
        for d in range(n_dept):
            dept = f"dept{d}.{univ}"
            builder.add(dept, TYPE, _CLASSES["department"])
            builder.add(dept, "ub:subOrganizationOf", univ)
            pub_counter = _populate_department(
                builder, rng, univ, university_names, dept, profile,
                pub_counter,
            )
    return builder.build()


def _populate_department(
    builder: GraphBuilder,
    rng: np.random.Generator,
    univ: str,
    universities: list,
    dept: str,
    profile: LubmProfile,
    pub_counter: int,
) -> int:
    faculty = []
    for rank, low, high in (
        ("full", profile.full_low, profile.full_high),
        ("associate", profile.associate_low, profile.associate_high),
        ("assistant", profile.assistant_low, profile.assistant_high),
        ("lecturer", profile.lecturer_low, profile.lecturer_high),
    ):
        for i in range(int(rng.integers(low, high + 1))):
            person = f"{rank}{i}.{dept}"
            builder.add(person, TYPE, _CLASSES[rank])
            builder.add(person, "ub:worksFor", dept)
            _add_degrees(builder, rng, person, rank, universities)
            builder.add(
                person, "ub:researchInterest",
                _INTERESTS[int(rng.integers(len(_INTERESTS)))],
            )
            builder.add(person, "ub:emailAddress", f'"{person}@edu"')
            if rng.random() < 0.5:
                builder.add(
                    person, "ub:telephone", f'"555-{rng.integers(10000)}"'
                )
            faculty.append((person, rank))
    head = faculty[0][0]
    builder.add(head, "ub:headOf", dept)

    courses = _add_courses(builder, rng, dept, faculty, profile)
    students = _add_students(builder, rng, dept, faculty, courses, profile)
    pub_counter = _add_publications(
        builder, rng, dept, faculty, students, profile, pub_counter
    )

    group_count = int(rng.integers(1, 4))
    for g in range(group_count):
        group = f"group{g}.{dept}"
        builder.add(group, TYPE, _CLASSES["research"])
        builder.add(group, "ub:subOrganizationOf", dept)
    return pub_counter


def _add_degrees(
    builder: GraphBuilder,
    rng: np.random.Generator,
    person: str,
    rank: str,
    universities: list,
) -> None:
    def any_univ() -> str:
        return universities[int(rng.integers(len(universities)))]

    builder.add(person, "ub:undergraduateDegreeFrom", any_univ())
    if rank != "lecturer":
        builder.add(person, "ub:mastersDegreeFrom", any_univ())
    if rank in ("full", "associate", "assistant"):
        builder.add(person, "ub:doctoralDegreeFrom", any_univ())


def _add_courses(builder, rng, dept, faculty, profile):
    courses = []
    for person, rank in faculty:
        for c in range(profile.courses_per_faculty):
            is_grad = rng.random() < 0.4
            kind = "gradcourse" if is_grad else "course"
            course = f"{kind}{len(courses)}.{dept}"
            builder.add(course, TYPE, _CLASSES[kind])
            builder.add(person, "ub:teacherOf", course)
            courses.append(course)
    return courses


def _add_students(builder, rng, dept, faculty, courses, profile):
    n_faculty = len(faculty)
    undergrads = []
    grads = []
    professors = [p for p, r in faculty if r != "lecturer"]
    for i in range(profile.undergrad_per_faculty * n_faculty):
        student = f"ugrad{i}.{dept}"
        builder.add(student, TYPE, _CLASSES["undergrad"])
        builder.add(student, "ub:memberOf", dept)
        for course in pick_distinct(rng, courses, skewed_count(rng, 1, 4)):
            builder.add(student, "ub:takesCourse", course)
        undergrads.append(student)
    for i in range(profile.grad_per_faculty * n_faculty):
        student = f"grad{i}.{dept}"
        builder.add(student, TYPE, _CLASSES["grad"])
        builder.add(student, "ub:memberOf", dept)
        if professors:
            advisor = professors[int(rng.integers(len(professors)))]
            builder.add(student, "ub:advisor", advisor)
        for course in pick_distinct(rng, courses, skewed_count(rng, 1, 3)):
            builder.add(student, "ub:takesCourse", course)
        if courses and rng.random() < 0.3:
            course = courses[int(rng.integers(len(courses)))]
            builder.add(student, "ub:teachingAssistantOf", course)
        grads.append(student)
    return undergrads + grads


def _add_publications(
    builder, rng, dept, faculty, students, profile, pub_counter
):
    grads = [s for s in students if s.startswith("grad")]
    for person, rank in faculty:
        if rank == "lecturer":
            continue
        n_pubs = skewed_count(
            rng, profile.publications_low, profile.publications_high
        )
        for _ in range(n_pubs):
            pub = f"pub{pub_counter}"
            pub_counter += 1
            builder.add(pub, TYPE, _CLASSES["publication"])
            builder.add(pub, "ub:publicationAuthor", person)
            # Grad-student co-authors create the advisor/author predicate
            # correlation LUBM queries exercise.
            for coauthor in pick_distinct(
                rng, grads, int(rng.integers(0, 3))
            ):
                builder.add(pub, "ub:publicationAuthor", coauthor)
    return pub_counter
