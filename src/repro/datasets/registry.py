"""Dataset registry: named access to the three evaluation graphs.

The experiments refer to datasets by name ("swdf", "lubm", "yago"); this
module centralises their construction, applies a common ``scale`` knob,
and memoises stores so a bench suite touching the same dataset from many
experiments only ever generates it once per process.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.datasets.lubm import generate_lubm
from repro.datasets.swdf import generate_swdf
from repro.datasets.yago import generate_yago
from repro.rdf.store import TripleStore

DATASET_NAMES = ("swdf", "lubm", "yago")

_cache: Dict[Tuple[str, float, int], TripleStore] = {}


def _build(name: str, scale: float, seed: int) -> TripleStore:
    if name == "swdf":
        return generate_swdf(
            conferences=max(2, int(12 * scale)),
            papers_per_conference=110,
            people_pool=max(50, int(900 * scale)),
            seed=seed,
        )
    if name == "lubm":
        return generate_lubm(universities=max(1, int(5 * scale)), seed=seed)
    if name == "yago":
        return generate_yago(
            num_triples=max(2_000, int(40_000 * scale)), seed=seed
        )
    raise KeyError(
        f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
    )


def load_dataset(
    name: str, scale: float = 1.0, seed: int = 0
) -> TripleStore:
    """Return the named dataset at the given scale (memoised).

    The returned store is shared; callers must not mutate it.  ``seed``
    offsets the generator seed so tests can request independent copies.
    """
    key = (name, scale, seed)
    store = _cache.get(key)
    if store is None:
        store = _build(name, scale, seed)
        _cache[key] = store
    return store


def clear_cache() -> None:
    """Drop memoised datasets (used by tests that measure generation)."""
    _cache.clear()


def dataset_builders() -> Dict[str, Callable[..., TripleStore]]:
    """The raw generator functions, for callers needing custom knobs."""
    return {
        "swdf": generate_swdf,
        "lubm": generate_lubm,
        "yago": generate_yago,
    }
