"""Dataset registry: named access to the three evaluation graphs.

The experiments refer to datasets by name ("swdf", "lubm", "yago"); this
module centralises their construction, applies a common ``scale`` knob,
and memoises stores so a bench suite touching the same dataset from many
experiments only ever generates it once per process.

Beyond the in-process memo, the registry keeps an optional **snapshot
cache** on disk: pass ``cache_dir`` (or set ``REPRO_SNAPSHOT_DIR``) and
each generated store is persisted as a columnar snapshot, so the next
process memory-maps it back instead of re-running the generator.  A
corrupted snapshot (truncation, checksum mismatch, version skew) is
rebuilt transparently.  The checksum pins the *snapshot's* integrity,
not the generators': when generator code changes in a way that alters
its output, bump :data:`GENERATOR_CACHE_VERSION` (part of every cache
key) so old snapshots stop matching.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.datasets.lubm import generate_lubm
from repro.datasets.snapshot_cache import (
    GENERATOR_CACHE_VERSION,
    cache_key,
    cached_store,
)
from repro.datasets.swdf import generate_swdf
from repro.datasets.yago import generate_yago
from repro.rdf.store import TripleStore

DATASET_NAMES = ("swdf", "lubm", "yago")

#: Environment variable naming the default on-disk snapshot cache.
SNAPSHOT_DIR_ENV = "REPRO_SNAPSHOT_DIR"

_cache: Dict[Tuple[str, float, int, Optional[str]], TripleStore] = {}


def _build(name: str, scale: float, seed: int) -> TripleStore:
    if name == "swdf":
        return generate_swdf(
            conferences=max(2, int(12 * scale)),
            papers_per_conference=110,
            people_pool=max(50, int(900 * scale)),
            seed=seed,
        )
    if name == "lubm":
        return generate_lubm(universities=max(1, int(5 * scale)), seed=seed)
    if name == "yago":
        return generate_yago(
            num_triples=max(2_000, int(40_000 * scale)), seed=seed
        )
    raise KeyError(
        f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
    )


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    cache_dir: Optional[Union[str, Path]] = None,
) -> TripleStore:
    """Return the named dataset at the given scale (memoised).

    The returned store is shared; callers must not mutate it.  ``seed``
    offsets the generator seed so tests can request independent copies.
    When *cache_dir* is given (or ``REPRO_SNAPSHOT_DIR`` is set), the
    store round-trips through an on-disk columnar snapshot: a cache hit
    memory-maps the permutations back without running the generator.
    """
    if cache_dir is None:
        cache_dir = os.environ.get(SNAPSHOT_DIR_ENV) or None
    # The resolved cache_dir is part of the memo key: a memo hit from an
    # uncached call must not swallow a later request to persist.
    key = (name, scale, seed, None if cache_dir is None else str(cache_dir))
    store = _cache.get(key)
    if store is None:
        if name not in DATASET_NAMES:
            raise KeyError(
                f"unknown dataset {name!r}; "
                f"available: {', '.join(DATASET_NAMES)}"
            )
        if cache_dir is not None:
            directory = Path(cache_dir) / cache_key(
                name,
                gen=GENERATOR_CACHE_VERSION,
                scale=scale,
                seed=seed,
            )
            store = cached_store(
                directory, lambda: _build(name, scale, seed)
            )
        else:
            store = _build(name, scale, seed)
        _cache[key] = store
    return store


def clear_cache() -> None:
    """Drop memoised datasets (used by tests that measure generation)."""
    _cache.clear()


def dataset_builders() -> Dict[str, Callable[..., TripleStore]]:
    """The raw generator functions, for callers needing custom knobs."""
    return {
        "swdf": generate_swdf,
        "lubm": generate_lubm,
        "yago": generate_yago,
    }
