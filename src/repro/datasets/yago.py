"""YAGO-like heterogeneous knowledge-graph generator.

YAGO (Suchanek et al., J. Web Semantics 2008) is the paper's stress-test
dataset: ~15M triples over ~12M entities and 91 predicates.  The single
property that drives every YAGO result in the paper is the *enormous
number of distinct term values relative to the triple count* (entity to
triple ratio ≈ 0.8): it blows up LMKG-U's per-term domains (the paper
drops LMKG-U for YAGO) and inflates CSET's summary.

The generator reproduces exactly that regime: a typed entity pool sized
at ``entity_ratio x num_triples``, 91 predicates with type-constrained
domains/ranges (person-person, person-place, person-work, ...), Zipfian
subject popularity, and a long tail of entities mentioned exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import GraphBuilder, ZipfSampler
from repro.rdf.store import TripleStore

TYPE = "rdf:type"

# Entity kinds with their share of the entity pool.
_KINDS = (
    ("person", 0.45),
    ("place", 0.20),
    ("work", 0.20),
    ("org", 0.10),
    ("event", 0.05),
)

# Relation templates: (name, subject kind, object kind, weight).  The 90
# non-type predicates are generated from these families; weights give the
# Zipfian predicate usage YAGO exhibits.
_RELATION_FAMILIES = (
    ("wasBornIn", "person", "place", 8.0),
    ("diedIn", "person", "place", 3.0),
    ("livesIn", "person", "place", 5.0),
    ("isCitizenOf", "person", "place", 4.0),
    ("created", "person", "work", 7.0),
    ("actedIn", "person", "work", 6.0),
    ("directed", "person", "work", 3.0),
    ("isMarriedTo", "person", "person", 2.0),
    ("hasChild", "person", "person", 2.0),
    ("influences", "person", "person", 1.5),
    ("worksAt", "person", "org", 4.0),
    ("isLeaderOf", "person", "org", 1.0),
    ("graduatedFrom", "person", "org", 3.0),
    ("isLocatedIn", "place", "place", 6.0),
    ("happenedIn", "event", "place", 2.0),
    ("participatedIn", "person", "event", 2.0),
    ("owns", "org", "work", 1.0),
    ("isAffiliatedTo", "org", "org", 1.0),
)


def predicate_vocabulary(total: int = 91) -> list:
    """The 91-predicate YAGO-like vocabulary: type + family variants."""
    predicates = [TYPE]
    idx = 0
    while len(predicates) < total:
        base, s_kind, o_kind, weight = _RELATION_FAMILIES[
            idx % len(_RELATION_FAMILIES)
        ]
        suffix = idx // len(_RELATION_FAMILIES)
        name = f"y:{base}" if suffix == 0 else f"y:{base}_{suffix}"
        predicates.append(name)
        idx += 1
    return predicates


def generate_yago(
    num_triples: int = 40_000,
    entity_ratio: float = 0.8,
    num_predicates: int = 91,
    seed: int = 23,
) -> TripleStore:
    """Generate a YAGO-like store with ``entity_ratio * num_triples``
    distinct entities (the many-unique-terms regime)."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder()

    pool_size = int(num_triples * entity_ratio)
    pools = {}
    offset = 0
    for kind, share in _KINDS:
        count = max(10, int(pool_size * share))
        pools[kind] = [f"{kind}{offset + i}" for i in range(count)]
        offset += count

    relations = []
    weights = []
    idx = 0
    for name in predicate_vocabulary(num_predicates)[1:]:
        base, s_kind, o_kind, weight = _RELATION_FAMILIES[
            idx % len(_RELATION_FAMILIES)
        ]
        # Later duplicates of a family are rarer, stretching the predicate
        # frequency tail like real YAGO.
        dilution = 1.0 + idx // len(_RELATION_FAMILIES)
        relations.append((name, s_kind, o_kind))
        weights.append(weight / dilution)
        idx += 1
    weights = np.asarray(weights)
    weights = weights / weights.sum()

    samplers = {
        kind: ZipfSampler(len(pool), 0.85, rng)
        for kind, pool in pools.items()
    }
    # Type triples for a typed subset: YAGO types are plentiful but not
    # universal at our scale; give the popular half of each pool a type.
    type_budget = num_triples // 8
    for kind, pool in pools.items():
        take = min(len(pool) // 2, max(1, int(type_budget * 0.2)))
        for entity in pool[:take]:
            builder.add(entity, TYPE, f"y:{kind.capitalize()}")

    while builder.num_triples < num_triples:
        rel_idx = int(rng.choice(len(relations), p=weights))
        name, s_kind, o_kind = relations[rel_idx]
        s_pool, o_pool = pools[s_kind], pools[o_kind]
        s = s_pool[samplers[s_kind].draw()]
        # Objects mix popular entities with the uniform long tail so many
        # entities occur exactly once.
        if rng.random() < 0.5:
            o = o_pool[samplers[o_kind].draw()]
        else:
            o = o_pool[int(rng.integers(len(o_pool)))]
        if s != o:
            builder.add(s, name, o)
    return builder.build()
