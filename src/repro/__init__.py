"""repro — a reproduction of LMKG (EDBT 2022): learned cardinality
estimation for knowledge graphs.

Public API highlights:

- :class:`repro.core.Estimator` — the unified estimation protocol
  (``estimate_batch(queries) -> np.ndarray`` with ``estimate``
  derived) every model and baseline implements,
- :class:`repro.core.LMKG` — the framework façade (both LMKG-S and
  LMKG-U behind grouping strategies and query decomposition), with
  whole-framework checkpointing (``save``/``load``),
- :mod:`repro.serve` — the micro-batched HTTP serving subsystem
  (``python -m repro serve``),
- :mod:`repro.rdf` — triple store, exact matcher, SPARQL-subset parser,
- :mod:`repro.datasets` — SWDF/LUBM/YAGO-like synthetic graphs,
- :mod:`repro.sampling` — training-data and workload generation,
- :mod:`repro.baselines` — CSET, SUMRDF, WanderJoin, JSUB, Impr, MSCN,
  and the Huang & Liu Bayesian-network baseline,
- :mod:`repro.optimizer` — join-order optimization over the estimates
  (plans, C_out, enumeration, executor, plan-quality analysis),
- :mod:`repro.nn` — the numpy neural-network substrate.

The paper's future-work items live in :mod:`repro.core` alongside the
models: :class:`~repro.core.compound.CompoundEstimator` (§VII-B),
:class:`~repro.core.monitor.AdaptiveLMKG` (§IV workload shift), and
:class:`~repro.core.ranges.LMKGSRange` (§IV range queries).
"""

from repro.core import (
    LMKG,
    LMKGS,
    LMKGU,
    Estimator,
    LMKGSConfig,
    LMKGUConfig,
    q_error,
    summarize,
)
from repro.datasets import load_dataset
from repro.rdf import (
    QueryPattern,
    TripleStore,
    Variable,
    chain_pattern,
    count_bgp,
    star_pattern,
)

__version__ = "1.1.0"

__all__ = [
    "Estimator",
    "LMKG",
    "LMKGS",
    "LMKGU",
    "LMKGSConfig",
    "LMKGUConfig",
    "q_error",
    "summarize",
    "load_dataset",
    "QueryPattern",
    "TripleStore",
    "Variable",
    "chain_pattern",
    "count_bgp",
    "star_pattern",
]
