"""Tree-pattern sampling: training data for the SG-Encoding's
beyond-star/chain capability (paper §V-A1 future work).

A tree instance of size k is a connected, acyclic set of k triples grown
from a random start node by repeatedly expanding a random frontier node
along a random incident edge (out- or in-edge), never revisiting a node.
Unbinding masks then turn instances into labelled tree queries, exactly
like the star/chain pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import PatternTerm, TriplePattern, Variable
from repro.rdf.treecount import count_tree, is_tree_query
from repro.sampling.workload import QueryRecord, Workload

#: A bound tree instance: list of (s, p, o) triples forming a tree.
TreeInstance = Tuple[Tuple[int, int, int], ...]


def sample_tree_instance(
    store: TripleStore, size: int, rng: np.random.Generator
) -> Optional[TreeInstance]:
    """Grow one tree of *size* triples; None when the walk starves."""
    nodes = store.nodes()
    start = nodes[int(rng.integers(len(nodes)))]
    visited = {start}
    triples: List[Tuple[int, int, int]] = []
    frontier = [start]
    attempts = 0
    while len(triples) < size and attempts < size * 20:
        attempts += 1
        node = frontier[int(rng.integers(len(frontier)))]
        backend = store.backend
        out_p, out_o = backend.out_slice(node)
        in_s, in_p = backend.in_slice(node)
        out_n = int(out_p.size)
        total = out_n + int(in_s.size)
        if total == 0:
            continue
        pick = int(rng.integers(total))
        if pick < out_n:
            p, o = int(out_p[pick]), int(out_o[pick])
            if o in visited:
                continue
            triples.append((node, p, o))
            visited.add(o)
            frontier.append(o)
        else:
            s, p = int(in_s[pick - out_n]), int(in_p[pick - out_n])
            if s in visited:
                continue
            triples.append((s, p, node))
            visited.add(s)
            frontier.append(s)
    if len(triples) < size:
        return None
    return tuple(triples)


def tree_query_from_instance(
    instance: TreeInstance, unbound_mask: Sequence[bool]
) -> QueryPattern:
    """Unbind nodes of a tree instance per *unbound_mask*.

    The mask indexes nodes in first-occurrence order over the instance's
    triples (the same order :meth:`QueryPattern.node_order` yields).
    """
    node_order: Dict[int, int] = {}
    for s, p, o in instance:
        node_order.setdefault(s, len(node_order))
        node_order.setdefault(o, len(node_order))
    if len(unbound_mask) != len(node_order):
        raise ValueError(
            f"mask needs {len(node_order)} flags, got {len(unbound_mask)}"
        )

    def resolve(node: int) -> PatternTerm:
        idx = node_order[node]
        return Variable(f"n{idx}") if unbound_mask[idx] else node

    return QueryPattern(
        [TriplePattern(resolve(s), p, resolve(o)) for s, p, o in instance]
    )


def generate_tree_workload(
    store: TripleStore,
    size: int,
    num_queries: int,
    seed: int = 0,
    min_unbound: int = 1,
) -> Workload:
    """Sampled, unbound, deduplicated, exactly-labelled tree queries.

    Pure star/chain draws (a tree can degenerate into either) are kept —
    they are legitimate tree queries — but the workload is dominated by
    genuinely branching shapes.
    """
    from repro.rdf.fastcount import count_query
    from repro.sampling.unbinding import random_unbound_mask

    rng = np.random.default_rng(seed + 3)
    seen = set()
    records: List[QueryRecord] = []
    attempts = 0
    budget = num_queries * 30
    while len(records) < num_queries and attempts < budget:
        attempts += 1
        instance = sample_tree_instance(store, size, rng)
        if instance is None:
            continue
        num_nodes = len(
            {n for s, _, o in instance for n in (s, o)}
        )
        mask = random_unbound_mask(num_nodes, rng, min_unbound)
        query = tree_query_from_instance(instance, mask)
        key = query.canonical_key()
        if key in seen:
            continue
        seen.add(key)
        cardinality = count_tree(store, query)
        if cardinality is None:
            cardinality = count_query(store, query)
        if cardinality < 1:
            raise AssertionError(
                f"sampled tree query with zero cardinality: {query}"
            )
        records.append(QueryRecord(query, "tree", size, cardinality))
    return Workload("tree", size, records)
