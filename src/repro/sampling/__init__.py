"""Training-data and workload sampling (paper §VII-A and §VIII).

Uniform and biased random-walk instance samplers over star/chain shapes,
variable unbinding, and bucketed workload generation.
"""

from repro.sampling.random_walk import (
    ChainSampler,
    Instance,
    StarSampler,
    biased_rw_chain,
    biased_rw_star,
    chain_walk_counts,
    count_chain_instances,
    count_star_instances,
    sample_instances,
)
from repro.sampling.unbinding import (
    chain_query_from_instance,
    enumerate_masks,
    query_from_instance,
    random_unbound_mask,
    star_query_from_instance,
)
from repro.sampling.io import (
    WorkloadFormatError,
    load_workload,
    parse_pattern,
    render_pattern,
    save_workload,
)
from repro.sampling.strategies import (
    DegreeWeightedRW,
    ExactUniformStrategy,
    ForestFireStrategy,
    InstanceStrategy,
    SampleQuality,
    SnowballStrategy,
    UniformStartRW,
    make_strategy,
    sample_quality,
    strategy_names,
)
from repro.sampling.trees import (
    generate_tree_workload,
    sample_tree_instance,
    tree_query_from_instance,
)
from repro.sampling.workload import (
    NUM_BUCKETS,
    QueryRecord,
    Workload,
    bucket_label,
    bucket_of,
    generate_test_queries,
    generate_workload,
    merge_workloads,
)

__all__ = [
    "ChainSampler",
    "Instance",
    "StarSampler",
    "biased_rw_chain",
    "biased_rw_star",
    "chain_walk_counts",
    "count_chain_instances",
    "count_star_instances",
    "sample_instances",
    "chain_query_from_instance",
    "enumerate_masks",
    "query_from_instance",
    "random_unbound_mask",
    "star_query_from_instance",
    "DegreeWeightedRW",
    "ExactUniformStrategy",
    "ForestFireStrategy",
    "InstanceStrategy",
    "SampleQuality",
    "SnowballStrategy",
    "UniformStartRW",
    "make_strategy",
    "sample_quality",
    "strategy_names",
    "WorkloadFormatError",
    "load_workload",
    "parse_pattern",
    "render_pattern",
    "save_workload",
    "generate_tree_workload",
    "sample_tree_instance",
    "tree_query_from_instance",
    "NUM_BUCKETS",
    "QueryRecord",
    "Workload",
    "bucket_label",
    "bucket_of",
    "generate_test_queries",
    "generate_workload",
    "merge_workloads",
]
