"""Pattern-instance sampling: the training-data generators of §VII-A.

LMKG-U learns a distribution over the *bound* graph-pattern instances of a
given shape; at estimation time the cardinality of a query is
``N_shape * P(bound terms)`` where ``N_shape`` is the number of shape
instances in the graph.  This module provides, for the two supported
shapes:

- exact universe counts (``count_star_instances`` /
  ``count_chain_instances``),
- **exact uniform** instance samplers — subjects drawn proportional to
  ``outdeg^k`` for stars, walks drawn via the walk-count dynamic program
  for chains — giving unbiased training data,
- the paper's **biased random-walk** samplers (uniform start node, uniform
  steps), kept for the sampling-quality ablation: the paper attributes
  LMKG-U's residual error largely to RW sample quality.

All samplers draw against the columnar store
(:mod:`repro.rdf.columnar`): a walk step indexes a contiguous SPO
adjacency slice with a vectorized RNG draw, and ``sample_many`` produces
whole batches step-synchronously — per-level edge-weight prefix sums
turn each weighted step for *every* walk at once into one
``np.searchsorted``.  No Python adjacency lists are rebuilt.

A star instance of size k is the ordered tuple ``(s, p1, o1, ..., pk, ok)``
with k out-edges of the same subject, repetition allowed — exactly the
universe whose counting measure matches SPARQL bag semantics for star
queries with distinct object variables.  A chain instance is a directed
walk ``(n1, p1, n2, ..., pk, nk+1)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rdf.columnar import ColumnarIndex
from repro.rdf.store import TripleStore

#: A flattened bound instance: [n1, p1, n2, ...] term ids.
Instance = Tuple[int, ...]


def count_star_instances(store: TripleStore, size: int) -> int:
    """Number of ordered star instances of *size* = sum_s outdeg(s)^size.

    Computed over the columnar degree vector with Python-int powers, so
    the result is exact even when it exceeds int64 (hub-heavy graphs at
    large sizes do).
    """
    if size < 1:
        raise ValueError("star size must be >= 1")
    _, degrees = store.columnar.subject_degrees()
    return sum(d ** size for d in degrees.tolist())


def chain_walk_counts(
    store: TripleStore, size: int
) -> List[Dict[int, int]]:
    """DP tables g_i: node -> number of walks of length i starting there.

    ``g_0(v) = 1``; ``g_i(v) = sum over out-edges (p, o) of g_{i-1}(o)``.
    Returns ``[g_0, g_1, ..., g_size]``.  Exact (arbitrary-precision
    Python ints); the samplers use the float64 array variant
    :func:`_chain_walk_arrays` internally.
    """
    if size < 1:
        raise ValueError("chain size must be >= 1")
    col = store.columnar
    nodes = col.nodes().tolist()
    src = col.spo_s.tolist()
    dst = col.spo_o.tolist()
    tables: List[Dict[int, int]] = [{v: 1 for v in nodes}]
    for _ in range(size):
        prev = tables[-1]
        current: Dict[int, int] = {}
        for s, o in zip(src, dst):
            ways = prev.get(o, 0)
            if ways:
                current[s] = current.get(s, 0) + ways
        tables.append(current)
    return tables


def count_chain_instances(store: TripleStore, size: int) -> int:
    """Number of directed walks with *size* edges (exact)."""
    if size < 1:
        raise ValueError("chain size must be >= 1")
    arrays = _chain_walk_arrays(store.columnar, size)
    return _exact_chain_universe(store, size, arrays)


def _exact_chain_universe(
    store: TripleStore,
    size: int,
    arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, List[np.ndarray]],
) -> int:
    """Exact walk count from precomputed DP arrays.

    Every intermediate level must fit comfortably in int64 before the
    integer DP can be trusted: int64 additions wrap silently, and a hub
    level can overflow even when the final total is small.  The float
    levels are monotone (no wrap-around), so they are a safe guard.
    """
    nodes, src_idx, dst_idx, levels = arrays
    safe = float(2 ** 62)
    if all(
        float(level.max(initial=0.0)) < safe for level in levels
    ) and float(levels[size].sum()) < safe:
        # The float DP is exact below 2^53 per entry; redo the reduction
        # in int64 to return an exact integer (no rounding at this size).
        g = np.ones(nodes.size, dtype=np.int64)
        for _ in range(size):
            nxt = np.zeros(g.size, dtype=np.int64)
            np.add.at(nxt, src_idx, g[dst_idx])
            g = nxt
        return int(g.sum())
    # Potentially beyond int64: fall back to the exact Python DP.
    return sum(chain_walk_counts(store, size)[size].values())


def _chain_walk_arrays(
    col: ColumnarIndex, size: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[np.ndarray]]:
    """Float64 walk-count DP over the compacted node space.

    Returns ``(nodes, src_idx, dst_idx, [g_0 .. g_size])`` where the
    edge arrays index into *nodes* for every SPO-ordered edge.
    """
    nodes = col.nodes()
    src_idx = np.searchsorted(nodes, col.spo_s)
    dst_idx = np.searchsorted(nodes, col.spo_o)
    levels = [np.ones(nodes.size, dtype=np.float64)]
    for _ in range(size):
        levels.append(
            np.bincount(
                src_idx,
                weights=levels[-1][dst_idx],
                minlength=nodes.size,
            )
        )
    return nodes, src_idx, dst_idx, levels


class StarSampler:
    """Uniform sampler over ordered star instances of one size."""

    def __init__(
        self, store: TripleStore, size: int, seed: int = 0
    ) -> None:
        self.store = store
        self.size = size
        self._rng = np.random.default_rng(seed)
        col = store.columnar
        self._col = col
        subjects, degrees = col.subject_degrees()
        weights = degrees.astype(np.float64) ** size
        total = weights.sum()
        if total == 0:
            raise ValueError("store has no out-edges to sample stars from")
        self._subjects = subjects
        self._degrees = degrees
        self._starts = np.searchsorted(col.spo_s, subjects)
        self._probs = weights / total
        self.universe = count_star_instances(store, size)

    def sample(self) -> Instance:
        """One uniform ordered star instance (s, p1, o1, ..., pk, ok)."""
        return self.sample_many(1)[0]

    def sample_many(self, count: int) -> List[Instance]:
        """A batch of uniform star instances, drawn fully vectorized."""
        if count <= 0:
            return []
        rng = self._rng
        sidx = rng.choice(self._subjects.size, size=count, p=self._probs)
        # k uniform edge picks per star from each subject's SPO slice.
        offsets = rng.integers(
            0, self._degrees[sidx][:, None], size=(count, self.size)
        )
        eidx = self._starts[sidx][:, None] + offsets
        flat = np.empty((count, 2 * self.size + 1), dtype=np.int64)
        flat[:, 0] = self._subjects[sidx]
        flat[:, 1::2] = self._col.spo_p[eidx]
        flat[:, 2::2] = self._col.spo_o[eidx]
        return [tuple(row) for row in flat.tolist()]


class ChainSampler:
    """Uniform sampler over directed walks of one length."""

    #: float64 loses integer resolution past 2^53; the global prefix
    #: sums additionally need headroom against absorption (an edge
    #: weight below the ulp of the running total would vanish), so the
    #: vectorized path is used only while counts stay below 2^52.
    _FLOAT_EXACT = float(2 ** 52)

    def __init__(
        self, store: TripleStore, size: int, seed: int = 0
    ) -> None:
        self.store = store
        self.size = size
        self._rng = np.random.default_rng(seed)
        col = store.columnar
        self._col = col
        arrays = _chain_walk_arrays(col, size)
        nodes, _, dst_idx, levels = arrays
        start_weights = levels[size]
        total = start_weights.sum()
        if total == 0:
            raise ValueError(f"no walks of length {size} exist")
        self.universe = _exact_chain_universe(store, size, arrays)
        self._exact_tables: Optional[List[Dict[int, int]]] = None
        # Absorption is governed by the *running totals* of the global
        # prefix sums (an edge weight below the ulp of the total would
        # get a zero-width interval), so guard on those, not on
        # individual level entries.
        if float(total) > self._FLOAT_EXACT or any(
            float(levels[rem - 1][dst_idx].sum()) > self._FLOAT_EXACT
            for rem in range(1, size + 1)
        ):
            # Walk counts beyond float64 integer resolution: the global
            # prefix sums would quantize low-weight edges to zero-width
            # intervals.  Sample per node from the exact Python tables
            # instead (full relative precision within each fan-out).
            self._exact_tables = chain_walk_counts(store, size)
            starts = sorted(self._exact_tables[size].keys())
            weights = np.array(
                [float(self._exact_tables[size][v]) for v in starts]
            )
            self._exact_starts = starts
            self._exact_start_cdf = np.cumsum(weights / weights.sum())
            return
        self._nodes = nodes
        self._dst_idx = dst_idx
        self._start_probs = start_weights / total
        # Per-node bounds into the SPO edge arrays.
        self._lo = np.searchsorted(col.spo_s, nodes, side="left")
        self._hi = np.searchsorted(col.spo_s, nodes, side="right")
        # One exclusive prefix sum of edge weights per remaining-length
        # level: a weighted step for a whole batch of walks is then a
        # single searchsorted against the level's prefix array.
        self._prefix = {
            rem: np.concatenate(
                ([0.0], np.cumsum(levels[rem - 1][dst_idx]))
            )
            for rem in range(1, size + 1)
        }

    def sample(self) -> Instance:
        """One uniform walk (n1, p1, n2, ..., pk, nk+1)."""
        return self.sample_many(1)[0]

    def _sample_one_exact(self) -> Instance:
        """Per-node weighted walk from the exact DP tables."""
        rng = self._rng
        tables = self._exact_tables
        assert tables is not None
        node = self._exact_starts[
            int(np.searchsorted(self._exact_start_cdf, rng.random()))
        ]
        flat: List[int] = [node]
        backend = self.store.backend
        for remaining in range(self.size, 0, -1):
            table = tables[remaining - 1]
            preds, objs = backend.out_slice(node)
            weights = np.array(
                [float(table.get(o, 0)) for o in objs.tolist()]
            )
            cdf = np.cumsum(weights / weights.sum())
            pick = int(np.searchsorted(cdf, rng.random()))
            node = int(objs[pick])
            flat.extend((int(preds[pick]), node))
        return tuple(flat)

    def sample_many(self, count: int) -> List[Instance]:
        """A batch of uniform walks, drawn step-synchronously."""
        if count <= 0:
            return []
        if self._exact_tables is not None:
            return [self._sample_one_exact() for _ in range(count)]
        rng = self._rng
        col = self._col
        cur = rng.choice(
            self._nodes.size, size=count, p=self._start_probs
        )
        flat = np.empty((count, 2 * self.size + 1), dtype=np.int64)
        flat[:, 0] = self._nodes[cur]
        for step, rem in enumerate(range(self.size, 0, -1)):
            prefix = self._prefix[rem]
            lo, hi = self._lo[cur], self._hi[cur]
            base = prefix[lo]
            # cur was drawn from g_rem > 0, so every walk has positive
            # continuation mass and the draw lands inside [lo, hi).
            targets = base + rng.random(count) * (prefix[hi] - base)
            eidx = np.searchsorted(prefix, targets, side="right") - 1
            eidx = np.clip(eidx, lo, hi - 1)
            flat[:, 1 + 2 * step] = col.spo_p[eidx]
            flat[:, 2 + 2 * step] = col.spo_o[eidx]
            cur = self._dst_idx[eidx]
        return [tuple(row) for row in flat.tolist()]


def biased_rw_star(
    store: TripleStore, size: int, rng: np.random.Generator
) -> Optional[Instance]:
    """The paper's RW star sampler: uniform start, uniform edge steps.

    Biased toward low-degree subjects relative to the true instance
    distribution; kept for the sampling-quality ablation.  Returns None
    when the start node has no out-edges.
    """
    col = store.columnar
    nodes = col.nodes()
    s = int(nodes[rng.integers(nodes.size)])
    lo, hi = col.s_range(s)
    if hi == lo:
        return None
    eidx = lo + rng.integers(0, hi - lo, size=size)
    flat: List[int] = [s]
    for p, o in zip(col.spo_p[eidx].tolist(), col.spo_o[eidx].tolist()):
        flat.extend((p, o))
    return tuple(flat)


def biased_rw_chain(
    store: TripleStore, size: int, rng: np.random.Generator
) -> Optional[Instance]:
    """The paper's RW chain sampler; None when the walk dead-ends."""
    col = store.columnar
    nodes = col.nodes()
    node = int(nodes[rng.integers(nodes.size)])
    flat: List[int] = [node]
    for _ in range(size):
        lo, hi = col.s_range(node)
        if hi == lo:
            return None
        eidx = lo + int(rng.integers(hi - lo))
        p, o = int(col.spo_p[eidx]), int(col.spo_o[eidx])
        flat.extend((p, o))
        node = o
    return tuple(flat)


def _biased_rw_batch(
    store: TripleStore,
    topology: str,
    size: int,
    count: int,
    rng: np.random.Generator,
) -> List[Instance]:
    """One vectorized batch of the paper's biased RW draws.

    Dead-ended walks are dropped (the caller retries), matching the
    per-draw ``None`` of the scalar samplers.
    """
    col = store.columnar
    nodes = col.nodes()
    if nodes.size == 0 or count <= 0:
        return []
    start = nodes[rng.integers(nodes.size, size=count)]
    flat = np.empty((count, 2 * size + 1), dtype=np.int64)
    flat[:, 0] = start
    if topology == "star":
        # All k edges leave the start subject; a start without
        # out-edges is the only dead case.
        lo = np.searchsorted(col.spo_s, start, side="left")
        hi = np.searchsorted(col.spo_s, start, side="right")
        deg = hi - lo
        alive = deg > 0
        offsets = rng.integers(
            0, np.maximum(deg, 1)[:, None], size=(count, size)
        )
        eidx = np.minimum(
            lo[:, None] + offsets, max(col.spo_s.size - 1, 0)
        )
        flat[:, 1::2] = col.spo_p[eidx]
        flat[:, 2::2] = col.spo_o[eidx]
        return [tuple(row) for row in flat[alive].tolist()]
    alive = np.ones(count, dtype=bool)
    cur = start
    for step in range(size):
        lo = np.searchsorted(col.spo_s, cur, side="left")
        hi = np.searchsorted(col.spo_s, cur, side="right")
        deg = hi - lo
        alive &= deg > 0
        # Draw an offset even for dead walks (against a floor of 1) to
        # keep the batch rectangular; dead rows are filtered at the end,
        # so their clipped indices only need to stay in bounds.
        eidx = np.minimum(
            lo + rng.integers(0, np.maximum(deg, 1)),
            max(col.spo_s.size - 1, 0),
        )
        flat[:, 1 + 2 * step] = col.spo_p[eidx]
        flat[:, 2 + 2 * step] = col.spo_o[eidx]
        cur = col.spo_o[eidx]
    return [tuple(row) for row in flat[alive].tolist()]


def sample_instances(
    store: TripleStore,
    topology: str,
    size: int,
    count: int,
    seed: int = 0,
    method: str = "exact",
) -> Tuple[List[Instance], int]:
    """Sample *count* bound instances; returns (instances, universe size).

    ``method='exact'`` uses the unbiased samplers; ``method='rw'`` uses the
    paper's biased random walks (universe size is still exact).  Any
    other name resolves through the strategy registry of
    :mod:`repro.sampling.strategies` (``degree_rw``, ``forest_fire``,
    ``snowball``).
    """
    if topology == "star":
        sampler = StarSampler(store, size, seed=seed)
    elif topology == "chain":
        sampler = ChainSampler(store, size, seed=seed)
    else:
        raise ValueError(f"unknown topology {topology!r}")
    if method == "exact":
        return sampler.sample_many(count), sampler.universe
    if method == "rw":
        rng = np.random.default_rng(seed)
        instances: List[Instance] = []
        attempts = 0
        while len(instances) < count and attempts < count * 50:
            batch = min(count - len(instances), count)
            instances.extend(
                _biased_rw_batch(store, topology, size, batch, rng)
            )
            attempts += batch
        return instances[:count], sampler.universe
    from repro.sampling.strategies import make_strategy

    strategy = make_strategy(method, store, topology, size, seed=seed)
    return strategy.sample_many(count), sampler.universe
