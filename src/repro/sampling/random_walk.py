"""Pattern-instance sampling: the training-data generators of §VII-A.

LMKG-U learns a distribution over the *bound* graph-pattern instances of a
given shape; at estimation time the cardinality of a query is
``N_shape * P(bound terms)`` where ``N_shape`` is the number of shape
instances in the graph.  This module provides, for the two supported
shapes:

- exact universe counts (``count_star_instances`` /
  ``count_chain_instances``),
- **exact uniform** instance samplers — subjects drawn proportional to
  ``outdeg^k`` for stars, walks drawn via the walk-count dynamic program
  for chains — giving unbiased training data,
- the paper's **biased random-walk** samplers (uniform start node, uniform
  steps), kept for the sampling-quality ablation: the paper attributes
  LMKG-U's residual error largely to RW sample quality.

A star instance of size k is the ordered tuple ``(s, p1, o1, ..., pk, ok)``
with k out-edges of the same subject, repetition allowed — exactly the
universe whose counting measure matches SPARQL bag semantics for star
queries with distinct object variables.  A chain instance is a directed
walk ``(n1, p1, n2, ..., pk, nk+1)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rdf.store import TripleStore

#: A flattened bound instance: [n1, p1, n2, ...] term ids.
Instance = Tuple[int, ...]


def count_star_instances(store: TripleStore, size: int) -> int:
    """Number of ordered star instances of *size* = sum_s outdeg(s)^size."""
    if size < 1:
        raise ValueError("star size must be >= 1")
    return sum(
        store.out_degree(s) ** size for s in store.subjects()
    )


def chain_walk_counts(
    store: TripleStore, size: int
) -> List[Dict[int, int]]:
    """DP tables g_i: node -> number of walks of length i starting there.

    ``g_0(v) = 1``; ``g_i(v) = sum over out-edges (p, o) of g_{i-1}(o)``.
    Returns ``[g_0, g_1, ..., g_size]``.
    """
    if size < 1:
        raise ValueError("chain size must be >= 1")
    nodes = store.nodes()
    tables: List[Dict[int, int]] = [{v: 1 for v in nodes}]
    for _ in range(size):
        prev = tables[-1]
        current: Dict[int, int] = {}
        for v in nodes:
            total = 0
            for _, o in store.out_edges(v):
                total += prev.get(o, 0)
            if total:
                current[v] = total
        tables.append(current)
    return tables


def count_chain_instances(store: TripleStore, size: int) -> int:
    """Number of directed walks with *size* edges."""
    return sum(chain_walk_counts(store, size)[size].values())


class StarSampler:
    """Uniform sampler over ordered star instances of one size."""

    def __init__(
        self, store: TripleStore, size: int, seed: int = 0
    ) -> None:
        self.store = store
        self.size = size
        self._rng = np.random.default_rng(seed)
        subjects = [
            s for s in store.subjects() if store.out_degree(s) > 0
        ]
        weights = np.array(
            [float(store.out_degree(s)) ** size for s in subjects]
        )
        total = weights.sum()
        if total == 0:
            raise ValueError("store has no out-edges to sample stars from")
        self._subjects = subjects
        self._cdf = np.cumsum(weights / total)
        self.universe = count_star_instances(store, size)

    def sample(self) -> Instance:
        """One uniform ordered star instance (s, p1, o1, ..., pk, ok)."""
        s = self._subjects[
            int(np.searchsorted(self._cdf, self._rng.random()))
        ]
        edges = self.store.out_edges(s)
        flat: List[int] = [s]
        for _ in range(self.size):
            p, o = edges[int(self._rng.integers(len(edges)))]
            flat.extend((p, o))
        return tuple(flat)

    def sample_many(self, count: int) -> List[Instance]:
        return [self.sample() for _ in range(count)]


class ChainSampler:
    """Uniform sampler over directed walks of one length."""

    def __init__(
        self, store: TripleStore, size: int, seed: int = 0
    ) -> None:
        self.store = store
        self.size = size
        self._rng = np.random.default_rng(seed)
        self._tables = chain_walk_counts(store, size)
        starts = sorted(self._tables[size].keys())
        weights = np.array(
            [float(self._tables[size][v]) for v in starts]
        )
        total = weights.sum()
        if total == 0:
            raise ValueError(f"no walks of length {size} exist")
        self._starts = starts
        self._cdf = np.cumsum(weights / total)
        self.universe = int(total)

    def sample(self) -> Instance:
        """One uniform walk (n1, p1, n2, ..., pk, nk+1)."""
        node = self._starts[
            int(np.searchsorted(self._cdf, self._rng.random()))
        ]
        flat: List[int] = [node]
        for remaining in range(self.size, 0, -1):
            table = self._tables[remaining - 1]
            edges = self.store.out_edges(node)
            weights = np.array(
                [float(table.get(o, 0)) for _, o in edges]
            )
            total = weights.sum()
            # total > 0 is guaranteed: node was drawn from g_remaining.
            idx = int(
                np.searchsorted(
                    np.cumsum(weights / total), self._rng.random()
                )
            )
            p, o = edges[idx]
            flat.extend((p, o))
            node = o
        return tuple(flat)

    def sample_many(self, count: int) -> List[Instance]:
        return [self.sample() for _ in range(count)]


def biased_rw_star(
    store: TripleStore, size: int, rng: np.random.Generator
) -> Optional[Instance]:
    """The paper's RW star sampler: uniform start, uniform edge steps.

    Biased toward low-degree subjects relative to the true instance
    distribution; kept for the sampling-quality ablation.  Returns None
    when the start node has no out-edges.
    """
    nodes = store.nodes()
    s = nodes[int(rng.integers(len(nodes)))]
    edges = store.out_edges(s)
    if not edges:
        return None
    flat: List[int] = [s]
    for _ in range(size):
        p, o = edges[int(rng.integers(len(edges)))]
        flat.extend((p, o))
    return tuple(flat)


def biased_rw_chain(
    store: TripleStore, size: int, rng: np.random.Generator
) -> Optional[Instance]:
    """The paper's RW chain sampler; None when the walk dead-ends."""
    nodes = store.nodes()
    node = nodes[int(rng.integers(len(nodes)))]
    flat: List[int] = [node]
    for _ in range(size):
        edges = store.out_edges(node)
        if not edges:
            return None
        p, o = edges[int(rng.integers(len(edges)))]
        flat.extend((p, o))
        node = o
    return tuple(flat)


def sample_instances(
    store: TripleStore,
    topology: str,
    size: int,
    count: int,
    seed: int = 0,
    method: str = "exact",
) -> Tuple[List[Instance], int]:
    """Sample *count* bound instances; returns (instances, universe size).

    ``method='exact'`` uses the unbiased samplers; ``method='rw'`` uses the
    paper's biased random walks (universe size is still exact).  Any
    other name resolves through the strategy registry of
    :mod:`repro.sampling.strategies` (``degree_rw``, ``forest_fire``,
    ``snowball``).
    """
    if topology == "star":
        sampler = StarSampler(store, size, seed=seed)
    elif topology == "chain":
        sampler = ChainSampler(store, size, seed=seed)
    else:
        raise ValueError(f"unknown topology {topology!r}")
    if method == "exact":
        return sampler.sample_many(count), sampler.universe
    if method == "rw":
        rng = np.random.default_rng(seed)
        draw = biased_rw_star if topology == "star" else biased_rw_chain
        instances: List[Instance] = []
        attempts = 0
        while len(instances) < count and attempts < count * 50:
            inst = draw(store, size, rng)
            attempts += 1
            if inst is not None:
                instances.append(inst)
        return instances, sampler.universe
    from repro.sampling.strategies import make_strategy

    strategy = make_strategy(method, store, topology, size, seed=seed)
    return strategy.sample_many(count), sampler.universe
