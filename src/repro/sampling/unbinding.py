"""Turning bound instances into query patterns with unbound variables.

The supervised model trains on *queries* — patterns with variables — and
their cardinalities (§IV: "the training data consists of different graph
patterns ... the graph patterns can include unbound variables").  This
module derives such queries from bound instances by replacing node terms
with fresh variables.

Predicates stay bound by default, matching the paper's evaluation setup
("we limit the graph patterns to include only bounded predicates").
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.rdf.pattern import QueryPattern, chain_pattern, star_pattern
from repro.rdf.terms import PatternTerm, Variable

from repro.sampling.random_walk import Instance


def star_query_from_instance(
    instance: Instance, unbound_mask: Sequence[bool]
) -> QueryPattern:
    """Build a star query from ``(s, p1, o1, ..., pk, ok)``.

    *unbound_mask* has one flag per node position: index 0 is the centre
    subject, index i >= 1 the i-th object.  True replaces the node with a
    variable.
    """
    size = (len(instance) - 1) // 2
    if len(unbound_mask) != size + 1:
        raise ValueError(
            f"mask needs {size + 1} flags, got {len(unbound_mask)}"
        )
    centre: PatternTerm = (
        Variable("s") if unbound_mask[0] else instance[0]
    )
    pairs: List[Tuple[PatternTerm, PatternTerm]] = []
    for i in range(size):
        p = instance[1 + 2 * i]
        o = instance[2 + 2 * i]
        obj: PatternTerm = Variable(f"o{i}") if unbound_mask[i + 1] else o
        pairs.append((p, obj))
    return star_pattern(centre, pairs)


def chain_query_from_instance(
    instance: Instance, unbound_mask: Sequence[bool]
) -> QueryPattern:
    """Build a chain query from ``(n1, p1, n2, ..., pk, nk+1)``.

    *unbound_mask* has one flag per node along the walk.
    """
    size = (len(instance) - 1) // 2
    if len(unbound_mask) != size + 1:
        raise ValueError(
            f"mask needs {size + 1} flags, got {len(unbound_mask)}"
        )
    terms: List[PatternTerm] = []
    node_idx = 0
    for i, value in enumerate(instance):
        if i % 2 == 0:
            if unbound_mask[node_idx]:
                terms.append(Variable(f"n{node_idx}"))
            else:
                terms.append(value)
            node_idx += 1
        else:
            terms.append(value)
    return chain_pattern(terms)


def query_from_instance(
    topology: str, instance: Instance, unbound_mask: Sequence[bool]
) -> QueryPattern:
    """Dispatch on topology."""
    if topology == "star":
        return star_query_from_instance(instance, unbound_mask)
    if topology == "chain":
        return chain_query_from_instance(instance, unbound_mask)
    raise ValueError(f"unknown topology {topology!r}")


def random_unbound_mask(
    num_nodes: int, rng: np.random.Generator, min_unbound: int = 1
) -> List[bool]:
    """A random node mask with at least *min_unbound* variables.

    The number of unbound nodes is uniform in [min_unbound, num_nodes],
    covering the full spectrum from almost-bound to fully-variable
    queries, so the supervised model sees representative inputs.
    """
    if not 0 <= min_unbound <= num_nodes:
        raise ValueError("min_unbound out of range")
    count = int(rng.integers(min_unbound, num_nodes + 1))
    mask = [False] * num_nodes
    for idx in rng.choice(num_nodes, size=count, replace=False):
        mask[int(idx)] = True
    return mask


def enumerate_masks(num_nodes: int, min_unbound: int = 1) -> List[List[bool]]:
    """All node masks with at least *min_unbound* variables.

    Only practical for small patterns (2^num_nodes masks); used by tests
    and by exhaustive training-data generation for size-2 queries.
    """
    masks = []
    for bits in range(2 ** num_nodes):
        mask = [(bits >> i) & 1 == 1 for i in range(num_nodes)]
        if sum(mask) >= min_unbound:
            masks.append(mask)
    return masks
