"""Graph-sampling strategies for training-data creation (§VII-A ablation).

The paper settles on random-walk sampling citing Leskovec & Faloutsos
(KDD 2006) — RW is "biased towards highly connected nodes" and best
preserves the scaled-down property — and names sample quality as the
main cause of inaccurate estimates.  This module makes that design
choice testable by implementing the alternatives the KDD paper compares
plus quality metrics:

- :class:`ExactUniformStrategy` — the unbiased instance sampler (the
  repository's default; an oracle the heuristics are judged against).
- :class:`UniformStartRW` — the paper's RW: uniform start node, uniform
  steps (undersamples high-degree hubs relative to the instance
  universe).
- :class:`DegreeWeightedRW` — start node drawn proportional to
  out-degree, the "biased towards highly connected nodes" variant.
- :class:`ForestFireStrategy` — burn a subgraph per forest-fire
  sampling, then sample instances uniformly *within* the subgraph.
- :class:`SnowballStrategy` — BFS ball around random seeds, instances
  drawn within.

:func:`sample_quality` scores any strategy's output by how well it
preserves two scaled-down statistics that drive estimator accuracy: the
predicate distribution (total-variation distance) and the subject
out-degree distribution (two-sample Kolmogorov–Smirnov statistic).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import stats

from repro.rdf.store import TripleStore
from repro.sampling.random_walk import (
    ChainSampler,
    Instance,
    StarSampler,
    biased_rw_chain,
    biased_rw_star,
    chain_walk_counts,
)


class InstanceStrategy:
    """Base class: every strategy yields bound instances of one shape."""

    #: identifier used in ablation tables
    name: str = "abstract"

    def __init__(
        self,
        store: TripleStore,
        topology: str,
        size: int,
        seed: int = 0,
    ) -> None:
        if topology not in ("star", "chain"):
            raise ValueError(f"unsupported topology {topology!r}")
        self.store = store
        self.topology = topology
        self.size = size
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def sample_many(self, count: int) -> List[Instance]:
        """Draw *count* bound instances (best effort for heuristics)."""
        raise NotImplementedError


class ExactUniformStrategy(InstanceStrategy):
    """Unbiased sampling from the true instance universe."""

    name = "exact"

    def __init__(self, store, topology, size, seed=0):
        super().__init__(store, topology, size, seed)
        sampler_cls = StarSampler if topology == "star" else ChainSampler
        self._sampler = sampler_cls(store, size, seed=seed)

    def sample_many(self, count: int) -> List[Instance]:
        return self._sampler.sample_many(count)


class UniformStartRW(InstanceStrategy):
    """The paper's §VII-A sampler: uniform start node, uniform steps."""

    name = "rw"

    def sample_many(self, count: int) -> List[Instance]:
        draw = biased_rw_star if self.topology == "star" else biased_rw_chain
        instances: List[Instance] = []
        attempts = 0
        while len(instances) < count and attempts < count * 50:
            inst = draw(self.store, self.size, self._rng)
            attempts += 1
            if inst is not None:
                instances.append(inst)
        return instances


class DegreeWeightedRW(InstanceStrategy):
    """RW whose start node is drawn proportional to out-degree.

    The Leskovec & Faloutsos bias "towards highly connected nodes" made
    explicit; for star instances the residual bias against hubs shrinks
    from ``deg^k`` to ``deg^(k-1)``.
    """

    name = "degree_rw"

    def __init__(self, store, topology, size, seed=0):
        super().__init__(store, topology, size, seed)
        starts = [s for s in store.subjects() if store.out_degree(s) > 0]
        if not starts:
            raise ValueError("store has no out-edges to start walks from")
        weights = np.array(
            [float(store.out_degree(s)) for s in starts]
        )
        self._starts = starts
        self._cdf = np.cumsum(weights / weights.sum())

    def _start(self) -> int:
        return self._starts[
            int(np.searchsorted(self._cdf, self._rng.random()))
        ]

    def _walk(self) -> Optional[Instance]:
        node = self._start()
        flat: List[int] = [node]
        backend = self.store.backend
        if self.topology == "star":
            preds, objs = backend.out_slice(node)
            degree = int(preds.size)
            for _ in range(self.size):
                pick = int(self._rng.integers(degree))
                flat.extend((int(preds[pick]), int(objs[pick])))
            return tuple(flat)
        for _ in range(self.size):
            preds, objs = backend.out_slice(node)
            degree = int(preds.size)
            if degree == 0:
                return None
            pick = int(self._rng.integers(degree))
            node = int(objs[pick])
            flat.extend((int(preds[pick]), node))
        return tuple(flat)

    def sample_many(self, count: int) -> List[Instance]:
        instances: List[Instance] = []
        attempts = 0
        while len(instances) < count and attempts < count * 50:
            inst = self._walk()
            attempts += 1
            if inst is not None:
                instances.append(inst)
        return instances


def _subgraph_store(store: TripleStore, nodes: Set[int]) -> TripleStore:
    """The induced subgraph over *nodes* as a fresh store."""
    sub = TripleStore()
    backend = store.backend
    for s in nodes:
        preds, objs = backend.out_slice(s)
        for p, o in zip(preds.tolist(), objs.tolist()):
            if o in nodes:
                sub.add(s, p, o)
    return sub


class _SubgraphStrategy(InstanceStrategy):
    """Shared machinery: burn/collect a node set, sample instances in it.

    Subclasses implement ``_collect(target_nodes) -> Set[int]``.  When
    the induced subgraph admits no instance of the wanted shape, the
    collection is retried with a larger target (up to a cap) before
    giving up with a ValueError.
    """

    #: fraction of the graph's nodes the subgraph aims for
    target_fraction: float = 0.2

    def _collect(self, target: int) -> Set[int]:
        raise NotImplementedError

    def _build_sampler(self):
        total = max(len(self.store.nodes()), 1)
        target = max(int(total * self.target_fraction), self.size + 1)
        sampler_cls = (
            StarSampler if self.topology == "star" else ChainSampler
        )
        for attempt in range(6):
            nodes = self._collect(min(target, total))
            sub = _subgraph_store(self.store, nodes)
            try:
                return sub, sampler_cls(sub, self.size, seed=self.seed)
            except ValueError:
                target = min(target * 2, total)
        raise ValueError(
            f"no {self.topology} instance of size {self.size} found in "
            f"sampled subgraphs"
        )

    def sample_many(self, count: int) -> List[Instance]:
        if not hasattr(self, "_sampler"):
            self._subgraph, self._sampler = self._build_sampler()
        return self._sampler.sample_many(count)


class ForestFireStrategy(_SubgraphStrategy):
    """Forest-fire subgraph sampling (Leskovec & Faloutsos, KDD 2006).

    A fire starts at a random node and burns each out-neighbour
    independently with probability ``burn_probability``; burned nodes
    propagate recursively.  New fires start until the target node count
    is reached.
    """

    name = "forest_fire"

    def __init__(self, store, topology, size, seed=0, burn_probability=0.7):
        super().__init__(store, topology, size, seed)
        self.burn_probability = burn_probability

    def _collect(self, target: int) -> Set[int]:
        nodes = self.store.nodes()
        burned: Set[int] = set()
        while len(burned) < target:
            frontier = deque(
                [nodes[int(self._rng.integers(len(nodes)))]]
            )
            while frontier and len(burned) < target:
                v = frontier.popleft()
                if v in burned:
                    continue
                burned.add(v)
                for o in self.store.backend.out_slice(v)[1].tolist():
                    if (
                        o not in burned
                        and self._rng.random() < self.burn_probability
                    ):
                        frontier.append(o)
        return burned


class SnowballStrategy(_SubgraphStrategy):
    """Snowball (BFS-ball) sampling: full neighbourhoods around seeds."""

    name = "snowball"

    def _collect(self, target: int) -> Set[int]:
        nodes = self.store.nodes()
        collected: Set[int] = set()
        while len(collected) < target:
            frontier = deque(
                [nodes[int(self._rng.integers(len(nodes)))]]
            )
            while frontier and len(collected) < target:
                v = frontier.popleft()
                if v in collected:
                    continue
                collected.add(v)
                for o in self.store.backend.out_slice(v)[1].tolist():
                    if o not in collected:
                        frontier.append(o)
        return collected


_STRATEGY_CLASSES = {
    cls.name: cls
    for cls in (
        ExactUniformStrategy,
        UniformStartRW,
        DegreeWeightedRW,
        ForestFireStrategy,
        SnowballStrategy,
    )
}


def strategy_names() -> List[str]:
    """All registered strategy identifiers."""
    return sorted(_STRATEGY_CLASSES)


def make_strategy(
    name: str,
    store: TripleStore,
    topology: str,
    size: int,
    seed: int = 0,
) -> InstanceStrategy:
    """Instantiate a sampling strategy by its registry name."""
    if name not in _STRATEGY_CLASSES:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {strategy_names()}"
        )
    return _STRATEGY_CLASSES[name](store, topology, size, seed=seed)


# ----------------------------------------------------------------------
# Scaled-down sample quality (Leskovec & Faloutsos's evaluation idea)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SampleQuality:
    """How well a sample preserves the graph's statistics.

    Attributes:
        predicate_tv: total-variation distance between the sample's
            predicate usage and the graph's triple-level predicate
            distribution (0 = perfectly scaled down).
        degree_ks: two-sample KS statistic between the out-degrees of
            sampled instance subjects and the instance-universe subject
            degrees (0 = same degree mix).
        distinct_terms: distinct term ids appearing in the sample — the
            coverage that decides whether rare terms are learnable.
    """

    predicate_tv: float
    degree_ks: float
    distinct_terms: int


def _instance_predicates(instances: Sequence[Instance]) -> List[int]:
    preds: List[int] = []
    for inst in instances:
        preds.extend(inst[1::2])
    return preds


def sample_quality(
    store: TripleStore,
    topology: str,
    size: int,
    instances: Sequence[Instance],
) -> SampleQuality:
    """Score *instances* against the graph's scaled-down statistics."""
    if not instances:
        raise ValueError("cannot score an empty sample")
    # Predicate distribution vs triple-level truth.
    truth_counts = {
        p: store.predicate_count(p) for p in store.predicates()
    }
    truth_total = sum(truth_counts.values())
    sample_preds = Counter(_instance_predicates(instances))
    sample_total = sum(sample_preds.values())
    predicates = set(truth_counts) | set(sample_preds)
    predicate_tv = 0.5 * sum(
        abs(
            truth_counts.get(p, 0) / truth_total
            - sample_preds.get(p, 0) / sample_total
        )
        for p in predicates
    )
    # Subject out-degree mix vs the instance universe's.  The universe
    # weights a start node by how many instances begin there: deg^k for
    # stars, the walk-count DP for chains.
    sample_degrees = [
        store.out_degree(inst[0]) for inst in instances
    ]
    universe_degrees: List[float] = []
    weights: List[float] = []
    if topology == "chain":
        walk_counts = chain_walk_counts(store, size)[size]
    for s in store.subjects():
        degree = store.out_degree(s)
        if degree == 0:
            continue
        if topology == "star":
            weight = float(degree) ** size
        else:
            weight = float(walk_counts.get(s, 0))
        if weight == 0.0:
            continue
        universe_degrees.append(degree)
        weights.append(weight)
    rng = np.random.default_rng(0)
    weights_arr = np.array(weights)
    reference = rng.choice(
        universe_degrees,
        size=max(len(sample_degrees), 200),
        p=weights_arr / weights_arr.sum(),
    )
    degree_ks = float(stats.ks_2samp(sample_degrees, reference).statistic)
    distinct = len({term for inst in instances for term in inst})
    return SampleQuality(
        predicate_tv=float(predicate_tv),
        degree_ks=degree_ks,
        distinct_terms=distinct,
    )
