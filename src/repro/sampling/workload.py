"""Workload generation: labelled training sets and bucketed test queries.

Mirrors the paper's experimental protocol (§VIII):

- queries are grouped into buckets by result size, with boundaries at
  powers of 5 (``[5^0, 5^1), [5^1, 5^2), ...``, last bucket ``[5^6, 5^9)``),
- test sets draw (up to) the same number of queries per bucket,
- queries keep predicates bound and include at least one unbound variable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.rdf.fastcount import count_query
from repro.rdf.parallel import label_queries
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.sampling.random_walk import sample_instances
from repro.sampling.unbinding import query_from_instance, random_unbound_mask

#: Bucket boundaries: bucket i holds cardinalities in [5^i, 5^(i+1)),
#: except the last, which stretches to 5^9 (the paper's "[5^6, 5^9)").
NUM_BUCKETS = 7


def bucket_of(cardinality: int) -> Optional[int]:
    """Result-size bucket index of a cardinality, None for empty results."""
    if cardinality < 1:
        return None
    bucket = int(math.log(cardinality) / math.log(5))
    return min(bucket, NUM_BUCKETS - 1)


def bucket_label(bucket: int) -> str:
    """Human-readable bucket range like the paper's x-axis labels."""
    if bucket == NUM_BUCKETS - 1:
        return "[5^6,5^9)"
    return f"[5^{bucket},5^{bucket + 1})"


@dataclass(frozen=True)
class QueryRecord:
    """One labelled query: the pattern, its shape, and its cardinality."""

    query: QueryPattern
    topology: str
    size: int
    cardinality: int

    @property
    def bucket(self) -> Optional[int]:
        return bucket_of(self.cardinality)


@dataclass
class Workload:
    """A labelled set of queries for one (topology, size) combination."""

    topology: str
    size: int
    records: List[QueryRecord]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def cardinalities(self) -> np.ndarray:
        return np.array([r.cardinality for r in self.records])

    def by_bucket(self) -> Dict[int, List[QueryRecord]]:
        buckets: Dict[int, List[QueryRecord]] = {}
        for record in self.records:
            bucket = record.bucket
            if bucket is not None:
                buckets.setdefault(bucket, []).append(record)
        return buckets

    def split(
        self, train_fraction: float, seed: int = 0
    ) -> Tuple["Workload", "Workload"]:
        """Shuffled train/test split preserving topology and size."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.records))
        cut = int(len(self.records) * train_fraction)
        train = [self.records[i] for i in order[:cut]]
        test = [self.records[i] for i in order[cut:]]
        return (
            Workload(self.topology, self.size, train),
            Workload(self.topology, self.size, test),
        )


def generate_workload(
    store: TripleStore,
    topology: str,
    size: int,
    num_queries: int,
    seed: int = 0,
    method: str = "exact",
    min_unbound: int = 1,
    max_instances: Optional[int] = None,
    workers: Optional[int] = 1,
    snapshot_dir: Union[str, Path, None] = None,
) -> Workload:
    """Sample, unbind, deduplicate, and label queries of one shape.

    Instances are drawn from the store (uniform by default), each is
    turned into a query by unbinding a random subset of its nodes, exact
    duplicates (up to variable renaming) are dropped, and every query is
    labelled with its exact cardinality.

    Labeling dominates generation cost.  With ``workers > 1`` (or
    ``workers=None`` for one per core) the deduplicated queries are
    sharded across a process pool in which every worker memory-maps the
    same read-only snapshot (:mod:`repro.rdf.parallel`) — pass
    *snapshot_dir* to attach to an existing on-disk snapshot of *store*,
    otherwise one is written to a temporary directory for the pool.
    Counts and record order are identical to the serial path for every
    worker count.
    """
    rng = np.random.default_rng(seed + 1)
    budget = max_instances if max_instances is not None else num_queries * 4
    instances, _ = sample_instances(
        store, topology, size, budget, seed=seed, method=method
    )
    # Sampling/unbinding/dedup is cheap and order-defining, so it stays
    # serial; only the cardinality labeling below is sharded.
    seen = set()
    queries: List[QueryPattern] = []
    for instance in instances:
        if len(queries) >= num_queries:
            break
        mask = random_unbound_mask(size + 1, rng, min_unbound=min_unbound)
        query = query_from_instance(topology, instance, mask)
        key = query.canonical_key()
        if key in seen:
            continue
        seen.add(key)
        queries.append(query)
    cardinalities = label_queries(
        queries, store=store, snapshot_dir=snapshot_dir, workers=workers
    )
    records: List[QueryRecord] = []
    for query, cardinality in zip(queries, cardinalities):
        if cardinality < 1:
            # Unbinding a sampled instance always matches at least the
            # instance itself; zero would mean a counting bug.
            raise AssertionError(
                f"sampled query with zero cardinality: {query}"
            )
        records.append(QueryRecord(query, topology, size, cardinality))
    return Workload(topology, size, records)


def generate_test_queries(
    store: TripleStore,
    topology: str,
    size: int,
    per_bucket: int,
    seed: int = 100,
    oversample: int = 12,
    workers: Optional[int] = 1,
    snapshot_dir: Union[str, Path, None] = None,
) -> Workload:
    """Bucket-balanced test queries, the paper's 600-query protocol.

    Draws a large candidate pool and keeps up to *per_bucket* queries per
    result-size bucket.  Buckets with large cardinalities are naturally
    sparse (the paper notes the same), so the returned workload may hold
    fewer than ``per_bucket * NUM_BUCKETS`` queries.
    """
    candidates = generate_workload(
        store,
        topology,
        size,
        num_queries=per_bucket * NUM_BUCKETS * oversample,
        seed=seed,
        max_instances=per_bucket * NUM_BUCKETS * oversample * 2,
        workers=workers,
        snapshot_dir=snapshot_dir,
    )
    kept: Dict[int, List[QueryRecord]] = {}
    for record in candidates.records:
        bucket = record.bucket
        if bucket is None:
            continue
        slot = kept.setdefault(bucket, [])
        if len(slot) < per_bucket:
            slot.append(record)
    records = [r for bucket in sorted(kept) for r in kept[bucket]]
    return Workload(topology, size, records)


def merge_workloads(workloads: Sequence[Workload]) -> List[QueryRecord]:
    """Flatten several workloads into one record list."""
    merged: List[QueryRecord] = []
    for workload in workloads:
        merged.extend(workload.records)
    return merged
