"""Workload persistence: save and reload labelled query sets.

Training a model on exactly the same workload across runs (and sharing
workloads between machines) needs a durable format.  One query per
line, tab-separated::

    topology  size  cardinality  pattern

where *pattern* serialises the triple patterns as
``(s p o);(s p o);...`` with integers for bound term ids and ``?name``
for variables — the dictionary-encoded form, so files pair with the
store they were generated from (record the dataset and seed alongside,
as `python -m repro workload` output does).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.rdf.pattern import QueryPattern
from repro.rdf.terms import PatternTerm, TriplePattern, Variable
from repro.sampling.workload import QueryRecord, Workload


class WorkloadFormatError(ValueError):
    """Raised when a workload file line cannot be parsed."""


def _render_term(term: PatternTerm) -> str:
    if isinstance(term, Variable):
        return f"?{term.name}"
    return str(term)


def _parse_term(text: str) -> PatternTerm:
    if text.startswith("?"):
        if len(text) < 2:
            raise WorkloadFormatError("empty variable name")
        return Variable(text[1:])
    try:
        return int(text)
    except ValueError:
        raise WorkloadFormatError(f"bad term {text!r}")


def render_pattern(query: QueryPattern) -> str:
    """Serialise a query pattern to its one-line form."""
    return ";".join(
        f"({_render_term(tp.s)} {_render_term(tp.p)} {_render_term(tp.o)})"
        for tp in query.triples
    )


def parse_pattern(text: str) -> QueryPattern:
    """Inverse of :func:`render_pattern`."""
    triples: List[TriplePattern] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not (chunk.startswith("(") and chunk.endswith(")")):
            raise WorkloadFormatError(
                f"triple {chunk!r} is not parenthesised"
            )
        parts = chunk[1:-1].split()
        if len(parts) != 3:
            raise WorkloadFormatError(
                f"triple {chunk!r} does not have three terms"
            )
        triples.append(TriplePattern(*(_parse_term(p) for p in parts)))
    if not triples:
        raise WorkloadFormatError("empty pattern")
    return QueryPattern(triples)


def save_workload(
    path: Union[str, Path], records: Union[Workload, List[QueryRecord]]
) -> int:
    """Write records as TSV; returns the number of lines written."""
    rows = list(records)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("topology\tsize\tcardinality\tpattern\n")
        for record in rows:
            handle.write(
                f"{record.topology}\t{record.size}\t"
                f"{record.cardinality}\t"
                f"{render_pattern(record.query)}\n"
            )
    return len(rows)


def load_workload(path: Union[str, Path]) -> List[QueryRecord]:
    """Read records back from TSV (header line required)."""
    records: List[QueryRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if header.split("\t") != [
            "topology",
            "size",
            "cardinality",
            "pattern",
        ]:
            raise WorkloadFormatError(
                f"unexpected header {header!r}"
            )
        for number, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise WorkloadFormatError(
                    f"line {number}: expected 4 fields, got {len(parts)}"
                )
            topology, size, cardinality, pattern = parts
            try:
                records.append(
                    QueryRecord(
                        query=parse_pattern(pattern),
                        topology=topology,
                        size=int(size),
                        cardinality=int(cardinality),
                    )
                )
            except (ValueError, WorkloadFormatError) as exc:
                raise WorkloadFormatError(
                    f"line {number}: {exc}"
                ) from exc
    return records
