"""A single autoregressive model over every query shape (NeuroCard-style).

The paper's related work (§II) notes that NeuroCard — "one cardinality
estimator for all tables" — "has the potential to be applied on KGs"
and defers the investigation to future work.  This module carries it
out for LMKG-U: instead of one ResMADE per (topology, size), a single
model learns the joint distribution over a *union* of shape universes.

Construction:

- The input sequence is ``[shape, n1, p1, ..., p_K, n_{K+1}]`` where
  ``shape`` indexes the covered (topology, size) pairs and ``K`` is the
  largest covered size; instances of smaller shapes pad the unused tail
  positions with the reserved id 0.
- Training draws instances from each shape's universe proportional to
  the universe's size, so the model approximates the uniform
  distribution over the union and ``card(q) = N_total × P(shape,
  bound terms, pads)`` with unbound positions marginalised by the same
  likelihood-weighted sampling LMKG-U uses.

The trade is exactly §VII-B's single-model row: one set of weights for
all shapes (smaller memory, less maintenance) against the specialised
models' accuracy — quantified in ``bench_ext_universal_u.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import Estimator, finalize_estimates
from repro.core.lmkg_u import (
    _CHUNK_BUDGETS,
    GumbelStream,
    LMKGUConfig,
    likelihood_weighted_probability,
    sweep_probability_block,
)
from repro.nn.masked import MADE
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.rdf.terms import PatternTerm, Variable, is_bound
from repro.sampling.random_walk import sample_instances

Shape = Tuple[str, int]

#: vocabulary indices inside the MADE
_NODE_VOCAB = 0
_PRED_VOCAB = 1
_SHAPE_VOCAB = 2


class UniversalLMKGU(Estimator):
    """One ResMADE covering several (topology, size) shapes.

    Args:
        store: the knowledge graph.
        shapes: the (topology, size) pairs to cover; sizes need not be
            equal — smaller shapes pad.
        config: shared hyperparameters (``training_samples`` is the
            *total* budget, split across shapes by universe size).
    """

    def __init__(
        self,
        store: TripleStore,
        shapes: Sequence[Shape],
        config: Optional[LMKGUConfig] = None,
    ) -> None:
        if not shapes:
            raise ValueError("need at least one shape")
        for topology, size in shapes:
            if topology not in ("star", "chain"):
                raise ValueError(f"unsupported topology {topology!r}")
            if size < 1:
                raise ValueError("shape size must be >= 1")
        self.store = store
        self.shapes: List[Shape] = list(dict.fromkeys(shapes))
        self.config = config if config is not None else LMKGUConfig()
        self.max_size = max(size for _, size in self.shapes)
        #: term positions after the shape column
        self.term_positions = 2 * self.max_size + 1
        self.num_positions = 1 + self.term_positions
        self._var_vocabs = [_SHAPE_VOCAB] + [
            _NODE_VOCAB if i % 2 == 0 else _PRED_VOCAB
            for i in range(self.term_positions)
        ]
        # id 0 is reserved in every vocabulary (padding / unbound).
        self._vocab_sizes = [
            store.num_nodes + 1,
            store.num_predicates + 1,
            len(self.shapes) + 1,
        ]
        self._shape_ids: Dict[Shape, int] = {
            shape: idx + 1 for idx, shape in enumerate(self.shapes)
        }
        self.model: Optional[MADE] = None
        self.universes: Dict[Shape, int] = {}
        self.total_universe: int = 0
        self.history: List[float] = []
        self._noise: Optional[GumbelStream] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def build_model(self) -> MADE:
        """Instantiate the (untrained) shared ResMADE."""
        self.model = MADE(
            var_vocabs=self._var_vocabs,
            vocab_sizes=self._vocab_sizes,
            embed_dim=self.config.embed_dim,
            hidden_sizes=self.config.hidden_sizes,
            residual=self.config.residual,
            seed=self.config.seed,
        )
        return self.model

    def _padded(self, shape: Shape, instance: Sequence[int]) -> List[int]:
        row = [self._shape_ids[shape]]
        row.extend(instance)
        row.extend([0] * (self.term_positions - len(instance)))
        return row

    def fit(self) -> List[float]:
        """Sample every shape's universe and train the shared model.

        The per-shape sample counts are proportional to universe sizes
        (floored at a small minimum so rare shapes are represented),
        which makes the trained distribution approximate the uniform
        distribution over the union of universes.
        """
        budgets = self._sample_budgets()
        rows: List[List[int]] = []
        for shape, budget in budgets.items():
            topology, size = shape
            instances, universe = sample_instances(
                self.store,
                topology,
                size,
                budget,
                seed=self.config.seed + 13 * self._shape_ids[shape],
                method=self.config.sample_method,
            )
            self.universes[shape] = universe
            rows.extend(
                self._padded(shape, instance) for instance in instances
            )
        self.total_universe = sum(self.universes.values())
        rng = np.random.default_rng(self.config.seed)
        data = np.array(rows, dtype=np.int64)
        data = data[rng.permutation(len(data))]
        self.build_model()
        assert self.model is not None
        self.history = self.model.fit(
            data,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            lr=self.config.learning_rate,
            seed=self.config.seed,
        )
        return self.history

    def _sample_budgets(self) -> Dict[Shape, int]:
        """Split ``training_samples`` across shapes by universe size."""
        universes: Dict[Shape, int] = {}
        for topology, size in self.shapes:
            _, universe = sample_instances(
                self.store, topology, size, 0
            )
            universes[(topology, size)] = universe
        total = sum(universes.values())
        if total == 0:
            raise ValueError("no shape has any instance in the graph")
        floor = max(self.config.training_samples // (10 * len(universes)), 1)
        return {
            shape: max(
                int(self.config.training_samples * universe / total),
                floor,
            )
            for shape, universe in universes.items()
        }

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def _query_constraints(
        self, query: QueryPattern
    ) -> List[Optional[int]]:
        topology = query.topology()
        if topology in (Topology.STAR, Topology.SINGLE):
            shape: Shape = ("star", query.size)
            if shape not in self._shape_ids and topology is Topology.SINGLE:
                shape = ("chain", query.size)
        elif topology is Topology.CHAIN:
            shape = ("chain", query.size)
        else:
            raise ValueError(
                "universal model covers star and chain queries only"
            )
        if shape not in self._shape_ids:
            raise ValueError(
                f"model does not cover shape {shape}; trained for "
                f"{self.shapes}"
            )
        terms: List[PatternTerm] = [query.triples[0].s]
        for tp in query.triples:
            terms.extend((tp.p, tp.o))
        variables = [t for t in terms if isinstance(t, Variable)]
        if len(variables) != len(set(variables)):
            raise ValueError(
                "query repeats a variable beyond the topology's structure"
            )
        constraints: List[Optional[int]] = [self._shape_ids[shape]]
        constraints.extend(
            t if is_bound(t) else None for t in terms
        )
        # Pad positions are *bound* to the reserved id 0.
        constraints.extend(
            [0] * (self.term_positions - len(terms))
        )
        return constraints

    def estimate(self, query: QueryPattern) -> float:
        """Estimated cardinality via likelihood-weighted sampling.

        Overrides the protocol's derived form for the same reason
        :meth:`LMKGU.estimate` does: the per-query sweep draws from a
        fresh RNG stream, paper draw-for-draw, while
        ``estimate_batch`` shares one noise table across the batch
        (identical within sampling noise, not bitwise).
        """
        return float(
            finalize_estimates(
                [self._estimate_one(query)], 1, self.name
            )[0]
        )

    def _estimate_one(self, query: QueryPattern) -> float:
        """Estimated cardinality via likelihood-weighted sampling."""
        if self.model is None or not self.total_universe:
            raise RuntimeError("estimate() before fit()")
        constraints = self._query_constraints(query)
        return float(self.total_universe * self._probability(constraints))

    def _estimate_batch(self, queries) -> np.ndarray:
        """Batched likelihood weighting on the shared block sweep.

        The per-query loop of the protocol's default is replaced by
        :func:`~repro.core.lmkg_u.sweep_probability_block`: one
        incremental trunk per block of ``queries x particles`` rows
        with the vocab-streamed head, exactly as :class:`LMKGU`'s
        batch path.  Pad positions are bound to the reserved id 0, so
        they ride the bound-value branch of the sweep unchanged.
        """
        if self.model is None or not self.total_universe:
            raise RuntimeError("estimate() before fit()")
        queries = list(queries)
        constraints = np.full(
            (len(queries), self.num_positions), -1, dtype=np.int64
        )
        for i, query in enumerate(queries):
            for j, value in enumerate(self._query_constraints(query)):
                if value is not None:
                    constraints[i, j] = value
        budget = self.config.chunk_budget
        if budget is None:
            budget = _CHUNK_BUDGETS[len(_CHUNK_BUDGETS) // 2]
        chunk = max(int(budget) // max(self.config.particles, 1), 1)
        out = np.empty(len(queries), dtype=np.float64)
        for lo in range(0, len(queries), chunk):
            out[lo: lo + chunk] = sweep_probability_block(
                self.model,
                constraints[lo: lo + chunk],
                self.config.particles,
                self._noise_stream(),
                lo,
            )
        return float(self.total_universe) * out

    def _noise_stream(self) -> GumbelStream:
        """Lazily-built shared noise table (seed- and shape-keyed)."""
        if self._noise is None:
            self._noise = GumbelStream(
                self.config.seed,
                self.num_positions,
                max(self._vocab_sizes),
            )
        return self._noise

    def _probability(
        self, constraints: Sequence[Optional[int]]
    ) -> float:
        """Likelihood weighting over one incremental fused-float32 sweep.

        Same inverse-CDF sampler and RNG stream as the seed; the
        conditionals come from :meth:`MADE.begin_sweep` so only the
        changed embed-dim block re-enters the first (widest) matmul per
        position.  The sampler itself is shared with :class:`LMKGU`.
        """
        model = self.model
        assert model is not None
        fully_bound = all(v is not None for v in constraints)
        particles = 1 if fully_bound else self.config.particles
        rng = np.random.default_rng(self.config.seed + 9)
        return likelihood_weighted_probability(
            model, constraints, particles, rng
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def num_parameters(self) -> int:
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.num_parameters()

    def memory_bytes(self) -> int:
        """True in-memory footprint: float64 masters + fused float32
        inference caches + bool layer masks."""
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.memory_bytes()

    def checkpoint_bytes(self) -> int:
        """Paper-facing model size at float32 checkpoint precision."""
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.checkpoint_bytes()


    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Checkpoint the shared ResMADE plus shape/universe metadata."""
        from repro.nn.serialization import save_arrays

        if self.model is None or not self.total_universe:
            raise RuntimeError("save() before fit()")
        arrays = self.model.state()
        arrays["_meta_shapes"] = np.array(
            [f"{topology}:{size}".encode() for topology, size in self.shapes]
        )
        # Universe counts can exceed int64; store decimal strings.
        arrays["_meta_universes"] = np.array(
            [
                str(self.universes[shape]).encode()
                for shape in self.shapes
            ]
        )
        budget = self.config.chunk_budget
        arrays["_meta_universal"] = np.array(
            [
                self.config.particles,
                self.config.seed,
                -1 if budget is None else budget,
            ]
        )
        save_arrays(path, arrays)

    @classmethod
    def load(cls, path, store: TripleStore) -> "UniversalLMKGU":
        """Rebuild a trained universal model against the same store."""
        from repro.nn.masked import MADE
        from repro.nn.serialization import load_arrays

        arrays = load_arrays(path)
        shapes: List[Shape] = []
        for raw in arrays["_meta_shapes"]:
            topology, size = bytes(raw).decode().split(":")
            shapes.append((topology, int(size)))
        meta = [int(v) for v in arrays["_meta_universal"]]
        # Pre-chunk_budget checkpoints carry [particles, seed] only.
        budget = meta[2] if len(meta) > 2 else -1
        config = LMKGUConfig(
            particles=meta[0],
            seed=meta[1],
            chunk_budget=None if budget < 0 else budget,
        )
        model = cls(store, shapes, config)
        model.model = MADE.from_state(arrays)
        model.universes = {
            shape: int(bytes(raw).decode())
            for shape, raw in zip(shapes, arrays["_meta_universes"])
        }
        model.total_universe = sum(model.universes.values())
        return model
