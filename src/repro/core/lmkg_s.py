"""LMKG-S: the supervised deep-learning estimator (paper §VI-A).

A multi-layer perceptron maps an encoded query pattern to a scaled
cardinality.  Architecture per Fig. 3: the flattened (A, X, E) components
(or the pattern-bound vector) pass through fully connected ReLU layers —
optionally with dropout — and a sigmoid output head.  Targets are
log-scaled then min-max scaled; the training loss is the mean q-error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.encoders import TermEncoder, make_encoders
from repro.core.estimator import Estimator
from repro.core.pattern_bound import PatternBoundEncoder
from repro.core.sg_encoding import SGEncoding
from repro.nn.losses import MSELoss, QErrorLoss
from repro.nn.network import Regressor, TrainingHistory, build_mlp
from repro.nn.scaling import LogMinMaxScaler
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.sampling.workload import QueryRecord


@dataclass(frozen=True)
class LMKGSConfig:
    """Hyperparameters of one supervised model.

    Defaults follow the paper's tuning (§VIII-A): 2 hidden layers of 512
    units, q-error loss, binary term encoding, SG query encoding.  Epochs
    default to 100 — enough for the CPU-scale datasets; the Fig. 6 bench
    sweeps this knob explicitly.
    """

    encoding: str = "sg"  # "sg" | "pattern"
    term_encoding: str = "binary"  # "binary" | "one_hot"
    hidden_sizes: Tuple[int, ...] = (512, 512)
    epochs: int = 100
    batch_size: int = 128
    learning_rate: float = 1e-3
    dropout: float = 0.0
    loss: str = "q_error"  # "q_error" | "mse"
    seed: int = 0


class LMKGS(Estimator):
    """A supervised estimator for star/chain queries up to a fixed size.

    One instance hosts one model: depending on the grouping strategy that
    model may be specialised to a single (topology, size) or shared across
    topologies and sizes (the SG-Encoding makes the latter possible).
    Speaks the :class:`~repro.core.estimator.Estimator` protocol:
    ``_estimate_batch`` is the vectorized forward, ``estimate`` derives
    from it.
    """

    name = "lmkg-s"

    def __init__(
        self,
        store: TripleStore,
        topologies: Sequence[str],
        max_size: int,
        config: Optional[LMKGSConfig] = None,
    ) -> None:
        self.store = store
        self.topologies = tuple(topologies)
        self.max_size = max_size
        self.config = config if config is not None else LMKGSConfig()
        node_enc, pred_enc = make_encoders(
            max(store.num_nodes, 1),
            max(store.num_predicates, 1),
            self.config.term_encoding,
        )
        self._encoder = self._build_encoder(node_enc, pred_enc)
        self.scaler = LogMinMaxScaler()
        self._regressor: Optional[Regressor] = None
        self.history: Optional[TrainingHistory] = None

    def _build_encoder(
        self, node_enc: TermEncoder, pred_enc: TermEncoder
    ):
        if self.config.encoding == "sg":
            return SGEncoding.for_query_size(
                self.max_size, node_enc, pred_enc
            )
        if self.config.encoding == "pattern":
            if len(self.topologies) != 1:
                raise ValueError(
                    "the pattern-bound encoding is tied to one topology; "
                    "use encoding='sg' for mixed models"
                )
            return PatternBoundEncoder(
                self.topologies[0], self.max_size, node_enc, pred_enc
            )
        raise ValueError(f"unknown encoding {self.config.encoding!r}")

    @property
    def input_width(self) -> int:
        return self._encoder.width

    def featurize(self, queries: List[QueryPattern]) -> np.ndarray:
        return self._encoder.encode_batch(queries)

    def fit(self, records: Sequence[QueryRecord]) -> TrainingHistory:
        """Train on labelled queries; returns the loss history."""
        if not records:
            raise ValueError("cannot train on an empty workload")
        queries = [r.query for r in records]
        cards = np.array([r.cardinality for r in records], dtype=np.float64)
        features = self.featurize(queries)
        targets = self.scaler.fit_transform(cards)
        rng = np.random.default_rng(self.config.seed)
        network = build_mlp(
            features.shape[1],
            list(self.config.hidden_sizes),
            rng,
            dropout=self.config.dropout,
        )
        if self.config.loss == "q_error":
            loss = QErrorLoss(self.scaler.span)
        elif self.config.loss == "mse":
            loss = MSELoss()
        else:
            raise ValueError(f"unknown loss {self.config.loss!r}")
        self._regressor = Regressor(
            network, loss, lr=self.config.learning_rate
        )
        self.history = self._regressor.fit(
            features,
            targets,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            seed=self.config.seed,
        )
        return self.history

    def finetune(
        self,
        records: Sequence[QueryRecord],
        epochs: Optional[int] = None,
    ) -> TrainingHistory:
        """Continue training from the current weights on *records*.

        The incremental-maintenance path (:mod:`repro.maintain`): a few
        epochs over the relabelled queries of the affected shapes, from
        the bit-exact float64 checkpoint masters, instead of a fresh
        :meth:`fit`.  The scaler keeps its fitted bounds — targets are
        mapped through :meth:`LogMinMaxScaler.transform`, not refit —
        so the output head's calibration survives; a cardinality beyond
        the original range saturates rather than shifting every other
        estimate.  The loss is rebuilt per the config (a loaded
        checkpoint carries a placeholder loss).
        """
        if self._regressor is None:
            raise RuntimeError("finetune() before fit() or load()")
        if not records:
            raise ValueError("cannot fine-tune on an empty workload")
        queries = [r.query for r in records]
        cards = np.array([r.cardinality for r in records], dtype=np.float64)
        features = self.featurize(queries)
        targets = self.scaler.transform(cards)
        if self.config.loss == "q_error":
            loss = QErrorLoss(self.scaler.span)
        elif self.config.loss == "mse":
            loss = MSELoss()
        else:
            raise ValueError(f"unknown loss {self.config.loss!r}")
        self._regressor = Regressor(
            self._regressor.network, loss, lr=self.config.learning_rate
        )
        self.history = self._regressor.fit(
            features,
            targets,
            epochs=self.config.epochs if epochs is None else epochs,
            batch_size=self.config.batch_size,
            seed=self.config.seed + 1,
        )
        return self.history

    def _estimate_batch(self, queries: List[QueryPattern]) -> np.ndarray:
        """Vectorised estimation for a batch of queries."""
        if self._regressor is None:
            raise RuntimeError("estimate() before fit()")
        features = self.featurize(queries)
        scaled = self._regressor.predict(features)
        return self.scaler.inverse(scaled)

    def num_parameters(self) -> int:
        if self._regressor is None:
            raise RuntimeError("model not built yet")
        return self._regressor.num_parameters()

    def memory_bytes(self) -> int:
        """Model size at float32 checkpoint precision."""
        if self._regressor is None:
            raise RuntimeError("model not built yet")
        return self._regressor.memory_bytes()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Checkpoint weights, scaler, and architecture metadata."""
        import numpy as np

        from repro.nn.serialization import save_arrays

        if self._regressor is None:
            raise RuntimeError("save() before fit()")
        arrays = {
            p.name: p.value
            for p in self._regressor.network.parameters()
        }
        scaler_state = self.scaler.state()
        arrays["_meta_scaler"] = np.array(
            [scaler_state["log_min"], scaler_state["log_max"]]
        )
        arrays["_meta_topologies"] = np.array(
            [t.encode() for t in self.topologies]
        )
        arrays["_meta_arch"] = np.array(
            [self.max_size, int(self.config.dropout * 1000)]
            + list(self.config.hidden_sizes)
        )
        arrays["_meta_encoding"] = np.array(
            [self.config.encoding.encode(), self.config.term_encoding.encode()]
        )
        save_arrays(path, arrays)

    @classmethod
    def load(cls, path, store: TripleStore) -> "LMKGS":
        """Rebuild a trained model against the same store."""
        import numpy as np

        from repro.nn.scaling import LogMinMaxScaler
        from repro.nn.serialization import load_arrays

        arrays = load_arrays(path)
        arch = arrays["_meta_arch"]
        encoding, term_encoding = (
            bytes(v).decode() for v in arrays["_meta_encoding"]
        )
        config = LMKGSConfig(
            encoding=encoding,
            term_encoding=term_encoding,
            hidden_sizes=tuple(int(v) for v in arch[2:]),
            dropout=float(arch[1]) / 1000.0,
        )
        topologies = [
            bytes(v).decode() for v in arrays["_meta_topologies"]
        ]
        model = cls(store, topologies, int(arch[0]), config)
        log_min, log_max = arrays["_meta_scaler"]
        model.scaler = LogMinMaxScaler.from_state(
            {"log_min": log_min, "log_max": log_max}
        )
        rng = np.random.default_rng(config.seed)
        network = build_mlp(
            model.input_width,
            list(config.hidden_sizes),
            rng,
            dropout=config.dropout,
        )
        for param in network.parameters():
            param.value[...] = arrays[param.name]
        model._regressor = Regressor(network, MSELoss())
        return model
