"""Range-query cardinality estimation (§IV's future-work direction).

The paper limits LMKG to equality ("presence or absence of terms") and
sketches the extension: "For cardinality estimation of range queries,
one could modify the input encoding with histogram selectivity values."
This module builds exactly that:

- :class:`RangeQuery` — a BGP whose triples may carry an inclusive
  numeric range over their object position (the RDF idiom for literal
  filters like ``FILTER(?year >= 1990 && ?year <= 2000)``),
- :func:`count_range_query` — the exact oracle, for labels and tests,
- :class:`EquiDepthHistogram` / :class:`PredicateHistograms` — classic
  per-predicate equi-depth synopses over object values,
- :class:`LMKGSRange` — LMKG-S with the input encoding widened by one
  histogram-selectivity slot per triple, trained on labelled range
  queries,
- :func:`generate_range_workload` — range-query training/test data.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.rdf.matcher import iter_bindings
from repro.rdf.parser import ParseError, parse_sparql
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import Variable, is_bound
from repro.sampling.workload import generate_workload


@dataclass(frozen=True)
class RangeConstraint:
    """Inclusive object-value range on one triple of a query.

    Attributes:
        triple_index: which triple pattern the constraint filters.
        low / high: inclusive bounds over the object's numeric value
            (dictionary-encoded ids play the role of literal values in
            this reproduction, exactly as they would for an
            order-preserving literal dictionary).
    """

    triple_index: int
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(
                f"empty range [{self.low}, {self.high}]"
            )
        if self.triple_index < 0:
            raise ValueError("triple_index must be non-negative")

    def contains(self, value: int) -> bool:
        return self.low <= value <= self.high


@dataclass(frozen=True)
class RangeQuery:
    """A graph pattern plus range filters on object positions."""

    base: QueryPattern
    constraints: Tuple[RangeConstraint, ...] = ()

    def __post_init__(self) -> None:
        seen: set = set()
        for constraint in self.constraints:
            if constraint.triple_index >= len(self.base.triples):
                raise ValueError(
                    f"constraint on triple {constraint.triple_index} "
                    f"but the query has {len(self.base.triples)} triples"
                )
            if constraint.triple_index in seen:
                raise ValueError(
                    "at most one range constraint per triple"
                )
            seen.add(constraint.triple_index)

    @property
    def size(self) -> int:
        return self.base.size

    def constraint_for(self, triple_index: int) -> Optional[RangeConstraint]:
        for constraint in self.constraints:
            if constraint.triple_index == triple_index:
                return constraint
        return None


def count_range_query(store: TripleStore, query: RangeQuery) -> int:
    """Exact cardinality of a range query (filtered BGP semantics).

    Every solution of the base BGP is kept iff each constrained
    triple's object value falls inside its range.
    """
    if not query.constraints:
        from repro.rdf.fastcount import count_query

        return count_query(store, query.base)
    total = 0
    for bindings in iter_bindings(store, query.base):
        ok = True
        for constraint in query.constraints:
            obj = query.base.triples[constraint.triple_index].o
            value = bindings[obj] if isinstance(obj, Variable) else obj
            if not constraint.contains(value):
                ok = False
                break
        if ok:
            total += 1
    return total


class EquiDepthHistogram:
    """Compressed equi-depth histogram over integer values.

    Values frequent enough to fill a whole bucket are kept as exact
    *singleton* entries (the "compressed histogram" of Poosala et al.);
    the remaining values fill equi-depth buckets whose range selectivity
    interpolates linearly.  Singletons make point ranges over heavy
    values exact instead of diluted across a zero-width bucket.
    """

    def __init__(self, values: Sequence[int], num_buckets: int = 32) -> None:
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        data = np.asarray(values, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot build a histogram over no values")
        self.total = int(data.size)
        depth = self.total / num_buckets
        uniques, counts = np.unique(data, return_counts=True)
        heavy_mask = counts >= max(depth, 2.0)
        self.singletons: Dict[float, float] = {
            float(value): float(count)
            for value, count in zip(
                uniques[heavy_mask], counts[heavy_mask]
            )
        }
        rest = np.repeat(uniques[~heavy_mask], counts[~heavy_mask])
        if rest.size:
            quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
            self.boundaries = np.quantile(rest, quantiles)
            self.counts = np.histogram(rest, bins=self.boundaries)[
                0
            ].astype(np.float64)
        else:
            self.boundaries = np.array([])
            self.counts = np.array([])

    def selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of values in the inclusive [low, high]."""
        if high < low or self.total == 0:
            return 0.0
        covered = sum(
            count
            for value, count in self.singletons.items()
            if low <= value <= high
        )
        for i, count in enumerate(self.counts):
            left, right = self.boundaries[i], self.boundaries[i + 1]
            if right < low or left > high:
                continue
            span = right - left
            if span <= 0:
                covered += count if low <= left <= high else 0.0
                continue
            overlap = min(high, right) - max(low, left)
            covered += count * max(overlap, 0.0) / span
        return float(min(covered / self.total, 1.0))

    def memory_bytes(self) -> int:
        return (
            len(self.boundaries)
            + len(self.counts)
            + 2 * len(self.singletons)
        ) * 8


class PredicateHistograms:
    """One equi-depth histogram per predicate over its object values."""

    def __init__(self, store: TripleStore, num_buckets: int = 32) -> None:
        self.store = store
        self.num_buckets = num_buckets
        self._histograms: Dict[int, EquiDepthHistogram] = {}
        objects_by_pred: Dict[int, List[int]] = {}
        for s, p, o in store:
            objects_by_pred.setdefault(p, []).append(o)
        for p, objects in objects_by_pred.items():
            self._histograms[p] = EquiDepthHistogram(
                objects, num_buckets=num_buckets
            )
        all_objects = [o for objs in objects_by_pred.values() for o in objs]
        self._global = (
            EquiDepthHistogram(all_objects, num_buckets=num_buckets)
            if all_objects
            else None
        )

    def selectivity(
        self, predicate: Optional[int], low: float, high: float
    ) -> float:
        """Range selectivity under *predicate*'s histogram.

        Unbound predicates (None) and predicates never seen fall back to
        the global object-value histogram.
        """
        histogram = (
            self._histograms.get(predicate)
            if predicate is not None
            else None
        )
        if histogram is None:
            histogram = self._global
        if histogram is None:
            return 0.0
        return histogram.selectivity(low, high)

    def memory_bytes(self) -> int:
        total = sum(
            h.memory_bytes() for h in self._histograms.values()
        )
        if self._global is not None:
            total += self._global.memory_bytes()
        return total


@dataclass(frozen=True)
class RangeRecord:
    """One labelled range query."""

    query: RangeQuery
    topology: str
    size: int
    cardinality: int


class LMKGSRange:
    """LMKG-S over the selectivity-augmented input encoding.

    The base query is encoded exactly as in :class:`LMKGS`; one extra
    input slot per triple carries the histogram selectivity of that
    triple's range constraint (1.0 when unconstrained), realising the
    paper's "modify the input encoding with histogram selectivity
    values".
    """

    def __init__(
        self,
        store: TripleStore,
        topologies: Sequence[str],
        max_size: int,
        config: Optional[LMKGSConfig] = None,
        num_buckets: int = 32,
    ) -> None:
        self.store = store
        self.max_size = max_size
        self.histograms = PredicateHistograms(
            store, num_buckets=num_buckets
        )
        self._base = LMKGS(store, topologies, max_size, config)
        self._regressor_ready = False

    @property
    def input_width(self) -> int:
        return self._base.input_width + self.max_size

    #: selectivities below this floor saturate the feature at 1.0.
    _SELECTIVITY_FLOOR = 1e-4

    def _selectivity_features(
        self, queries: Sequence[RangeQuery]
    ) -> np.ndarray:
        """One log-scaled selectivity slot per triple.

        The constrained cardinality is (to first order) the base
        cardinality *times* the selectivity, and the training target is
        the log cardinality — so the feature carries ``log(sel)``
        (normalised to [0, 1]: 0 = unconstrained, 1 = at the floor),
        making the relationship the network must learn additive.
        """
        features = np.zeros((len(queries), self.max_size))
        floor = self._SELECTIVITY_FLOOR
        for row, query in enumerate(queries):
            for constraint in query.constraints:
                tp = query.base.triples[constraint.triple_index]
                predicate = tp.p if is_bound(tp.p) else None
                selectivity = self.histograms.selectivity(
                    predicate, constraint.low, constraint.high
                )
                features[row, constraint.triple_index] = np.log(
                    max(selectivity, floor)
                ) / np.log(floor)
        return features

    def featurize(self, queries: Sequence[RangeQuery]) -> np.ndarray:
        base = self._base.featurize([q.base for q in queries])
        return np.concatenate(
            [base, self._selectivity_features(queries)], axis=1
        )

    def fit(self, records: Sequence[RangeRecord]):
        """Train on labelled range queries; returns the loss history."""
        if not records:
            raise ValueError("cannot train on an empty workload")
        from repro.nn.losses import MSELoss, QErrorLoss
        from repro.nn.network import Regressor, build_mlp

        config = self._base.config
        features = self.featurize([r.query for r in records])
        cards = np.array(
            [r.cardinality for r in records], dtype=np.float64
        )
        targets = self._base.scaler.fit_transform(cards)
        rng = np.random.default_rng(config.seed)
        network = build_mlp(
            features.shape[1],
            list(config.hidden_sizes),
            rng,
            dropout=config.dropout,
        )
        loss = (
            QErrorLoss(self._base.scaler.span)
            if config.loss == "q_error"
            else MSELoss()
        )
        self._base._regressor = Regressor(
            network, loss, lr=config.learning_rate
        )
        history = self._base._regressor.fit(
            features,
            targets,
            epochs=config.epochs,
            batch_size=config.batch_size,
            seed=config.seed,
        )
        self._base.history = history
        self._regressor_ready = True
        return history

    def estimate(self, query: RangeQuery) -> float:
        return float(self.estimate_batch([query])[0])

    def estimate_batch(
        self, queries: Sequence[RangeQuery]
    ) -> np.ndarray:
        if not self._regressor_ready:
            raise RuntimeError("estimate() before fit()")
        features = self.featurize(queries)
        scaled = self._base._regressor.predict(features)
        return self._base.scaler.inverse(scaled)

    def memory_bytes(self) -> int:
        """Model weights plus the histogram synopsis."""
        return (
            self._base.memory_bytes() + self.histograms.memory_bytes()
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Checkpoint weights, scaler, and architecture metadata.

        Histograms are rebuilt from the store at load time (they are a
        deterministic function of the data, like the term encoders).
        """
        from repro.nn.serialization import save_arrays

        if not self._regressor_ready:
            raise RuntimeError("save() before fit()")
        arrays = {
            p.name: p.value
            for p in self._base._regressor.network.parameters()
        }
        scaler_state = self._base.scaler.state()
        arrays["_meta_scaler"] = np.array(
            [scaler_state["log_min"], scaler_state["log_max"]]
        )
        arrays["_meta_topologies"] = np.array(
            [t.encode() for t in self._base.topologies]
        )
        arrays["_meta_arch"] = np.array(
            [self.max_size, self.histograms.num_buckets]
            + list(self._base.config.hidden_sizes)
        )
        save_arrays(path, arrays)

    @classmethod
    def load(cls, path, store: TripleStore) -> "LMKGSRange":
        """Rebuild a trained range model against the same store."""
        from repro.nn.losses import MSELoss
        from repro.nn.network import Regressor, build_mlp
        from repro.nn.scaling import LogMinMaxScaler
        from repro.nn.serialization import load_arrays

        arrays = load_arrays(path)
        arch = arrays["_meta_arch"]
        topologies = [
            bytes(value).decode()
            for value in arrays["_meta_topologies"]
        ]
        config = LMKGSConfig(
            hidden_sizes=tuple(int(value) for value in arch[2:])
        )
        model = cls(
            store,
            topologies,
            int(arch[0]),
            config,
            num_buckets=int(arch[1]),
        )
        log_min, log_max = arrays["_meta_scaler"]
        model._base.scaler = LogMinMaxScaler.from_state(
            {"log_min": log_min, "log_max": log_max}
        )
        rng = np.random.default_rng(config.seed)
        network = build_mlp(
            model.input_width,
            list(config.hidden_sizes),
            rng,
            dropout=config.dropout,
        )
        for param in network.parameters():
            param.value[...] = arrays[param.name]
        model._base._regressor = Regressor(network, MSELoss())
        model._regressor_ready = True
        return model


class HistogramRangeEstimator:
    """Histogram-only baseline for range queries.

    Estimates the unconstrained cardinality with the independence
    product and multiplies in each constraint's histogram selectivity —
    what a traditional optimizer would do, and the floor LMKGSRange
    should beat on correlated data.
    """

    name = "range-histogram"

    def __init__(self, store: TripleStore, num_buckets: int = 32) -> None:
        from repro.baselines.independence import IndependenceEstimator

        self.store = store
        self.histograms = PredicateHistograms(
            store, num_buckets=num_buckets
        )
        self._base = IndependenceEstimator(store)

    def estimate(self, query: RangeQuery) -> float:
        estimate = self._base.estimate(query.base)
        for constraint in query.constraints:
            tp = query.base.triples[constraint.triple_index]
            predicate = tp.p if is_bound(tp.p) else None
            estimate *= self.histograms.selectivity(
                predicate, constraint.low, constraint.high
            )
        return estimate


# ----------------------------------------------------------------------
# SPARQL FILTER parsing
# ----------------------------------------------------------------------

_FILTER_CLAUSE = re.compile(r"FILTER\s*\(([^)]*)\)\s*\.?", re.IGNORECASE)
_FILTER_CONDITION = re.compile(
    r"^\?([A-Za-z_][A-Za-z0-9_]*)\s*(<=|>=|<|>|=)\s*(-?\d+)$"
)

#: Bound used when a filter constrains only one side of the range.
_UNBOUNDED = 2**62


def parse_sparql_range(text: str, dictionary) -> RangeQuery:
    """Parse a SELECT query whose WHERE clause may contain FILTERs.

    Supported filter form — numeric comparisons on object variables,
    conjoined with ``&&`` inside one or several FILTER clauses::

        SELECT ?x WHERE {
          ?x <pub:year> ?y .
          FILTER(?y >= 1990 && ?y <= 2000)
        }

    Comparisons translate to the inclusive :class:`RangeConstraint`
    bounds (``<`` and ``>`` tighten by one — values are integers).  A
    filtered variable must occur as some triple's object; filters on
    subject-only variables are outside the pattern-encoding extension
    and raise :class:`~repro.rdf.parser.ParseError`.
    """
    clauses = _FILTER_CLAUSE.findall(text)
    # Validate the filters before parsing the base: an unsupported
    # condition (e.g. regex) should fail with the filter error, not with
    # whatever the leftover characters do to the triple parser.
    bounds: Dict[str, List[int]] = {}
    for clause in clauses:
        for condition in clause.split("&&"):
            match = _FILTER_CONDITION.match(condition.strip())
            if match is None:
                raise ParseError(
                    f"unsupported FILTER condition {condition.strip()!r}"
                )
            var, op, literal = match.groups()
            value = int(literal)
            low, high = bounds.setdefault(
                var, [-_UNBOUNDED, _UNBOUNDED]
            )
            if op == "=":
                bounds[var] = [max(low, value), min(high, value)]
            elif op == ">=":
                bounds[var][0] = max(low, value)
            elif op == ">":
                bounds[var][0] = max(low, value + 1)
            elif op == "<=":
                bounds[var][1] = min(high, value)
            else:  # "<"
                bounds[var][1] = min(high, value - 1)
    base = parse_sparql(_FILTER_CLAUSE.sub("", text), dictionary)
    constraints: List[RangeConstraint] = []
    for var, (low, high) in bounds.items():
        if low > high:
            raise ParseError(
                f"FILTER on ?{var} selects an empty range [{low}, {high}]"
            )
        triple_index = next(
            (
                idx
                for idx, tp in enumerate(base.triples)
                if tp.o == Variable(var)
            ),
            None,
        )
        if triple_index is None:
            raise ParseError(
                f"FILTER on ?{var}: range filters are supported on "
                "object variables only"
            )
        constraints.append(RangeConstraint(triple_index, low, high))
    return RangeQuery(
        base,
        tuple(sorted(constraints, key=lambda c: c.triple_index)),
    )


def format_sparql_range(query: RangeQuery, dictionary) -> str:
    """Render a range query back to SPARQL text with FILTER clauses."""
    from repro.rdf.parser import format_sparql

    text = format_sparql(query.base, dictionary)
    if not query.constraints:
        return text
    filters = []
    for constraint in query.constraints:
        obj = query.base.triples[constraint.triple_index].o
        if not isinstance(obj, Variable):
            continue
        filters.append(
            f"  FILTER(?{obj.name} >= {constraint.low} && "
            f"?{obj.name} <= {constraint.high}) ."
        )
    if not filters:
        return text
    return text[: -len("\n}")] + "\n" + "\n".join(filters) + "\n}"


def _random_constraints(
    store: TripleStore,
    base: QueryPattern,
    rng: np.random.Generator,
    max_constraints: int,
) -> Tuple[RangeConstraint, ...]:
    """Random ranges over unbound-object triples of *base*.

    Ranges are anchored at actual object values of the triple's
    predicate so constraints are selective but rarely empty.
    """
    candidates = [
        idx
        for idx, tp in enumerate(base.triples)
        if isinstance(tp.o, Variable) and is_bound(tp.p)
    ]
    if not candidates:
        return ()
    rng.shuffle(candidates)
    constraints: List[RangeConstraint] = []
    for idx in candidates[:max_constraints]:
        tp = base.triples[idx]
        objects = store.objects_with_predicate(tp.p)
        if len(objects) < 2:
            continue
        lo_pos = int(rng.integers(0, len(objects)))
        hi_pos = int(rng.integers(lo_pos, len(objects)))
        constraints.append(
            RangeConstraint(
                triple_index=idx,
                low=objects[lo_pos],
                high=objects[hi_pos],
            )
        )
    return tuple(constraints)


def self_objects(store: TripleStore, predicate: int):
    """(subject, object) pairs of one predicate (columnar slice)."""
    s_arr, o_arr = store.backend.pred_slice(predicate)
    yield from zip(s_arr.tolist(), o_arr.tolist())


def generate_range_workload(
    store: TripleStore,
    topology: str,
    size: int,
    num_queries: int,
    seed: int = 0,
    max_constraints: int = 2,
) -> List[RangeRecord]:
    """Labelled range queries of one shape.

    Base queries come from the equality workload generator; each gets up
    to *max_constraints* random ranges over its unbound objects and is
    labelled with the exact filtered count.
    """
    rng = np.random.default_rng(seed)
    base_workload = generate_workload(
        store, topology, size, num_queries=num_queries, seed=seed
    )
    records: List[RangeRecord] = []
    for record in base_workload.records:
        constraints = _random_constraints(
            store, record.query, rng, max_constraints
        )
        query = RangeQuery(base=record.query, constraints=constraints)
        records.append(
            RangeRecord(
                query=query,
                topology=topology,
                size=size,
                cardinality=count_range_query(store, query),
            )
        )
    return records
