"""Compound supervised + unsupervised estimation (§VII-B future work).

The paper closes its model analysis with: "a single compound
incorporating a supervised and an unsupervised model, as one model, for
estimating a single query cardinality is currently out of the scope of
this paper and left for future work."  This module builds that compound
from the two trained estimators, with three combination policies:

- ``geometric``: the log-space average of both estimates.  q-error is a
  multiplicative metric, so averaging in log space is the ensemble that
  directly optimises it when the two models' errors are independent.
- ``router``: the static rule of thumb §VII-B itself gives — LMKG-U for
  star queries (it captures term inter-correlations and skew best),
  LMKG-S for chains (where LMKG-U's sample quality degrades).
- ``validated``: measure both models on a held-out validation workload
  per (topology, size) shape and weight each model's log-estimate by its
  inverse validation log-q-error — shapes where one model is clearly
  better lean on that model, shapes where they tie get the geometric
  mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.baselines.base import CardinalityEstimator
from repro.core.metrics import q_error
from repro.rdf.pattern import QueryPattern
from repro.sampling.workload import QueryRecord

Shape = Tuple[str, int]

_POLICIES = ("geometric", "router", "validated")


class _Estimator(Protocol):
    def estimate(self, query: QueryPattern) -> float: ...


def _safe_log(estimate: float) -> float:
    """Natural log with a floor at one result (estimates below 1 carry
    no usable signal for a count)."""
    return math.log(max(float(estimate), 1.0))


@dataclass
class ShapeWeights:
    """Per-shape convex weight for the supervised model's log-estimate."""

    supervised: float = 0.5

    @property
    def unsupervised(self) -> float:
        return 1.0 - self.supervised


class CompoundEstimator(CardinalityEstimator):
    """One estimate from a supervised and an unsupervised LMKG model.

    Args:
        supervised: any estimator with ``estimate`` (typically the
            :class:`~repro.core.framework.LMKG` façade in supervised
            mode or a bare :class:`~repro.core.lmkg_s.LMKGS`).
        unsupervised: the unsupervised counterpart.
        policy: ``"geometric"``, ``"router"``, or ``"validated"``.
        validation: held-out labelled records; required by the
            ``validated`` policy, ignored otherwise.
    """

    name = "lmkg-compound"

    def __init__(
        self,
        supervised: _Estimator,
        unsupervised: _Estimator,
        policy: str = "geometric",
        validation: Optional[Sequence[QueryRecord]] = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {_POLICIES}"
            )
        if policy == "validated" and not validation:
            raise ValueError(
                "the 'validated' policy needs a validation workload"
            )
        self.supervised = supervised
        self.unsupervised = unsupervised
        self.policy = policy
        self._weights: Dict[Shape, ShapeWeights] = {}
        if policy == "validated":
            assert validation is not None
            self._calibrate(validation)

    # ------------------------------------------------------------------
    # Calibration (validated policy)
    # ------------------------------------------------------------------

    def _calibrate(self, validation: Sequence[QueryRecord]) -> None:
        """Set per-shape weights from held-out accuracy of both models.

        Weight of the supervised model = its inverse mean log-q-error,
        normalised against the unsupervised model's — the standard
        inverse-loss ensemble weighting, computed per (topology, size).
        """
        by_shape: Dict[Shape, list] = {}
        for record in validation:
            by_shape.setdefault(
                (record.topology, record.size), []
            ).append(record)
        for shape, records in by_shape.items():
            sup_err = self._mean_log_qerror(self.supervised, records)
            uns_err = self._mean_log_qerror(self.unsupervised, records)
            total = sup_err + uns_err
            if total <= 0.0:
                weight = 0.5
            else:
                # Lower error -> higher weight.
                weight = uns_err / total
            self._weights[shape] = ShapeWeights(supervised=weight)

    @staticmethod
    def _mean_log_qerror(
        estimator: _Estimator, records: Sequence[QueryRecord]
    ) -> float:
        errors = []
        for record in records:
            estimate = estimator.estimate(record.query)
            errors.append(
                math.log(q_error(estimate, record.cardinality))
            )
        return float(np.mean(errors)) if errors else 0.0

    def weight_for(self, shape: Shape) -> ShapeWeights:
        """The calibrated weights of one shape (0.5/0.5 when unseen)."""
        return self._weights.get(shape, ShapeWeights())

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def _estimate_one(self, query: QueryPattern) -> float:
        if self.policy == "router":
            model = (
                self.unsupervised
                if query.topology().value == "star"
                else self.supervised
            )
            return float(model.estimate(query))
        sup_log = _safe_log(self.supervised.estimate(query))
        uns_log = _safe_log(self.unsupervised.estimate(query))
        if self.policy == "geometric":
            return math.exp(0.5 * (sup_log + uns_log))
        shape = (query.topology().value, query.size)
        weights = self.weight_for(shape)
        return math.exp(
            weights.supervised * sup_log
            + weights.unsupervised * uns_log
        )

    def memory_bytes(self) -> int:
        """Both underlying models plus the weight table."""
        total = len(self._weights) * 8
        for model in (self.supervised, self.unsupervised):
            reporter = getattr(model, "memory_bytes", None)
            if reporter is not None:
                total += int(reporter())
        return total
