"""Workload-shift detection during the execution phase (§IV).

The framework overview states: "If a change in the workload of queries
is detected during the execution phase, a new model may be created, or
an existing model may be dropped."  This module implements that loop:

- :class:`WorkloadMonitor` keeps a sliding window of recently executed
  query shapes and compares the window's shape distribution against a
  reference profile (the distribution the models were created for) by
  total-variation distance.  Crossing the threshold yields a
  :class:`DriftReport` naming the shapes to add and to drop.
- :class:`AdaptiveLMKG` wires the monitor to an
  :class:`~repro.core.framework.LMKG` façade: every estimate records
  the query's shape, and on drift the façade fits models for newly hot
  shapes and drops models whose shapes left the workload.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.estimator import Estimator
from repro.core.framework import EstimationError, LMKG
from repro.rdf.pattern import QueryPattern
from repro.sampling.workload import QueryRecord

Shape = Tuple[str, int]


@dataclass(frozen=True)
class DriftReport:
    """The monitor's verdict when the workload has shifted.

    Attributes:
        distance: total-variation distance between the reference and the
            current window distribution (0 = identical, 1 = disjoint).
        emerging: shapes above the hot threshold in the window but not
            in the reference's covered set.
        fading: reference shapes that fell below the cold threshold.
        window_shares: the current window distribution, for logging.
    """

    distance: float
    emerging: Tuple[Shape, ...]
    fading: Tuple[Shape, ...]
    window_shares: Dict[Shape, float]


def total_variation(
    reference: Dict[Shape, float], window: Dict[Shape, float]
) -> float:
    """Total-variation distance between two shape distributions."""
    shapes = set(reference) | set(window)
    return 0.5 * sum(
        abs(reference.get(shape, 0.0) - window.get(shape, 0.0))
        for shape in shapes
    )


class WorkloadMonitor:
    """Sliding-window drift detector over query shapes.

    Args:
        window_size: how many recent queries the window holds.
        threshold: total-variation distance that counts as drift.
        min_queries: observations required before ``check`` may fire
            (avoids reacting to the first handful of queries).
        hot_share: window share above which an uncovered shape is
            reported as *emerging*.
        cold_share: window share below which a covered shape is
            reported as *fading*.
    """

    def __init__(
        self,
        window_size: int = 500,
        threshold: float = 0.25,
        min_queries: int = 50,
        hot_share: float = 0.1,
        cold_share: float = 0.01,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if window_size < 1:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self.threshold = threshold
        self.min_queries = min_queries
        self.hot_share = hot_share
        self.cold_share = cold_share
        self._window: Deque[Shape] = deque(maxlen=window_size)
        self._reference: Dict[Shape, float] = {}
        self._observed = 0

    # ------------------------------------------------------------------
    # Reference profile
    # ------------------------------------------------------------------

    def set_reference(self, shares: Dict[Shape, float]) -> None:
        """Pin the reference distribution (must sum to ~1)."""
        total = sum(shares.values())
        if total <= 0:
            raise ValueError("reference shares must sum to a positive value")
        self._reference = {
            shape: share / total for shape, share in shares.items()
        }

    def set_reference_from_shapes(self, shapes: Sequence[Shape]) -> None:
        """Uniform reference over the shapes the models were built for."""
        if not shapes:
            raise ValueError("need at least one reference shape")
        share = 1.0 / len(shapes)
        self._reference = {shape: share for shape in set(shapes)}

    @property
    def reference(self) -> Dict[Shape, float]:
        return dict(self._reference)

    # ------------------------------------------------------------------
    # Observation and detection
    # ------------------------------------------------------------------

    def observe(self, shape: Shape) -> None:
        """Record one executed query's (topology, size)."""
        self._window.append(shape)
        self._observed += 1

    def observe_query(self, query: QueryPattern) -> None:
        self.observe((query.topology().value, query.size))

    def window_shares(self) -> Dict[Shape, float]:
        """The current window's shape distribution."""
        if not self._window:
            return {}
        counts = Counter(self._window)
        total = len(self._window)
        return {shape: count / total for shape, count in counts.items()}

    def check(self) -> Optional[DriftReport]:
        """A :class:`DriftReport` when the workload drifted, else None."""
        if self._observed < self.min_queries or not self._reference:
            return None
        window = self.window_shares()
        distance = total_variation(self._reference, window)
        if distance < self.threshold:
            return None
        covered = set(self._reference)
        emerging = tuple(
            sorted(
                shape
                for shape, share in window.items()
                if share >= self.hot_share and shape not in covered
            )
        )
        fading = tuple(
            sorted(
                shape
                for shape in covered
                if window.get(shape, 0.0) <= self.cold_share
            )
        )
        return DriftReport(
            distance=distance,
            emerging=emerging,
            fading=fading,
            window_shares=window,
        )

    def reset(self) -> None:
        """Clear the window (after the framework has adapted)."""
        self._window.clear()
        self._observed = 0


@dataclass
class AdaptationEvent:
    """One adaptation the execution phase performed."""

    report: DriftReport
    added: Tuple[Shape, ...]
    dropped: Tuple[Shape, ...]


class AdaptiveLMKG(Estimator):
    """The execution-phase loop: estimate, monitor, adapt.

    Wraps a fitted :class:`LMKG` façade.  Every ``estimate`` records the
    query's shape; once the monitor reports drift, models are fitted for
    emerging shapes and dropped for fading ones, the reference becomes
    the drifted window, and the window restarts.

    Only shape-grouped models can be dropped precisely; for coarser
    groupings the drop is skipped (the grouped model still answers).
    """

    def __init__(
        self,
        framework: LMKG,
        monitor: Optional[WorkloadMonitor] = None,
        queries_per_shape: int = 500,
    ) -> None:
        self.framework = framework
        self.monitor = monitor or WorkloadMonitor()
        self.queries_per_shape = queries_per_shape
        self.events: List[AdaptationEvent] = []
        #: shapes fitted on demand when an uncovered query arrived
        #: before the drift detector fired.
        self.cold_starts: List[Shape] = []
        if not self.monitor.reference and framework.models:
            covered = self._covered_shapes()
            if covered:
                self.monitor.set_reference_from_shapes(sorted(covered))

    def _covered_shapes(self) -> Set[Shape]:
        shapes: Set[Shape] = set()
        for key, topologies in self.framework._group_topologies.items():
            max_size = self.framework._group_max_size.get(key, 0)
            for topology in topologies:
                for size in range(2, max_size + 1):
                    shapes.add((topology, size))
        return shapes

    def _estimate_one(self, query: QueryPattern) -> float:
        """Estimate and feed the monitor; adapts on detected drift.

        A query whose shape no model covers triggers an immediate
        *cold-start* fit for that shape — the execution phase must still
        answer it; the drift detector then governs dropping stale models
        and pre-emptive additions.
        """
        self.monitor.observe_query(query)
        report = self.monitor.check()
        if report is not None:
            self._adapt(report)
        try:
            return self.framework.estimate(query)
        except EstimationError:
            shape = (query.topology().value, query.size)
            if shape[0] not in ("star", "chain", "tree"):
                raise
            self.framework.fit(
                shapes=[shape],
                queries_per_shape=self.queries_per_shape,
            )
            self.cold_starts.append(shape)
            return self.framework.estimate(query)

    def _adapt(self, report: DriftReport) -> None:
        # Emerging shapes already covered by a cold-start fit keep
        # their model; only genuinely missing ones are trained.
        to_fit = [
            shape
            for shape in report.emerging
            if self.framework.grouping.key(*shape)
            not in self.framework.models
        ]
        added: List[Shape] = []
        if to_fit:
            self.framework.fit(
                shapes=to_fit,
                queries_per_shape=self.queries_per_shape,
            )
            added = to_fit
        dropped: List[Shape] = []
        for shape in report.fading:
            key = self.framework.grouping.key(*shape)
            if key in self.framework.models and self._key_is_exact(
                key, shape
            ):
                del self.framework.models[key]
                dropped.append(shape)
        self.monitor.set_reference(report.window_shares)
        self.monitor.reset()
        self.events.append(
            AdaptationEvent(
                report=report,
                added=tuple(added),
                dropped=tuple(dropped),
            )
        )

    def _key_is_exact(self, key, shape: Shape) -> bool:
        """True when *key*'s model answers only *shape* (safe to drop)."""
        topologies = self.framework._group_topologies.get(key, set())
        max_size = self.framework._group_max_size.get(key, 0)
        return topologies == {shape[0]} and max_size == shape[1]
