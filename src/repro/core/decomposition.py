"""Query decomposition for composite patterns (paper §IV, Fig. 1).

A query that mixes topologies (e.g. a star whose arm continues into a
chain) is decomposed into maximal star and chain components that the
trained models can answer; the component estimates are then combined
under a uniformity assumption on the join variables.

Decomposition strategy:

1. group triples by subject — subjects with >= 2 triples become star
   components;
2. stitch the remaining triples into maximal chains by following
   object->subject links;
3. leftover lone triples become single-triple components (answered
   exactly from the store's indexes, as any engine would).

Combination: for components ``C1..Cm`` joined on shared variables, the
estimate is ``prod card(Ci) / prod |dom(v)|`` with one divisor per extra
occurrence of each shared variable — the classic join-uniformity
correction with the node count as the domain size.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import TriplePattern, Variable


def decompose(query: QueryPattern) -> List[QueryPattern]:
    """Split a composite query into star/chain/single components.

    Star and chain queries pass through unchanged.
    """
    topo = query.topology().value
    if topo in ("star", "chain", "single"):
        return [query]

    by_subject: Dict[object, List[TriplePattern]] = defaultdict(list)
    for tp in query.triples:
        by_subject[tp.s].append(tp)

    components: List[QueryPattern] = []
    leftovers: List[TriplePattern] = []
    for subject, triples in by_subject.items():
        if len(triples) >= 2:
            components.append(QueryPattern(triples))
        else:
            leftovers.extend(triples)

    components.extend(_stitch_chains(leftovers))
    return components


def _stitch_chains(
    triples: Sequence[TriplePattern],
) -> List[QueryPattern]:
    """Greedily link triples into maximal chains via object->subject."""
    remaining = list(triples)
    chains: List[QueryPattern] = []
    while remaining:
        chain = [remaining.pop(0)]
        grew = True
        while grew:
            grew = False
            for i, tp in enumerate(remaining):
                if tp.s == chain[-1].o:
                    chain.append(remaining.pop(i))
                    grew = True
                    break
                if tp.o == chain[0].s:
                    chain.insert(0, remaining.pop(i))
                    grew = True
                    break
        chains.append(QueryPattern(chain))
    return chains


def shared_variables(
    components: Sequence[QueryPattern],
) -> Dict[Variable, int]:
    """Variables appearing in more than one component, with their
    component counts."""
    counts: Dict[Variable, int] = defaultdict(int)
    for component in components:
        for var in component.variables:
            counts[var] += 1
    return {v: c for v, c in counts.items() if c > 1}


def combine_estimates(
    store: TripleStore,
    components: Sequence[QueryPattern],
    estimates: Sequence[float],
) -> float:
    """Combine per-component estimates into one for the conjunction.

    Multiplies component cardinalities and divides by the node-domain
    size once per extra occurrence of each shared variable (uniform join
    selectivity ``1/|dom|``).
    """
    if len(components) != len(estimates):
        raise ValueError("components and estimates disagree")
    if not components:
        raise ValueError("nothing to combine")
    product = 1.0
    for estimate in estimates:
        product *= max(float(estimate), 0.0)
    domain = max(store.num_nodes, 1)
    for _, count in shared_variables(components).items():
        product /= float(domain) ** (count - 1)
    return product
