"""Model grouping strategies (paper §VII-B).

LMKG can maintain one model per (topology, size) — *specialized* — or
share models across query types and/or sizes.  A grouping strategy maps a
query's (topology, size) to the key of the model responsible for it, and
conversely partitions a workload into per-model training sets.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.sampling.workload import QueryRecord

GroupKey = Hashable


class GroupingStrategy:
    """Maps (topology, size) to a model key."""

    name: str = "abstract"

    def key(self, topology: str, size: int) -> GroupKey:
        raise NotImplementedError

    def partition(
        self, records: Sequence[QueryRecord]
    ) -> Dict[GroupKey, List[QueryRecord]]:
        """Split a workload into per-model training sets."""
        groups: Dict[GroupKey, List[QueryRecord]] = {}
        for record in records:
            groups.setdefault(
                self.key(record.topology, record.size), []
            ).append(record)
        return groups

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SpecializedGrouping(GroupingStrategy):
    """One model per (topology, size) — best accuracy, most models."""

    name = "specialized"

    def key(self, topology: str, size: int) -> GroupKey:
        return (topology, size)


class TypeGrouping(GroupingStrategy):
    """One model per topology, covering all sizes."""

    name = "type"

    def key(self, topology: str, size: int) -> GroupKey:
        return topology


class SizeGrouping(GroupingStrategy):
    """One model per size range, shared across topologies.

    ``boundaries`` are inclusive upper bounds: boundaries (4,) creates a
    model for sizes <= 4 and one for everything larger — the example in
    §VII-B.
    """

    name = "size"

    def __init__(self, boundaries: Sequence[int] = (4,)) -> None:
        self.boundaries = tuple(sorted(boundaries))
        if not self.boundaries:
            raise ValueError("need at least one size boundary")

    def key(self, topology: str, size: int) -> GroupKey:
        for bound in self.boundaries:
            if size <= bound:
                return f"size<={bound}"
        return f"size>{self.boundaries[-1]}"

    def __repr__(self) -> str:
        return f"SizeGrouping(boundaries={self.boundaries})"


class SingleGrouping(GroupingStrategy):
    """One model for every query type and size (the SingleModel of Fig. 7)."""

    name = "single"

    def key(self, topology: str, size: int) -> GroupKey:
        return "all"


def make_grouping(name: str, **kwargs) -> GroupingStrategy:
    """Factory by name: specialized / type / size / single."""
    strategies = {
        "specialized": SpecializedGrouping,
        "type": TypeGrouping,
        "size": SizeGrouping,
        "single": SingleGrouping,
    }
    cls = strategies.get(name)
    if cls is None:
        raise KeyError(
            f"unknown grouping {name!r}; one of {sorted(strategies)}"
        )
    return cls(**kwargs)


def group_extent(
    records: Sequence[QueryRecord],
) -> Tuple[List[str], int]:
    """(topologies, max size) covered by a record set — the dimensions a
    shared model must be built with."""
    topologies = sorted({r.topology for r in records})
    max_size = max(r.size for r in records)
    return topologies, max_size
