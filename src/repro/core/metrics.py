"""Accuracy metrics: the q-error and its workload aggregates (§VI-A)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def q_error(estimate: float, truth: float) -> float:
    """q-error = max(est/true, true/est), both clamped to >= 1.

    The clamp matches the evaluation convention of the paper and G-CARE:
    estimators returning 0 (or below 1) for a non-empty result are scored
    as if they answered 1.
    """
    est = max(float(estimate), 1.0)
    tru = max(float(truth), 1.0)
    return max(est / tru, tru / est)


def q_errors(
    estimates: Sequence[float], truths: Sequence[float]
) -> np.ndarray:
    """Vector of per-query q-errors."""
    est = np.maximum(np.asarray(estimates, dtype=np.float64), 1.0)
    tru = np.maximum(np.asarray(truths, dtype=np.float64), 1.0)
    if est.shape != tru.shape:
        raise ValueError("estimates and truths differ in length")
    return np.maximum(est / tru, tru / est)


@dataclass(frozen=True)
class AccuracySummary:
    """Aggregate q-error statistics over one workload."""

    count: int
    mean: float
    geometric_mean: float
    median: float
    p90: float
    p99: float
    max: float

    def row(self) -> str:
        return (
            f"n={self.count:4d} mean={self.mean:10.2f} "
            f"gmean={self.geometric_mean:8.2f} median={self.median:8.2f} "
            f"p90={self.p90:10.2f} p99={self.p99:12.2f} "
            f"max={self.max:12.2f}"
        )


def summarize(
    estimates: Sequence[float], truths: Sequence[float]
) -> AccuracySummary:
    """Aggregate q-errors the way the paper's figures report them."""
    errors = q_errors(estimates, truths)
    if errors.size == 0:
        nan = float("nan")
        return AccuracySummary(0, nan, nan, nan, nan, nan, nan)
    return AccuracySummary(
        count=int(errors.size),
        mean=float(errors.mean()),
        geometric_mean=float(np.exp(np.log(errors).mean())),
        median=float(np.median(errors)),
        p90=float(np.percentile(errors, 90)),
        p99=float(np.percentile(errors, 99)),
        max=float(errors.max()),
    )
