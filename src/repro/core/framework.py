"""The LMKG framework façade (paper §IV, Fig. 1).

Bundles the creation phase — choose models per the grouping strategy,
generate training data, train — and the execution phase — route a query
to the model covering its (topology, size), decomposing composite queries
first.

The framework speaks the unified
:class:`~repro.core.estimator.Estimator` protocol:
``estimate_batch(queries) -> np.ndarray`` is the primary surface (one
encoding pass + one forward per routed model), and ``estimate`` is the
derived one-query form.  The serving layer (:mod:`repro.serve`) builds
directly on this surface.

Typical use::

    from repro import LMKG
    framework = LMKG(store, model_type="supervised", grouping="size")
    framework.fit(shapes=[("star", 2), ("star", 3), ("chain", 2)])
    framework.estimate_batch(queries)   # -> np.ndarray
    framework.save(checkpoint_dir)      # later: LMKG.load(dir, store)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.decomposition import combine_estimates, decompose
from repro.core.estimator import Estimator
from repro.core.grouping import (
    GroupingStrategy,
    SpecializedGrouping,
    group_extent,
    make_grouping,
)
from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.sampling.workload import QueryRecord, generate_workload

Shape = Tuple[str, int]


class EstimationError(RuntimeError):
    """Raised when no trained model can answer a query component."""


class CheckpointError(RuntimeError):
    """Raised when a framework checkpoint directory cannot be loaded."""


@dataclass
class CreationReport:
    """What the creation phase built: model keys and training sizes."""

    model_keys: List[Hashable] = field(default_factory=list)
    training_records: Dict[Hashable, int] = field(default_factory=dict)


class LMKG(Estimator):
    """Compound estimator: a set of learned models plus routing logic."""

    name = "lmkg"

    def __init__(
        self,
        store: TripleStore,
        model_type: str = "supervised",
        grouping: Union[str, GroupingStrategy] = "size",
        lmkgs_config: Optional[LMKGSConfig] = None,
        lmkgu_config: Optional[LMKGUConfig] = None,
        seed: int = 0,
    ) -> None:
        if model_type not in ("supervised", "unsupervised"):
            raise ValueError(f"unknown model type {model_type!r}")
        self.store = store
        self.model_type = model_type
        if model_type == "unsupervised":
            # LMKG-U is per-shape by construction (§VIII-B: query size and
            # type grouping); a coarser grouping cannot apply.
            self.grouping: GroupingStrategy = SpecializedGrouping()
        elif isinstance(grouping, GroupingStrategy):
            self.grouping = grouping
        else:
            self.grouping = make_grouping(grouping)
        self.lmkgs_config = lmkgs_config
        self.lmkgu_config = lmkgu_config
        self.seed = seed
        self.models: Dict[Hashable, Union[LMKGS, LMKGU]] = {}
        self._group_max_size: Dict[Hashable, int] = {}
        self._group_topologies: Dict[Hashable, set] = {}

    # ------------------------------------------------------------------
    # Creation phase
    # ------------------------------------------------------------------

    def fit(
        self,
        shapes: Sequence[Shape],
        workload: Optional[Sequence[QueryRecord]] = None,
        queries_per_shape: int = 2_000,
    ) -> CreationReport:
        """Train the models covering *shapes*.

        With no sample *workload*, training data is generated from the
        store (supervised: sampled queries labelled with exact counts;
        unsupervised: bound instances).
        """
        report = CreationReport()
        if self.model_type == "unsupervised":
            for topology, size in shapes:
                key = self.grouping.key(topology, size)
                config = self.lmkgu_config or LMKGUConfig(seed=self.seed)
                model = LMKGU(self.store, topology, size, config)
                model.fit()
                self.models[key] = model
                self._group_max_size[key] = size
                self._group_topologies[key] = {topology}
                report.model_keys.append(key)
                report.training_records[key] = config.training_samples
            return report

        records = (
            list(workload)
            if workload is not None
            else self._generate_training_data(shapes, queries_per_shape)
        )
        for key, group in self.grouping.partition(records).items():
            topologies, max_size = group_extent(group)
            config = self.lmkgs_config or LMKGSConfig(seed=self.seed)
            model = LMKGS(self.store, topologies, max_size, config)
            model.fit(group)
            self.models[key] = model
            self._group_max_size[key] = max_size
            self._group_topologies[key] = {r.topology for r in group}
            report.model_keys.append(key)
            report.training_records[key] = len(group)
        return report

    def _generate_training_data(
        self, shapes: Sequence[Shape], queries_per_shape: int
    ) -> List[QueryRecord]:
        from repro.sampling.trees import generate_tree_workload

        records: List[QueryRecord] = []
        for i, (topology, size) in enumerate(shapes):
            if topology == "tree":
                workload = generate_tree_workload(
                    self.store,
                    size,
                    num_queries=queries_per_shape,
                    seed=self.seed + 37 * i,
                )
            else:
                workload = generate_workload(
                    self.store,
                    topology,
                    size,
                    num_queries=queries_per_shape,
                    seed=self.seed + 37 * i,
                )
            records.extend(workload.records)
        return records

    # ------------------------------------------------------------------
    # Execution phase
    # ------------------------------------------------------------------

    def _estimate_batch(
        self, queries: Sequence[QueryPattern]
    ) -> List[float]:
        """Batched estimation: one featurize + one forward per model.

        The one estimation routine of the framework (``estimate`` is the
        protocol-derived one-query batch).  Composite queries are
        answered by a trained tree model where possible, otherwise
        decomposed into star/chain components; components landing on the
        same trained model are collected and answered by a single
        ``estimate_batch`` call on it (one encoding pass + one network
        forward for LMKG-S / one shared particle sweep for LMKG-U).
        Models without a batch path fall back to a per-component
        ``estimate`` loop, so every caller gets the same one-call API
        regardless of model support.
        """
        queries = list(queries)
        results: List[Optional[float]] = [None] * len(queries)
        #: (query index, components, per-component estimate slots)
        pending: List[Tuple[int, List[QueryPattern], List[Optional[float]]]]
        pending = []
        grouped: Dict[int, List[Tuple[int, int, QueryPattern]]] = {}
        models_by_id: Dict[int, Union[LMKGS, LMKGU]] = {}
        for qi, query in enumerate(queries):
            if query.topology() is Topology.COMPOSITE:
                tree_estimate = self._try_tree_model(query)
                if tree_estimate is not None:
                    results[qi] = tree_estimate
                    continue
            components = decompose(query)
            slots: List[Optional[float]] = [None] * len(components)
            entry = len(pending)
            pending.append((qi, components, slots))
            for ci, component in enumerate(components):
                resolved = self._resolve_component(component)
                if isinstance(resolved, float):
                    slots[ci] = resolved
                else:
                    models_by_id[id(resolved)] = resolved
                    grouped.setdefault(id(resolved), []).append(
                        (entry, ci, component)
                    )
        for model_id, items in grouped.items():
            model = models_by_id[model_id]
            components = [c for _, _, c in items]
            if hasattr(model, "estimate_batch"):
                batch = model.estimate_batch(components)
            else:
                batch = [model.estimate(c) for c in components]
            for (entry, ci, _), value in zip(items, batch):
                pending[entry][2][ci] = max(float(value), 0.0)
        for qi, components, slots in pending:
            if len(slots) == 1:
                results[qi] = slots[0]
            else:
                results[qi] = combine_estimates(
                    self.store, components, slots
                )
        return [float(r) for r in results]

    def _resolve_component(
        self, component: QueryPattern
    ) -> Union[float, LMKGS, LMKGU]:
        """A final estimate when answerable directly, else the model to
        batch the component through.

        Single triple patterns are answered exactly from the indexes, as
        every RDF engine does; a star/chain whose shape lacks a model can
        still be absorbed by a trained tree model (a star/chain is also a
        tree).
        """
        if component.size == 1:
            return float(self.store.count_pattern(component.triples[0]))
        topology = component.topology()
        if topology is not Topology.COMPOSITE:
            try:
                return self._model_for(topology.value, component.size)
            except EstimationError:
                tree_estimate = self._try_tree_model(component)
                if tree_estimate is not None:
                    return tree_estimate
                raise
        return self._estimate_composite_component(component)

    def _try_tree_model(self, query: QueryPattern) -> Optional[float]:
        from repro.rdf.treecount import is_tree_query

        key = self.grouping.key("tree", query.size)
        model = self.models.get(key)
        if model is None or isinstance(model, LMKGU):
            return None
        # Only answer directly when the model actually saw tree queries;
        # an untouched star/chain model would extrapolate blindly.
        if "tree" not in self._group_topologies.get(key, set()):
            return None
        if query.size > self._group_max_size.get(key, 0):
            return None
        if not is_tree_query(query):
            return None
        return max(float(model.estimate(query)), 0.0)

    def _estimate_composite_component(
        self, component: QueryPattern
    ) -> float:
        # Decomposition only emits stars, chains, and singles; reaching
        # here means a bug upstream, except for tree-shaped leftovers a
        # trained tree model can still absorb.
        tree_estimate = self._try_tree_model(component)
        if tree_estimate is not None:
            return tree_estimate
        raise EstimationError(
            "decomposition produced a composite component; "
            f"cannot estimate {component!r}"
        )

    def _model_for(
        self, topology: str, size: int
    ) -> Union[LMKGS, LMKGU]:
        key = self.grouping.key(topology, size)
        model = self.models.get(key)
        if model is None:
            raise EstimationError(
                f"no model trained for key {key!r} "
                f"(topology={topology}, size={size})"
            )
        if size > self._group_max_size.get(key, 0):
            raise EstimationError(
                f"model {key!r} covers sizes up to "
                f"{self._group_max_size[key]}, query has {size}"
            )
        if isinstance(model, LMKGU) and model.size != size:
            raise EstimationError(
                f"LMKG-U model {key!r} is fixed to size {model.size}"
            )
        return model

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Total in-memory size of all trained models (LMKG-U models
        count their float64 masters plus fused float32 caches)."""
        return sum(m.memory_bytes() for m in self.models.values())

    def checkpoint_bytes(self) -> int:
        """Total serialized size at checkpoint precision (Table II)."""
        return sum(m.checkpoint_bytes() for m in self.models.values())

    def num_models(self) -> int:
        return len(self.models)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    _MANIFEST_FORMAT = "repro-lmkg-framework"
    _MANIFEST_VERSION = 1

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the whole framework to a checkpoint directory.

        One ``model_<i>.npz`` per trained model plus ``manifest.json``
        recording the grouping strategy, model type, and each model's
        routing extent (key, max size, topologies).  The manifest is
        written last, so its presence marks a complete checkpoint.
        ``LMKG.load(path, store)`` rebuilds an identical framework
        against the same store (or a snapshot of it).  Checkpoints hold
        the float64 training masters bit-exactly; the fused float32
        inference caches are derived state and rebuilt on first use
        after a load.
        """
        if not self.models:
            raise RuntimeError("save() before fit()")
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        entries = []
        for i, (key, model) in enumerate(self.models.items()):
            filename = f"model_{i}.npz"
            model.save(path / filename)
            entries.append(
                {
                    "key": list(key) if isinstance(key, tuple) else key,
                    "key_is_tuple": isinstance(key, tuple),
                    "kind": (
                        "lmkg-u" if isinstance(model, LMKGU) else "lmkg-s"
                    ),
                    "file": filename,
                    "max_size": int(self._group_max_size.get(key, 0)),
                    "topologies": sorted(
                        self._group_topologies.get(key, set())
                    ),
                }
            )
        grouping: Dict[str, object] = {"name": self.grouping.name}
        boundaries = getattr(self.grouping, "boundaries", None)
        if boundaries is not None:
            grouping["boundaries"] = list(boundaries)
        # Fingerprint of the training graph: the term encoders only
        # derive widths from the store, so a checkpoint loaded against
        # a *different* graph with matching widths would silently serve
        # garbage — load() refuses instead.
        store_info: Dict[str, object] = {
            "num_triples": len(self.store),
            "num_nodes": self.store.num_nodes,
            "num_predicates": self.store.num_predicates,
        }
        if self.store.dictionary is not None:
            store_info["dictionary_checksum"] = (
                self.store.dictionary.checksum()
            )
        manifest = {
            "format": self._MANIFEST_FORMAT,
            "version": self._MANIFEST_VERSION,
            "model_type": self.model_type,
            "seed": self.seed,
            "grouping": grouping,
            "store": store_info,
            "models": entries,
        }
        manifest_path = path / "manifest.json"
        manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        return manifest_path

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        store: TripleStore,
        allow_stale_store: bool = False,
    ) -> "LMKG":
        """Rebuild a saved framework against *store*.

        The store must be the graph the models were trained on (or a
        snapshot of it): the term encoders derive their widths from the
        store's node/predicate counts.

        ``allow_stale_store=True`` relaxes exactly one check — the
        triple-count equality — for the incremental-maintenance path
        (:mod:`repro.maintain`), which deliberately loads a checkpoint
        against a graph that has gained or lost triples since training
        in order to fine-tune it.  The vocabulary gates (node/predicate
        counts, dictionary checksum) still hold: the encoders derive
        their widths from them, so a vocabulary change can never be
        absorbed by fine-tuning and always forces a full rebuild.
        """
        path = Path(path)
        manifest_path = path / "manifest.json"
        if not manifest_path.is_file():
            raise CheckpointError(
                f"no framework manifest at {manifest_path}"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt manifest: {exc}") from exc
        if manifest.get("format") != cls._MANIFEST_FORMAT:
            raise CheckpointError(
                f"not a framework checkpoint: {manifest_path}"
            )
        if manifest.get("version") != cls._MANIFEST_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version "
                f"{manifest.get('version')!r}"
            )
        store_info = manifest.get("store", {})
        checks = [
            ("num_nodes", store.num_nodes),
            ("num_predicates", store.num_predicates),
        ]
        if not allow_stale_store:
            checks.insert(0, ("num_triples", len(store)))
        mismatches = [
            f"{key}: checkpoint {store_info[key]} vs store {actual}"
            for key, actual in checks
            if store_info.get(key) not in (None, actual)
        ]
        saved_checksum = store_info.get("dictionary_checksum")
        if (
            saved_checksum is not None
            and store.dictionary is not None
            and store.dictionary.checksum() != saved_checksum
        ):
            mismatches.append("dictionary checksum differs")
        if mismatches:
            raise CheckpointError(
                "checkpoint was saved against a different graph ("
                + "; ".join(mismatches)
                + ")"
            )
        grouping_spec = manifest["grouping"]
        kwargs = (
            {"boundaries": tuple(grouping_spec["boundaries"])}
            if "boundaries" in grouping_spec
            else {}
        )
        framework = cls(
            store,
            model_type=manifest["model_type"],
            grouping=make_grouping(grouping_spec["name"], **kwargs),
            seed=int(manifest.get("seed", 0)),
        )
        for entry in manifest["models"]:
            key: Hashable = (
                tuple(entry["key"])
                if entry.get("key_is_tuple")
                else entry["key"]
            )
            loader = LMKGU if entry["kind"] == "lmkg-u" else LMKGS
            try:
                model = loader.load(path / entry["file"], store)
            except (OSError, KeyError, ValueError) as exc:
                raise CheckpointError(
                    f"cannot load {entry['file']}: {exc}"
                ) from exc
            framework.models[key] = model
            framework._group_max_size[key] = int(entry["max_size"])
            framework._group_topologies[key] = set(entry["topologies"])
        return framework
