"""The LMKG framework façade (paper §IV, Fig. 1).

Bundles the creation phase — choose models per the grouping strategy,
generate training data, train — and the execution phase — route a query
to the model covering its (topology, size), decomposing composite queries
first.

Typical use::

    from repro import LMKG
    framework = LMKG(store, model_type="supervised", grouping="size")
    framework.fit(shapes=[("star", 2), ("star", 3), ("chain", 2)])
    framework.estimate(query)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.decomposition import combine_estimates, decompose
from repro.core.grouping import (
    GroupingStrategy,
    SpecializedGrouping,
    group_extent,
    make_grouping,
)
from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.sampling.workload import QueryRecord, generate_workload

Shape = Tuple[str, int]


class EstimationError(RuntimeError):
    """Raised when no trained model can answer a query component."""


@dataclass
class CreationReport:
    """What the creation phase built: model keys and training sizes."""

    model_keys: List[Hashable] = field(default_factory=list)
    training_records: Dict[Hashable, int] = field(default_factory=dict)


class LMKG:
    """Compound estimator: a set of learned models plus routing logic."""

    def __init__(
        self,
        store: TripleStore,
        model_type: str = "supervised",
        grouping: Union[str, GroupingStrategy] = "size",
        lmkgs_config: Optional[LMKGSConfig] = None,
        lmkgu_config: Optional[LMKGUConfig] = None,
        seed: int = 0,
    ) -> None:
        if model_type not in ("supervised", "unsupervised"):
            raise ValueError(f"unknown model type {model_type!r}")
        self.store = store
        self.model_type = model_type
        if model_type == "unsupervised":
            # LMKG-U is per-shape by construction (§VIII-B: query size and
            # type grouping); a coarser grouping cannot apply.
            self.grouping: GroupingStrategy = SpecializedGrouping()
        elif isinstance(grouping, GroupingStrategy):
            self.grouping = grouping
        else:
            self.grouping = make_grouping(grouping)
        self.lmkgs_config = lmkgs_config
        self.lmkgu_config = lmkgu_config
        self.seed = seed
        self.models: Dict[Hashable, Union[LMKGS, LMKGU]] = {}
        self._group_max_size: Dict[Hashable, int] = {}
        self._group_topologies: Dict[Hashable, set] = {}

    # ------------------------------------------------------------------
    # Creation phase
    # ------------------------------------------------------------------

    def fit(
        self,
        shapes: Sequence[Shape],
        workload: Optional[Sequence[QueryRecord]] = None,
        queries_per_shape: int = 2_000,
    ) -> CreationReport:
        """Train the models covering *shapes*.

        With no sample *workload*, training data is generated from the
        store (supervised: sampled queries labelled with exact counts;
        unsupervised: bound instances).
        """
        report = CreationReport()
        if self.model_type == "unsupervised":
            for topology, size in shapes:
                key = self.grouping.key(topology, size)
                config = self.lmkgu_config or LMKGUConfig(seed=self.seed)
                model = LMKGU(self.store, topology, size, config)
                model.fit()
                self.models[key] = model
                self._group_max_size[key] = size
                self._group_topologies[key] = {topology}
                report.model_keys.append(key)
                report.training_records[key] = config.training_samples
            return report

        records = (
            list(workload)
            if workload is not None
            else self._generate_training_data(shapes, queries_per_shape)
        )
        for key, group in self.grouping.partition(records).items():
            topologies, max_size = group_extent(group)
            config = self.lmkgs_config or LMKGSConfig(seed=self.seed)
            model = LMKGS(self.store, topologies, max_size, config)
            model.fit(group)
            self.models[key] = model
            self._group_max_size[key] = max_size
            self._group_topologies[key] = {r.topology for r in group}
            report.model_keys.append(key)
            report.training_records[key] = len(group)
        return report

    def _generate_training_data(
        self, shapes: Sequence[Shape], queries_per_shape: int
    ) -> List[QueryRecord]:
        from repro.sampling.trees import generate_tree_workload

        records: List[QueryRecord] = []
        for i, (topology, size) in enumerate(shapes):
            if topology == "tree":
                workload = generate_tree_workload(
                    self.store,
                    size,
                    num_queries=queries_per_shape,
                    seed=self.seed + 37 * i,
                )
            else:
                workload = generate_workload(
                    self.store,
                    topology,
                    size,
                    num_queries=queries_per_shape,
                    seed=self.seed + 37 * i,
                )
            records.extend(workload.records)
        return records

    # ------------------------------------------------------------------
    # Execution phase
    # ------------------------------------------------------------------

    def estimate(self, query: QueryPattern) -> float:
        """Estimated cardinality, decomposing composite queries.

        Tree-shaped composites are answered directly when a tree model
        was trained (the SG-Encoding covers arbitrary topologies);
        otherwise the query is decomposed into star/chain components.
        """
        if query.topology() is Topology.COMPOSITE:
            tree_estimate = self._try_tree_model(query)
            if tree_estimate is not None:
                return tree_estimate
        components = decompose(query)
        if len(components) == 1:
            return self._estimate_component(components[0])
        estimates = [self._estimate_component(c) for c in components]
        return combine_estimates(self.store, components, estimates)

    def estimate_batch(
        self, queries: Sequence[QueryPattern]
    ) -> List[float]:
        """Batched estimation: one featurize + one forward per model.

        Queries are decomposed exactly as :meth:`estimate` does;
        components landing on the same trained model are collected and
        answered by a single ``estimate_batch`` call on it (one encoding
        pass + one network forward for LMKG-S / one shared particle
        sweep for LMKG-U).  Models without a batch path fall back to a
        per-component ``estimate`` loop, so every caller gets the same
        one-call API regardless of model support.
        """
        queries = list(queries)
        results: List[Optional[float]] = [None] * len(queries)
        #: (query index, components, per-component estimate slots)
        pending: List[Tuple[int, List[QueryPattern], List[Optional[float]]]]
        pending = []
        grouped: Dict[int, List[Tuple[int, int, QueryPattern]]] = {}
        models_by_id: Dict[int, Union[LMKGS, LMKGU]] = {}
        for qi, query in enumerate(queries):
            if query.topology() is Topology.COMPOSITE:
                tree_estimate = self._try_tree_model(query)
                if tree_estimate is not None:
                    results[qi] = tree_estimate
                    continue
            components = decompose(query)
            slots: List[Optional[float]] = [None] * len(components)
            entry = len(pending)
            pending.append((qi, components, slots))
            for ci, component in enumerate(components):
                resolved = self._resolve_component(component)
                if isinstance(resolved, float):
                    slots[ci] = resolved
                else:
                    models_by_id[id(resolved)] = resolved
                    grouped.setdefault(id(resolved), []).append(
                        (entry, ci, component)
                    )
        for model_id, items in grouped.items():
            model = models_by_id[model_id]
            components = [c for _, _, c in items]
            if hasattr(model, "estimate_batch"):
                batch = model.estimate_batch(components)
            else:
                batch = [model.estimate(c) for c in components]
            for (entry, ci, _), value in zip(items, batch):
                pending[entry][2][ci] = max(float(value), 0.0)
        for qi, components, slots in pending:
            if len(slots) == 1:
                results[qi] = slots[0]
            else:
                results[qi] = combine_estimates(
                    self.store, components, slots
                )
        return [float(r) for r in results]

    def _resolve_component(
        self, component: QueryPattern
    ) -> Union[float, LMKGS, LMKGU]:
        """A final estimate when answerable directly, else the model to
        batch the component through (mirrors :meth:`_estimate_component`).
        """
        if component.size == 1:
            return float(self.store.count_pattern(component.triples[0]))
        topology = component.topology()
        if topology is not Topology.COMPOSITE:
            try:
                return self._model_for(topology.value, component.size)
            except EstimationError:
                tree_estimate = self._try_tree_model(component)
                if tree_estimate is not None:
                    return tree_estimate
                raise
        return self._estimate_composite_component(component)

    def _try_tree_model(self, query: QueryPattern) -> Optional[float]:
        from repro.rdf.treecount import is_tree_query

        key = self.grouping.key("tree", query.size)
        model = self.models.get(key)
        if model is None or isinstance(model, LMKGU):
            return None
        # Only answer directly when the model actually saw tree queries;
        # an untouched star/chain model would extrapolate blindly.
        if "tree" not in self._group_topologies.get(key, set()):
            return None
        if query.size > self._group_max_size.get(key, 0):
            return None
        if not is_tree_query(query):
            return None
        return max(float(model.estimate(query)), 0.0)

    def _estimate_component(self, component: QueryPattern) -> float:
        if component.size == 1:
            # Single triple patterns are answered exactly from the indexes,
            # as every RDF engine does.
            return float(self.store.count_pattern(component.triples[0]))
        topology = component.topology()
        if topology is not Topology.COMPOSITE:
            try:
                model = self._model_for(topology.value, component.size)
            except EstimationError:
                # A star/chain is also a tree; a trained tree model can
                # stand in when no shape-specific model exists.
                tree_estimate = self._try_tree_model(component)
                if tree_estimate is not None:
                    return tree_estimate
                raise
            return max(float(model.estimate(component)), 0.0)
        return self._estimate_composite_component(component)

    def _estimate_composite_component(
        self, component: QueryPattern
    ) -> float:
        # Decomposition only emits stars, chains, and singles; reaching
        # here means a bug upstream, except for tree-shaped leftovers a
        # trained tree model can still absorb.
        tree_estimate = self._try_tree_model(component)
        if tree_estimate is not None:
            return tree_estimate
        raise EstimationError(
            "decomposition produced a composite component; "
            f"cannot estimate {component!r}"
        )

    def _model_for(
        self, topology: str, size: int
    ) -> Union[LMKGS, LMKGU]:
        key = self.grouping.key(topology, size)
        model = self.models.get(key)
        if model is None:
            raise EstimationError(
                f"no model trained for key {key!r} "
                f"(topology={topology}, size={size})"
            )
        if size > self._group_max_size.get(key, 0):
            raise EstimationError(
                f"model {key!r} covers sizes up to "
                f"{self._group_max_size[key]}, query has {size}"
            )
        if isinstance(model, LMKGU) and model.size != size:
            raise EstimationError(
                f"LMKG-U model {key!r} is fixed to size {model.size}"
            )
        return model

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Total checkpoint size of all trained models."""
        return sum(m.memory_bytes() for m in self.models.values())

    def num_models(self) -> int:
        return len(self.models)
