"""Workload-driven model choice (paper §IV, "Model choice").

Given a sample workload and a memory budget, LMKG "can decide which
models have a higher priority".  :class:`ModelPlanner` implements that
decision: it profiles the workload (share of queries per topology and
size), estimates each candidate model's memory, and greedily selects the
grouping plan that covers the most workload under the budget —
specialised models for hot shapes first, falling back to coarser grouped
models for the long tail.

The output is a :class:`ModelPlan` the :class:`~repro.core.framework.LMKG`
façade can execute shape-by-shape.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.encoders import binary_width
from repro.rdf.store import TripleStore
from repro.sampling.workload import QueryRecord

Shape = Tuple[str, int]


@dataclass(frozen=True)
class WorkloadProfile:
    """Share of the workload per (topology, size) shape."""

    total: int
    shares: Dict[Shape, float]

    @classmethod
    def from_records(
        cls, records: Sequence[QueryRecord]
    ) -> "WorkloadProfile":
        counts = Counter((r.topology, r.size) for r in records)
        total = sum(counts.values())
        shares = {
            shape: count / total for shape, count in counts.items()
        }
        return cls(total=total, shares=shares)

    def hot_shapes(self, threshold: float = 0.1) -> List[Shape]:
        """Shapes above *threshold* share, hottest first."""
        return [
            shape
            for shape, share in sorted(
                self.shares.items(), key=lambda kv: -kv[1]
            )
            if share >= threshold
        ]


@dataclass
class PlannedModel:
    """One model in a plan: its key, shapes, and projected memory."""

    grouping: str                  # "specialized" | "size" | "single"
    shapes: Tuple[Shape, ...]
    projected_bytes: int
    coverage: float                # workload share this model answers


@dataclass
class ModelPlan:
    """The planner's output: models to build, in priority order."""

    models: List[PlannedModel] = field(default_factory=list)
    uncovered: float = 0.0

    @property
    def total_bytes(self) -> int:
        return sum(m.projected_bytes for m in self.models)

    @property
    def coverage(self) -> float:
        return sum(m.coverage for m in self.models)

    def shapes(self) -> List[Shape]:
        seen: Dict[Shape, None] = {}
        for model in self.models:
            for shape in model.shapes:
                seen.setdefault(shape, None)
        return list(seen.keys())


def project_lmkgs_bytes(
    store: TripleStore,
    max_size: int,
    hidden_sizes: Sequence[int] = (256, 256),
) -> int:
    """Projected float32 checkpoint size of an SG-encoded LMKG-S model.

    Mirrors the architecture arithmetic of
    :func:`repro.nn.network.build_mlp` over the SG-Encoding width without
    instantiating anything.
    """
    node_bits = binary_width(max(store.num_nodes, 1))
    pred_bits = binary_width(max(store.num_predicates, 1))
    n = max_size + 1
    input_width = (
        n * n * max_size + n * node_bits + max_size * pred_bits
    )
    params = 0
    prev = input_width
    for width in hidden_sizes:
        params += prev * width + width
        prev = width
    params += prev * 1 + 1
    return params * 4


class ModelPlanner:
    """Greedy budgeted model selection over a workload profile."""

    def __init__(
        self,
        store: TripleStore,
        hidden_sizes: Sequence[int] = (256, 256),
        hot_threshold: float = 0.1,
    ) -> None:
        self.store = store
        self.hidden_sizes = tuple(hidden_sizes)
        self.hot_threshold = hot_threshold

    def plan(
        self,
        records: Sequence[QueryRecord],
        budget_bytes: Optional[int] = None,
    ) -> ModelPlan:
        """Select models for *records* under *budget_bytes*.

        Strategy: hot shapes get specialised models (best accuracy per
        §VII-B) while budget allows; the remaining shapes share one
        size-grouped model when it fits, else everything collapses into a
        single model; shapes that fit nothing are reported uncovered.
        """
        if not records:
            raise ValueError("cannot plan over an empty workload")
        profile = WorkloadProfile.from_records(records)
        budget = (
            budget_bytes if budget_bytes is not None else math.inf
        )
        plan = ModelPlan()
        spent = 0
        covered: Dict[Shape, bool] = {}

        for shape in profile.hot_shapes(self.hot_threshold):
            cost = project_lmkgs_bytes(
                self.store, shape[1], self.hidden_sizes
            )
            if spent + cost > budget:
                continue
            plan.models.append(
                PlannedModel(
                    grouping="specialized",
                    shapes=(shape,),
                    projected_bytes=cost,
                    coverage=profile.shares[shape],
                )
            )
            spent += cost
            covered[shape] = True

        remaining = [
            shape for shape in profile.shares if shape not in covered
        ]
        if remaining:
            max_size = max(size for _, size in remaining)
            cost = project_lmkgs_bytes(
                self.store, max_size, self.hidden_sizes
            )
            share = sum(profile.shares[s] for s in remaining)
            if spent + cost <= budget:
                plan.models.append(
                    PlannedModel(
                        grouping="size",
                        shapes=tuple(remaining),
                        projected_bytes=cost,
                        coverage=share,
                    )
                )
                spent += cost
                for shape in remaining:
                    covered[shape] = True
            else:
                plan.uncovered = share
        plan.uncovered = round(
            1.0 - sum(m.coverage for m in plan.models), 9
        )
        return plan
