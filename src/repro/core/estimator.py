"""The unified Estimator protocol every estimator in the repo speaks.

The query optimizer the paper positions LMKG inside calls a cardinality
estimator at very high frequency, so the whole repo — the LMKG framework
façade, the individual learned models, and every baseline — exposes one
batched surface:

    estimate_batch(queries) -> np.ndarray   # the protocol
    estimate(query) -> float                # derived: estimate_batch([q])[0]

:class:`Estimator` is a template, not just an interface.  The public
:meth:`Estimator.estimate_batch` is the single choke point where every
result vector is validated (finite, one value per query) and clamped to
``>= 0.0`` — concrete estimators implement one of two protected hooks and
never re-implement the public method:

- ``_estimate_batch(queries) -> array`` — the vectorized path (one
  featurize + one network forward per batch for the learned models), or
- ``_estimate_one(query) -> float`` — the per-query path; the default
  ``_estimate_batch`` loops it, so synopsis/sampling estimators get the
  batched API for free.

Raw estimates may be negative or garbage (an untrained head, a summary
formula's division) — the clamp lives here precisely so no caller, and no
serving layer, ever has to re-check.  A non-finite value, or a result
vector of the wrong length, is a *bug* in the estimator, and raises
:class:`EstimatorContractError` instead of silently serving NaN.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.rdf.pattern import QueryPattern


class EstimatorContractError(RuntimeError):
    """An estimator violated the protocol (NaN/inf or wrong shape)."""


def finalize_estimates(
    raw, expected: int, name: str = "estimator"
) -> np.ndarray:
    """Validate and clamp one raw batch result (the single clamp site).

    Returns a float64 vector of length *expected* with every value
    ``>= 0.0``; raises :class:`EstimatorContractError` when *raw* has the
    wrong length or contains NaN/inf.
    """
    values = np.asarray(raw, dtype=np.float64)
    if values.ndim != 1 or values.shape[0] != expected:
        raise EstimatorContractError(
            f"{name}: estimate_batch returned shape {values.shape} "
            f"for {expected} queries"
        )
    finite = np.isfinite(values)
    if not finite.all():
        bad = int(np.argmin(finite))
        raise EstimatorContractError(
            f"{name}: non-finite estimate {values[bad]!r} "
            f"at index {bad}"
        )
    return np.maximum(values, 0.0)


class Estimator:
    """Base class / protocol for every cardinality estimator.

    Subclasses implement ``_estimate_batch`` (vectorized) or
    ``_estimate_one`` (per-query, looped by the default
    ``_estimate_batch``); callers use only :meth:`estimate_batch` and
    :meth:`estimate`.
    """

    #: short identifier used in result tables ("cset", "wj", "lmkg-s", ...)
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    def estimate_batch(
        self, queries: Sequence[QueryPattern]
    ) -> np.ndarray:
        """Validated, non-negative estimates for a batch of queries."""
        queries = list(queries)
        if not queries:
            return np.zeros(0, dtype=np.float64)
        return finalize_estimates(
            self._estimate_batch(queries), len(queries), self.name
        )

    def estimate(self, query: QueryPattern) -> float:
        """Estimated cardinality of one query (non-negative).

        Derived from the batch path, so a subclass only maintains one
        estimation routine.  Override only when the per-query algorithm
        genuinely differs from a one-element batch (e.g. LMKG-U, whose
        batched particle sweep shares an RNG stream across the batch).
        """
        return float(self.estimate_batch([query])[0])

    def memory_bytes(self) -> int:
        """Size of the synopsis/model; 0 when the estimator reads the
        graph directly (sampling approaches)."""
        return 0

    def checkpoint_bytes(self) -> int:
        """Serialized (paper-facing) model size.

        Defaults to :meth:`memory_bytes`; estimators whose in-process
        footprint differs from their checkpoint precision (LMKG-U keeps
        float64 masters plus fused float32 inference caches, but
        checkpoints at float32) override it.
        """
        return self.memory_bytes()

    # ------------------------------------------------------------------
    # Implementation hooks
    # ------------------------------------------------------------------

    def _estimate_batch(
        self, queries: List[QueryPattern]
    ) -> np.ndarray:
        """Raw batch estimates; the default loops :meth:`_estimate_one`."""
        return np.array(
            [self._estimate_one(q) for q in queries], dtype=np.float64
        )

    def _estimate_one(self, query: QueryPattern) -> float:
        raise NotImplementedError(
            f"{type(self).__name__} implements neither _estimate_batch "
            "nor _estimate_one"
        )
