"""LMKG-U: the unsupervised autoregressive estimator (paper §VI-B).

A ResMADE learns the joint distribution of the flattened term sequence
``[n1, p1, n2, p2, ..., pk, nk+1]`` of bound pattern instances of one
shape.  A query's cardinality is::

    card(qp) = N_shape * P(bound positions take the query's values)

where ``N_shape`` is the exact number of shape instances in the graph
(ordered star tuples / directed walks — see
:mod:`repro.sampling.random_walk`), and the probability marginalises the
unbound positions.  Marginalisation uses the paper's likelihood-weighted
forward sampling: positions are visited in model order; at a bound
position each particle's weight is multiplied by the conditional
probability of the bound value, at an unbound position a value is sampled
from the conditional.  The mean particle weight is an unbiased estimate
of ``P``.

One LMKG-U instance covers one (topology, size) — the query size and type
grouping the paper uses for its experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import Estimator, finalize_estimates
from repro.nn.masked import MADE
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.rdf.terms import PatternTerm, Variable, is_bound
from repro.sampling.random_walk import sample_instances

#: vocabulary indices inside the MADE
_NODE_VOCAB = 0
_PRED_VOCAB = 1


@dataclass(frozen=True)
class LMKGUConfig:
    """Hyperparameters of one autoregressive model.

    32-dimensional term embeddings, ResMADE hidden stack, 5 training
    epochs — the paper's §VIII-A choices.  ``training_samples`` bounds the
    number of bound instances drawn; ``particles`` is the number of
    likelihood-weighting samples per estimate.
    """

    embed_dim: int = 32
    hidden_sizes: Tuple[int, ...] = (256, 256)
    residual: bool = True
    epochs: int = 5
    batch_size: int = 256
    learning_rate: float = 1e-3
    training_samples: int = 20_000
    particles: int = 256
    sample_method: str = "exact"  # "exact" | "rw"
    seed: int = 0


class LMKGU(Estimator):
    """Autoregressive estimator for one query topology and size."""

    name = "lmkg-u"

    def __init__(
        self,
        store: TripleStore,
        topology: str,
        size: int,
        config: Optional[LMKGUConfig] = None,
    ) -> None:
        if topology not in ("star", "chain"):
            raise ValueError(f"unsupported topology {topology!r}")
        self.store = store
        self.topology = topology
        self.size = size
        self.config = config if config is not None else LMKGUConfig()
        self.num_positions = 2 * size + 1
        # Position kinds alternate node/predicate/node/...
        self._var_vocabs = [
            _NODE_VOCAB if i % 2 == 0 else _PRED_VOCAB
            for i in range(self.num_positions)
        ]
        self._vocab_sizes = [
            store.num_nodes + 1,
            store.num_predicates + 1,
        ]
        self.model: Optional[MADE] = None
        self.universe: Optional[int] = None
        self.history: List[float] = []

    def build_model(self) -> MADE:
        """Instantiate the (untrained) ResMADE for this shape.

        Exposed separately from :meth:`fit` so size/memory accounting
        (Table II) does not require a training run.
        """
        self.model = MADE(
            var_vocabs=self._var_vocabs,
            vocab_sizes=self._vocab_sizes,
            embed_dim=self.config.embed_dim,
            hidden_sizes=self.config.hidden_sizes,
            residual=self.config.residual,
            seed=self.config.seed,
        )
        return self.model

    def fit(self, instances=None) -> List[float]:
        """Sample bound instances and train the ResMADE on them.

        Args:
            instances: pre-sampled bound instances (e.g. from a
                :mod:`repro.sampling.strategies` strategy); when None
                the configured ``sample_method`` draws them.
        """
        if instances is None:
            instances, universe = sample_instances(
                self.store,
                self.topology,
                self.size,
                self.config.training_samples,
                seed=self.config.seed,
                method=self.config.sample_method,
            )
        else:
            _, universe = sample_instances(
                self.store, self.topology, self.size, 0,
            )
        self.universe = universe
        data = np.array(instances, dtype=np.int64)
        self.build_model()
        self.history = self.model.fit(
            data,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            lr=self.config.learning_rate,
            seed=self.config.seed,
        )
        return self.history

    # ------------------------------------------------------------------
    # Query → position constraints
    # ------------------------------------------------------------------

    def _query_sequence(
        self, query: QueryPattern
    ) -> List[Optional[int]]:
        """Bound value per model position, None where unbound.

        Star queries list the centre then the (predicate, object) pairs in
        triple order; chains follow the walk.  Repeated variables in
        different positions are not representable for this estimator and
        raise.
        """
        if query.size != self.size:
            raise ValueError(
                f"model is for size {self.size}, query has {query.size}"
            )
        topo = query.topology()
        if self.topology == "star":
            if topo not in (Topology.STAR, Topology.SINGLE):
                raise ValueError("star model got a non-star query")
            terms: List[PatternTerm] = [query.triples[0].s]
            for tp in query.triples:
                terms.extend((tp.p, tp.o))
        else:
            if topo not in (Topology.CHAIN, Topology.SINGLE):
                raise ValueError("chain model got a non-chain query")
            terms = [query.triples[0].s]
            for tp in query.triples:
                terms.extend((tp.p, tp.o))
        self._check_variable_use(query, terms)
        return [t if is_bound(t) else None for t in terms]

    def _check_variable_use(
        self, query: QueryPattern, terms: List[PatternTerm]
    ) -> None:
        # The flattening above already encodes the topology's structural
        # sharing (star centre appears once; chain joints appear once).
        # Any *additional* sharing (e.g. two star objects forced equal)
        # would make the factorisation wrong, so reject it.
        variables = [t for t in terms if isinstance(t, Variable)]
        if len(variables) != len(set(variables)):
            raise ValueError(
                "query repeats a variable beyond the topology's structure; "
                "LMKG-U cannot estimate it directly"
            )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def estimate(self, query: QueryPattern) -> float:
        """Estimated cardinality via likelihood-weighted sampling.

        Overrides the protocol's derived form on purpose: the per-query
        sweep draws its particles from a fresh RNG stream, matching the
        paper's algorithm draw-for-draw, whereas ``estimate_batch``
        shares one stream across the batch (identical within sampling
        noise, not bitwise).
        """
        if self.model is None or self.universe is None:
            raise RuntimeError("estimate() before fit()")
        constraints = self._query_sequence(query)
        probability = self._probability(constraints)
        # Same validation contract as the batch path (finite or raise,
        # clamped non-negative), which this override bypasses.
        return float(
            finalize_estimates(
                [float(self.universe) * probability], 1, self.name
            )[0]
        )

    def _estimate_batch(self, queries) -> np.ndarray:
        """Batched likelihood-weighted estimation.

        All queries share one particle sweep: the per-position
        conditional forward runs once for the whole
        ``queries x particles`` block instead of once per query, chunked
        so the conditional-probability tensor stays within a fixed
        memory budget.  Particle draws use one RNG stream for the batch,
        so individual numbers differ from per-query :meth:`estimate`
        within sampling noise.
        """
        if self.model is None or self.universe is None:
            raise RuntimeError("estimate() before fit()")
        queries = list(queries)
        if not queries:
            return np.zeros(0, dtype=np.float64)
        constraints = np.full(
            (len(queries), self.num_positions), -1, dtype=np.int64
        )
        for i, query in enumerate(queries):
            for j, value in enumerate(self._query_sequence(query)):
                if value is not None:
                    constraints[i, j] = value
        particles = self.config.particles
        vocab = max(self._vocab_sizes)
        # The MADE conditional forward is memory-bound: its rows/s peaks
        # near ~128-row blocks of the (rows, vocab) probability matrix
        # and degrades several-fold beyond, so the chunk keeps
        # chunk * particles * vocab around that cache-resident sweet
        # spot rather than maximising batch width.
        chunk = int(3.5e5) // max(particles * vocab, 1)
        if chunk <= 1:
            # One particle block already fills the sweet spot: co-batching
            # queries would only add bookkeeping.  Run the per-query
            # sweep, which also matches estimate() draw-for-draw.
            return np.array(
                [
                    float(self.universe)
                    * self._probability(
                        [v if v >= 0 else None for v in row]
                    )
                    for row in constraints.tolist()
                ],
                dtype=np.float64,
            )
        rng = np.random.default_rng(self.config.seed + 9)
        probabilities = np.empty(len(queries), dtype=np.float64)
        for lo in range(0, len(queries), chunk):
            probabilities[lo: lo + chunk] = self._probability_block(
                constraints[lo: lo + chunk], rng
            )
        return float(self.universe) * probabilities

    def _probability_block(
        self, constraints: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Mean particle weight per query for one chunk of constraints."""
        model = self.model
        assert model is not None
        num_queries = constraints.shape[0]
        particles = self.config.particles
        ids = np.zeros(
            (num_queries * particles, self.num_positions), dtype=np.int64
        )
        ids_view = ids.reshape(num_queries, particles, self.num_positions)
        weights = np.ones((num_queries, particles))
        for position in range(self.num_positions):
            probs = model.conditionals(ids, position).reshape(
                num_queries, particles, -1
            )
            values = constraints[:, position]
            bound = values >= 0
            if bound.any():
                picked = np.take_along_axis(
                    probs[bound],
                    values[bound][:, None, None],
                    axis=2,
                )[:, :, 0]
                weights[bound] *= picked
                ids_view[bound, :, position] = values[bound, None]
            unbound = ~bound
            if unbound.any():
                # Sample per particle from the conditional, excluding the
                # reserved unbound id 0 (never seen in training).
                pr = probs[unbound].copy()
                pr[:, :, 0] = 0.0
                totals = pr.sum(axis=2, keepdims=True)
                dead = totals[:, :, 0] <= 0
                if dead.any():
                    # A particle whose conditional collapsed carries
                    # weight 0.
                    sub = weights[unbound]
                    sub[dead] = 0.0
                    weights[unbound] = sub
                    totals[dead] = 1.0
                    pr[dead, 1] = 1.0
                cdf = np.cumsum(pr / totals, axis=2)
                draws = rng.random(cdf.shape[:2])[:, :, None]
                ids_view[unbound, :, position] = (cdf > draws).argmax(
                    axis=2
                )
        return weights.mean(axis=1)

    def _probability(
        self, constraints: Sequence[Optional[int]]
    ) -> float:
        model = self.model
        assert model is not None
        fully_bound = all(v is not None for v in constraints)
        particles = 1 if fully_bound else self.config.particles
        rng = np.random.default_rng(self.config.seed + 9)
        ids = np.zeros((particles, self.num_positions), dtype=np.int64)
        weights = np.ones(particles)
        for position, value in enumerate(constraints):
            probs = model.conditionals(ids, position)
            if value is not None:
                weights *= probs[:, value]
                ids[:, position] = value
                continue
            # Sample a value per particle from the conditional, excluding
            # the reserved unbound id 0 (never seen in training).
            probs = probs.copy()
            probs[:, 0] = 0.0
            totals = probs.sum(axis=1, keepdims=True)
            dead = totals.ravel() <= 0
            if dead.any():
                # A particle whose conditional collapsed carries weight 0.
                weights[dead] = 0.0
                totals[dead] = 1.0
                probs[dead, 1] = 1.0
            cdf = np.cumsum(probs / totals, axis=1)
            draws = rng.random((particles, 1))
            ids[:, position] = (cdf > draws).argmax(axis=1)
        return float(weights.mean())

    def log_likelihood(self, instances: np.ndarray) -> float:
        """Mean log-likelihood of bound instances (training diagnostics)."""
        if self.model is None:
            raise RuntimeError("model not trained")
        return float(self.model.log_prob(instances).mean())

    def num_parameters(self) -> int:
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.num_parameters()

    def memory_bytes(self) -> int:
        """Model size at float32 checkpoint precision."""
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.memory_bytes()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Checkpoint the ResMADE plus the shape universe count."""
        from repro.nn.serialization import save_arrays

        if self.model is None or self.universe is None:
            raise RuntimeError("save() before fit()")
        arrays = self.model.state()
        arrays["_meta_shape"] = np.array(
            [self.size, 1 if self.topology == "star" else 0]
        )
        # Universe counts are unbounded Python ints (outdeg^k sums can
        # exceed int64); store the decimal string, which npz accepts
        # without pickling.
        arrays["_meta_universe"] = np.array([str(self.universe)])
        arrays["_meta_particles"] = np.array([self.config.particles])
        save_arrays(path, arrays)

    @classmethod
    def load(cls, path, store: TripleStore) -> "LMKGU":
        """Rebuild a trained model against the same store."""
        from repro.nn.masked import MADE
        from repro.nn.serialization import load_arrays

        arrays = load_arrays(path)
        size, is_star = arrays["_meta_shape"]
        made = MADE.from_state(arrays)
        config = LMKGUConfig(
            embed_dim=made.embed_dim,
            hidden_sizes=tuple(made.hidden_sizes),
            residual=made.residual,
            particles=int(arrays["_meta_particles"][0]),
        )
        model = cls(
            store,
            "star" if is_star else "chain",
            int(size),
            config,
        )
        model.model = made
        model.universe = int(arrays["_meta_universe"][0])
        return model
