"""LMKG-U: the unsupervised autoregressive estimator (paper §VI-B).

A ResMADE learns the joint distribution of the flattened term sequence
``[n1, p1, n2, p2, ..., pk, nk+1]`` of bound pattern instances of one
shape.  A query's cardinality is::

    card(qp) = N_shape * P(bound positions take the query's values)

where ``N_shape`` is the exact number of shape instances in the graph
(ordered star tuples / directed walks — see
:mod:`repro.sampling.random_walk`), and the probability marginalises the
unbound positions.  Marginalisation uses the paper's likelihood-weighted
forward sampling: positions are visited in model order; at a bound
position each particle's weight is multiplied by the conditional
probability of the bound value, at an unbound position a value is sampled
from the conditional.  The mean particle weight is an unbiased estimate
of ``P``.

One LMKG-U instance covers one (topology, size) — the query size and type
grouping the paper uses for its experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import Estimator, finalize_estimates
from repro.nn.masked import MADE
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.rdf.terms import PatternTerm, Variable, is_bound
from repro.sampling.random_walk import sample_instances

#: vocabulary indices inside the MADE
_NODE_VOCAB = 0
_PRED_VOCAB = 1

#: Version of the batched sweep's Gumbel noise stream.  v1 drew
#: ``standard_exponential`` matrices from one fresh Philox generator per
#: (query, position) — thousands of generator setups per batch plus a
#: log/negate pass over every (particle, vocab) element.  v2 (current)
#: slices per-(query, position, particle) windows out of one seed-keyed
#: Gumbel table, window bases derived by a splitmix64 mix of the same
#: substream key, so a block's noise costs one contiguous gather.  A
#: window is consumed one of two ways, decided by the query's (purely
#: mask-dependent) divergence state at that position: a diverged
#: query's particle reads the whole window as vocab-wide Gumbel noise
#: for the streamed argmax competition, while an undiverged particle
#: maps the window's first entry through the Gumbel CDF into the
#: U(0,1] draw of the shared-prefix inverse-CDF sampler
#: (:meth:`GumbelStream.uniforms`).  The substream keying (global
#: query index x num_positions + position) is unchanged from v1,
#: keeping estimates invariant to block width; the draws themselves
#: differ from v1 — any further change to them must bump this
#: constant.
GUMBEL_STREAM_VERSION = 2

#: entries in the shared Gumbel table; windows may overlap between
#: particles (each particle's draws stay marginally standard Gumbel, so
#: the particle-mean estimate remains unbiased)
_GUMBEL_TABLE_SIZE = 1 << 21

#: float32 ``exp`` underflow margin: once every real value's logit sits
#: this far below the reserved id's, each renormalised conditional
#: rounds to 0.0 in the fused float32 sweep — the "dead conditional"
#: the seed's CDF sampler detected as an all-zero probability row.
_DEAD_LOG_MARGIN = np.float32(-104.0)


def _splitmix64(keys: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser (uint64 in, uint64 out)."""
    x = keys.astype(np.uint64, copy=True)
    x += np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


class GumbelStream:
    """Shared Gumbel noise for the batched particle sweep (stream v2).

    One seed-keyed table of standard-Gumbel variates; every
    (query, position, particle) triple reads the window that starts at
    its splitmix64-derived base.  A row's draws depend only on its
    global query index, position, and particle — never on how the batch
    is blocked — which is exactly the chunk-width invariance contract
    the per-(query, position) Philox substreams of stream v1 gave.
    """

    def __init__(
        self, seed: int, num_positions: int, max_vocab: int
    ) -> None:
        gen = np.random.Generator(
            np.random.Philox(key=[seed + 9, GUMBEL_STREAM_VERSION])
        )
        table = gen.standard_exponential(
            _GUMBEL_TABLE_SIZE + max_vocab, dtype=np.float32
        )
        # Exp(1) can round to 0 in float32; clamp to the smallest
        # positive subnormal so the log stays finite.
        np.maximum(table, np.float32(1e-45), out=table)
        np.log(table, out=table)
        np.negative(table, out=table)
        self.table = table
        self.num_positions = num_positions
        self._salt = _splitmix64(np.array([seed + 9], dtype=np.uint64))[0]

    def bases(
        self,
        query_indices: np.ndarray,
        position: int,
        particles: int,
    ) -> np.ndarray:
        """Window base per (query, particle), query-major order."""
        sub = (
            np.asarray(query_indices, dtype=np.uint64)[:, None]
            * np.uint64(self.num_positions)
            + np.uint64(position)
        )
        keys = sub * np.uint64(particles) + np.arange(
            particles, dtype=np.uint64
        )[None, :]
        mixed = _splitmix64(keys ^ self._salt)
        return (
            (mixed % np.uint64(_GUMBEL_TABLE_SIZE))
            .astype(np.int64)
            .ravel()
        )

    def uniforms(
        self,
        query_indices: np.ndarray,
        position: int,
        particles: int,
    ) -> np.ndarray:
        """U(0,1] draw per (query, particle), query-major order.

        The first entry ``g`` of the particle's keyed window mapped
        through its own CDF, ``u = exp(-exp(-g))`` — exact standard
        uniforms from the same stream state the Gumbel windows use.
        """
        g = self.table[self.bases(query_indices, position, particles)]
        return np.exp(-np.exp(-g.astype(np.float64)))


def likelihood_weighted_probability(
    model: MADE,
    constraints: Sequence[Optional[int]],
    particles: int,
    rng: np.random.Generator,
) -> float:
    """Mean particle weight of one constraint sequence (paper Alg. 1).

    The seed's inverse-CDF sampler over an incremental fused-float32
    sweep: positions are visited in model order; a bound position
    multiplies each particle's weight by the conditional of its value,
    an unbound one samples from the conditional with the reserved
    unbound id 0 excluded (a particle whose conditional collapsed onto
    it carries weight 0).  Shared by :class:`LMKGU` and
    :class:`~repro.core.lmkg_u_universal.UniversalLMKGU`.
    """
    num_positions = len(constraints)
    sweep = model.begin_sweep(
        np.zeros((particles, num_positions), dtype=np.int64)
    )
    weights = np.ones(particles)
    last = num_positions - 1
    for position, value in enumerate(constraints):
        probs = sweep.conditionals(position)
        if value is not None:
            weights *= probs[:, value].astype(np.float64)
            column = np.full(particles, value, dtype=np.int64)
        else:
            probs = probs.copy()
            probs[:, 0] = 0.0
            totals = probs.sum(axis=1, keepdims=True)
            dead = totals.ravel() <= 0
            if dead.any():
                weights[dead] = 0.0
                totals[dead] = 1.0
                probs[dead, 1] = 1.0
            cdf = np.cumsum(probs / totals, axis=1)
            # Float32 summation can leave cdf[-1] a hair under 1,
            # which would send a tail draw to the reserved id 0.
            cdf[:, -1] = 1.0
            draws = rng.random((particles, 1))
            column = (cdf > draws).argmax(axis=1)
        if position != last:
            sweep.assign(position, column)
    return float(weights.mean())


def sweep_probability_block(
    model: MADE,
    constraints: np.ndarray,
    particles: int,
    noise: GumbelStream,
    offset: int,
) -> np.ndarray:
    """Mean particle weight per query for one block of constraints.

    One incremental sweep serves the whole block: per position the
    trunk runs once over the full ``(queries x particles)`` row block
    while the vocab-sized head streams in cache-sized column chunks
    (:meth:`MADESweep.head_lse_pick` / :meth:`head_gumbel_argmax` /
    :meth:`head_categorical_sample`), so the ``(rows, vocab)`` logit
    matrix is never materialised.

    Until a query reaches its first unbound position all its particles
    share one identical prefix, so the head runs on a single
    representative row per such query — conditionals broadcast across
    its particles, and unbound draws come from the shared-prefix
    inverse-CDF sampler instead of a per-particle Gumbel competition.
    The full-width head only ever pays for rows that have actually
    diverged.  *constraints* holds the bound value per
    (query, position), ``-1`` where unbound.  *offset* is the block's
    first query index within the batch; it keys the per-(query,
    position) noise substreams, so results are invariant to how the
    batch is blocked.  Shared by :class:`LMKGU` and
    :class:`~repro.core.lmkg_u_universal.UniversalLMKGU`.
    """
    num_queries, num_positions = constraints.shape
    rows = num_queries * particles
    sweep = model.begin_sweep(
        np.zeros((rows, num_positions), dtype=np.int64)
    )
    weights = np.ones((num_queries, particles))
    diverged = np.zeros(num_queries, dtype=bool)
    arange_p = np.arange(particles, dtype=np.int64)
    column = np.empty((num_queries, particles), dtype=np.int64)
    last = num_positions - 1
    for position in range(num_positions):
        values = constraints[:, position]
        bound = values >= 0
        if bound.any():
            # Bound: multiply in the conditional of the bound value.
            q_rep = np.flatnonzero(bound & ~diverged)
            q_all = np.flatnonzero(bound & diverged)
            head_rows = np.concatenate([
                q_rep * particles,
                (q_all[:, None] * particles + arange_p).ravel(),
            ])
            head_vals = np.concatenate([
                values[q_rep],
                np.repeat(values[q_all], particles),
            ])
            lse, picked = sweep.head_lse_pick(
                position, head_rows, head_vals
            )
            logw = picked - lse
            n_rep = q_rep.shape[0]
            if n_rep:
                weights[q_rep] *= np.exp(logw[:n_rep])[:, None]
            if q_all.shape[0]:
                weights[q_all] *= np.exp(
                    logw[n_rep:].reshape(q_all.shape[0], particles)
                )
            column[bound] = values[bound, None]
        unbound = ~bound
        if unbound.any():
            # Unbound: sample from the conditional with the reserved id
            # excluded.  Undiverged queries share one prefix across all
            # particles, so their draws come from the shared-prefix
            # inverse-CDF sampler (one head row per query); diverged
            # queries run the per-particle streamed Gumbel competition.
            q_rep = np.flatnonzero(unbound & ~diverged)
            q_all = np.flatnonzero(unbound & diverged)
            n_rep = q_rep.shape[0]
            n_all = q_all.shape[0]
            if n_rep:
                u = noise.uniforms(
                    q_rep + offset, position, particles
                ).reshape(n_rep, particles)
                choice, rest_peak, first_logit = (
                    sweep.head_categorical_sample(
                        position, q_rep * particles, u
                    )
                )
                column[q_rep] = choice
                # Dead conditional: all remaining float32 mass sits on
                # the reserved unbound id 0 (never seen in training) —
                # the sampled particle carries weight 0, as the seed's
                # CDF sampler did.
                dead = (rest_peak - first_logit) <= _DEAD_LOG_MARGIN
                dead_q = q_rep[dead]
                if dead_q.size:
                    column[dead_q] = 1
                    weights[dead_q] = 0.0
            if n_all:
                head_rows = (
                    q_all[:, None] * particles + arange_p
                ).ravel()
                bases = noise.bases(q_all + offset, position, particles)
                choice, rest_peak, first_logit = (
                    sweep.head_gumbel_argmax(
                        position, head_rows, noise.table, bases
                    )
                )
                column[q_all] = choice.reshape(n_all, particles)
                dead_all = (
                    (rest_peak - first_logit) <= _DEAD_LOG_MARGIN
                ).reshape(n_all, particles)
                if dead_all.any():
                    sub = column[q_all]
                    sub[dead_all] = 1
                    column[q_all] = sub
                    sub = weights[q_all]
                    sub[dead_all] = 0.0
                    weights[q_all] = sub
            diverged |= unbound
        if position != last:
            sweep.assign(position, column.reshape(rows))
    return weights.mean(axis=1)


@dataclass(frozen=True)
class LMKGUConfig:
    """Hyperparameters of one autoregressive model.

    32-dimensional term embeddings, ResMADE hidden stack, 5 training
    epochs — the paper's §VIII-A choices.  ``training_samples`` bounds the
    number of bound instances drawn; ``particles`` is the number of
    likelihood-weighting samples per estimate.
    """

    embed_dim: int = 32
    hidden_sizes: Tuple[int, ...] = (256, 256)
    residual: bool = True
    epochs: int = 5
    batch_size: int = 256
    learning_rate: float = 1e-3
    training_samples: int = 20_000
    particles: int = 256
    sample_method: str = "exact"  # "exact" | "rw"
    seed: int = 0
    #: row budget (``queries x particles``) of one sweep block in the
    #: batched estimator; None auto-tunes on the first estimate by
    #: timing a few candidate widths.  The vocab-sized head streams in
    #: fixed column chunks regardless, so the budget is independent of
    #: vocabulary size, and estimates are invariant to the choice
    #: (per-query noise substreams) — the knob is purely a throughput
    #: lever.
    chunk_budget: Optional[int] = None


#: candidate row budgets tried by the first-estimate calibration
_CHUNK_BUDGETS = (16_384, 65_536, 262_144)


class LMKGU(Estimator):
    """Autoregressive estimator for one query topology and size."""

    name = "lmkg-u"

    def __init__(
        self,
        store: TripleStore,
        topology: str,
        size: int,
        config: Optional[LMKGUConfig] = None,
    ) -> None:
        if topology not in ("star", "chain"):
            raise ValueError(f"unsupported topology {topology!r}")
        self.store = store
        self.topology = topology
        self.size = size
        self.config = config if config is not None else LMKGUConfig()
        self.num_positions = 2 * size + 1
        # Position kinds alternate node/predicate/node/...
        self._var_vocabs = [
            _NODE_VOCAB if i % 2 == 0 else _PRED_VOCAB
            for i in range(self.num_positions)
        ]
        self._vocab_sizes = [
            store.num_nodes + 1,
            store.num_predicates + 1,
        ]
        self.model: Optional[MADE] = None
        self.universe: Optional[int] = None
        self.history: List[float] = []
        #: block width picked by estimate-time calibration when
        #: ``config.chunk_budget`` is None (queries per sweep block),
        #: plus the widest candidate the calibration could measure —
        #: a larger later batch re-calibrates rather than staying
        #: pinned to a narrow first-batch winner.
        self._tuned_chunk: Optional[int] = None
        self._tuned_cover: int = 0
        self._noise: Optional[GumbelStream] = None

    def build_model(self) -> MADE:
        """Instantiate the (untrained) ResMADE for this shape.

        Exposed separately from :meth:`fit` so size/memory accounting
        (Table II) does not require a training run.
        """
        self.model = MADE(
            var_vocabs=self._var_vocabs,
            vocab_sizes=self._vocab_sizes,
            embed_dim=self.config.embed_dim,
            hidden_sizes=self.config.hidden_sizes,
            residual=self.config.residual,
            seed=self.config.seed,
        )
        return self.model

    def fit(self, instances=None) -> List[float]:
        """Sample bound instances and train the ResMADE on them.

        Args:
            instances: pre-sampled bound instances (e.g. from a
                :mod:`repro.sampling.strategies` strategy); when None
                the configured ``sample_method`` draws them.
        """
        if instances is None:
            instances, universe = sample_instances(
                self.store,
                self.topology,
                self.size,
                self.config.training_samples,
                seed=self.config.seed,
                method=self.config.sample_method,
            )
        else:
            _, universe = sample_instances(
                self.store, self.topology, self.size, 0,
            )
        self.universe = universe
        data = np.array(instances, dtype=np.int64)
        self.build_model()
        self.history = self.model.fit(
            data,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            lr=self.config.learning_rate,
            seed=self.config.seed,
        )
        return self.history

    def finetune(
        self, epochs: int = 1, instances=None
    ) -> List[float]:
        """Continue training from the current weights on fresh samples.

        The incremental-maintenance path (:mod:`repro.maintain`): bound
        instances are re-sampled from the (mutated) live store — same
        seed and budget as :meth:`fit`, so the delta triples surface in
        the sample in proportion to their share of the graph — and the
        ResMADE trains a few more epochs from its float64 masters
        (:meth:`MADE.fit` continues from the current weights with a
        fresh optimizer).  The shape universe count is recomputed from
        the live store, which is what moves the estimate's ``N_shape``
        factor even before the conditionals adjust.
        """
        if self.model is None or self.universe is None:
            raise RuntimeError("finetune() before fit() or load()")
        if instances is None:
            instances, universe = sample_instances(
                self.store,
                self.topology,
                self.size,
                self.config.training_samples,
                seed=self.config.seed,
                method=self.config.sample_method,
            )
        else:
            _, universe = sample_instances(
                self.store, self.topology, self.size, 0,
            )
        self.universe = universe
        data = np.array(instances, dtype=np.int64)
        history = self.model.fit(
            data,
            epochs=epochs,
            batch_size=self.config.batch_size,
            lr=self.config.learning_rate,
            seed=self.config.seed + 1,
        )
        self.history.extend(history)
        return history

    # ------------------------------------------------------------------
    # Query → position constraints
    # ------------------------------------------------------------------

    def _query_sequence(
        self, query: QueryPattern
    ) -> List[Optional[int]]:
        """Bound value per model position, None where unbound.

        Star queries list the centre then the (predicate, object) pairs in
        triple order; chains follow the walk.  Repeated variables in
        different positions are not representable for this estimator and
        raise.
        """
        if query.size != self.size:
            raise ValueError(
                f"model is for size {self.size}, query has {query.size}"
            )
        topo = query.topology()
        if self.topology == "star":
            if topo not in (Topology.STAR, Topology.SINGLE):
                raise ValueError("star model got a non-star query")
            terms: List[PatternTerm] = [query.triples[0].s]
            for tp in query.triples:
                terms.extend((tp.p, tp.o))
        else:
            if topo not in (Topology.CHAIN, Topology.SINGLE):
                raise ValueError("chain model got a non-chain query")
            terms = [query.triples[0].s]
            for tp in query.triples:
                terms.extend((tp.p, tp.o))
        self._check_variable_use(query, terms)
        return [t if is_bound(t) else None for t in terms]

    def _check_variable_use(
        self, query: QueryPattern, terms: List[PatternTerm]
    ) -> None:
        # The flattening above already encodes the topology's structural
        # sharing (star centre appears once; chain joints appear once).
        # Any *additional* sharing (e.g. two star objects forced equal)
        # would make the factorisation wrong, so reject it.
        variables = [t for t in terms if isinstance(t, Variable)]
        if len(variables) != len(set(variables)):
            raise ValueError(
                "query repeats a variable beyond the topology's structure; "
                "LMKG-U cannot estimate it directly"
            )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def estimate(self, query: QueryPattern) -> float:
        """Estimated cardinality via likelihood-weighted sampling.

        Overrides the protocol's derived form on purpose: the per-query
        sweep draws its particles from a fresh RNG stream, matching the
        paper's algorithm draw-for-draw, whereas ``estimate_batch``
        shares one stream across the batch (identical within sampling
        noise, not bitwise).
        """
        if self.model is None or self.universe is None:
            raise RuntimeError("estimate() before fit()")
        constraints = self._query_sequence(query)
        probability = self._probability(constraints)
        # Same validation contract as the batch path (finite or raise,
        # clamped non-negative), which this override bypasses.
        return float(
            finalize_estimates(
                [float(self.universe) * probability], 1, self.name
            )[0]
        )

    def _estimate_batch(self, queries) -> np.ndarray:
        """Batched likelihood-weighted estimation.

        All queries share one particle sweep: the per-position trunk
        forward runs once for a ``block x particles`` row block on the
        fused float32 trunk (incremental first layer, see
        :meth:`MADE.begin_sweep`), while the vocab-sized head streams
        in fixed cache-sized column chunks — the block width is set by
        a row budget independent of vocabulary size.  Sampling noise
        comes from one substream per (query, position), so results do
        not depend on the chunk width — individual numbers still differ
        from the per-query :meth:`estimate` within sampling noise.
        """
        if self.model is None or self.universe is None:
            raise RuntimeError("estimate() before fit()")
        queries = list(queries)
        if not queries:
            return np.zeros(0, dtype=np.float64)
        constraints = np.full(
            (len(queries), self.num_positions), -1, dtype=np.int64
        )
        for i, query in enumerate(queries):
            for j, value in enumerate(self._query_sequence(query)):
                if value is not None:
                    constraints[i, j] = value
        probabilities = np.empty(len(queries), dtype=np.float64)
        chunk, covered = self._block_chunk(constraints, probabilities)
        for lo in range(covered, len(queries), chunk):
            probabilities[lo: lo + chunk] = self._probability_block(
                constraints[lo: lo + chunk], lo
            )
        return float(self.universe) * probabilities

    # ------------------------------------------------------------------
    # Block-width selection
    # ------------------------------------------------------------------

    def _queries_per_block(self, budget: int) -> int:
        # The budget counts sweep rows (queries x particles): the trunk
        # state is all that scales with the block, because the head
        # streams the vocab dimension in fixed cache-sized chunks.
        # (The seed budgeted by particles x vocab — with a 34k-node
        # vocabulary every candidate collapsed to one query per block
        # and the trunk re-ran per query.)
        return max(int(budget) // max(self.config.particles, 1), 1)

    def _block_chunk(
        self, constraints: np.ndarray, out: np.ndarray
    ) -> Tuple[int, int]:
        """(queries per sweep block, queries already computed into *out*).

        The MADE conditional forward is memory-bound: rows/s peaks when
        the ``(block * particles, vocab)`` logit matrix stays cache
        resident and degrades several-fold beyond.  Instead of the seed's
        hard-coded 3.5e5-element budget, estimation times the sweep at
        a few candidate widths on a prefix of the real batch and caches
        the winner; a later batch wide enough to measure candidates the
        cached calibration could not re-calibrates, so a small warm-up
        batch cannot pin serving to a narrow block forever.  The timing
        blocks are real work — results are chunk-invariant by
        construction — so they are written into *out* rather than
        discarded, and the caller resumes after the covered prefix.
        ``config.chunk_budget`` pins the budget explicitly (tests,
        reproducible benchmarks); estimates never depend on the choice.
        """
        if self.config.chunk_budget is not None:
            return self._queries_per_block(self.config.chunk_budget), 0
        candidates = sorted(
            {self._queries_per_block(b) for b in _CHUNK_BUDGETS}
        )
        measurable = [c for c in candidates if c <= len(constraints)]
        if len(measurable) < 2:
            # Too small a batch to time meaningfully (one or two blocks
            # either way); keep any cached winner, else the middle
            # candidate, and leave calibration to a larger batch.
            return (
                self._tuned_chunk or candidates[len(candidates) // 2],
                0,
            )
        if (
            self._tuned_chunk is not None
            and measurable[-1] <= self._tuned_cover
        ):
            return self._tuned_chunk, 0
        self._tuned_chunk = self._calibrate_chunk(
            constraints, measurable, out
        )
        self._tuned_cover = measurable[-1]
        return self._tuned_chunk, measurable[-1]

    def _calibrate_chunk(
        self,
        constraints: np.ndarray,
        candidates: List[int],
        out: np.ndarray,
    ) -> int:
        # Warm the fused caches outside the timed region.
        out[:1] = self._probability_block(constraints[:1], 0)
        best_chunk, best_rate = candidates[0], 0.0
        for chunk in candidates:
            block = constraints[:chunk]
            start = time.perf_counter()
            result = self._probability_block(block, 0)
            elapsed = time.perf_counter() - start
            # Chunk-invariant results: the widest (last) candidate's
            # prefix stands as the final answer for those queries.
            out[:chunk] = result
            rate = len(block) / max(elapsed, 1e-9)
            if rate > best_rate:
                best_chunk, best_rate = chunk, rate
        return best_chunk

    # ------------------------------------------------------------------
    # Particle sweep
    # ------------------------------------------------------------------

    def _noise_stream(self) -> GumbelStream:
        """Lazily-built shared noise table (seed- and shape-keyed)."""
        if self._noise is None:
            self._noise = GumbelStream(
                self.config.seed,
                self.num_positions,
                max(self._vocab_sizes),
            )
        return self._noise

    def _probability_block(
        self, constraints: np.ndarray, offset: int
    ) -> np.ndarray:
        """Mean particle weight per query for one block of constraints.

        Delegates to :func:`sweep_probability_block`: one incremental
        sweep over the whole block, vocab-streamed head, representative
        rows for not-yet-diverged queries.  *offset* is the block's
        first query index within the batch; it keys the per-query noise
        substreams (chunk-width invariance).
        """
        model = self.model
        assert model is not None
        return sweep_probability_block(
            model,
            constraints,
            self.config.particles,
            self._noise_stream(),
            offset,
        )

    def _probability(
        self, constraints: Sequence[Optional[int]]
    ) -> float:
        """Single-query likelihood weighting, paper draw-for-draw.

        Keeps the seed's inverse-CDF sampler and RNG stream; only the
        trunk changed — the conditionals now come from one incremental
        fused-float32 sweep instead of a full forward per position.
        """
        model = self.model
        assert model is not None
        fully_bound = all(v is not None for v in constraints)
        particles = 1 if fully_bound else self.config.particles
        rng = np.random.default_rng(self.config.seed + 9)
        return likelihood_weighted_probability(
            model, constraints, particles, rng
        )

    def log_likelihood(self, instances: np.ndarray) -> float:
        """Mean log-likelihood of bound instances (training diagnostics)."""
        if self.model is None:
            raise RuntimeError("model not trained")
        return float(self.model.log_prob(instances).mean())

    def num_parameters(self) -> int:
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.num_parameters()

    def memory_bytes(self) -> int:
        """True in-memory footprint: float64 masters + fused float32
        inference caches + bool layer masks."""
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.memory_bytes()

    def checkpoint_bytes(self) -> int:
        """Paper-facing model size at float32 checkpoint precision."""
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.checkpoint_bytes()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Checkpoint the ResMADE plus the shape universe count."""
        from repro.nn.serialization import save_arrays

        if self.model is None or self.universe is None:
            raise RuntimeError("save() before fit()")
        arrays = self.model.state()
        arrays["_meta_shape"] = np.array(
            [self.size, 1 if self.topology == "star" else 0]
        )
        # Universe counts are unbounded Python ints (outdeg^k sums can
        # exceed int64); store the decimal string, which npz accepts
        # without pickling.
        arrays["_meta_universe"] = np.array([str(self.universe)])
        arrays["_meta_particles"] = np.array([self.config.particles])
        # Sampler identity beyond the weights: the seed keys the noise
        # substreams, so dropping it would make a non-default-seed model
        # silently return different estimates after reload; the block
        # row budget rides along (-1 = auto-tune).
        budget = self.config.chunk_budget
        arrays["_meta_sampler"] = np.array(
            [self.config.seed, -1 if budget is None else budget],
            dtype=np.int64,
        )
        save_arrays(path, arrays)

    @classmethod
    def load(cls, path, store: TripleStore) -> "LMKGU":
        """Rebuild a trained model against the same store."""
        from repro.nn.masked import MADE
        from repro.nn.serialization import load_arrays

        arrays = load_arrays(path)
        size, is_star = arrays["_meta_shape"]
        made = MADE.from_state(arrays)
        seed, budget = 0, -1
        if "_meta_sampler" in arrays:
            seed, budget = (int(v) for v in arrays["_meta_sampler"])
        config = LMKGUConfig(
            embed_dim=made.embed_dim,
            hidden_sizes=tuple(made.hidden_sizes),
            residual=made.residual,
            particles=int(arrays["_meta_particles"][0]),
            # Legacy (pre-sampler-meta) checkpoints default to seed 0 —
            # the old loader's silent behaviour, now only for files that
            # genuinely carry no seed.
            seed=seed,
            chunk_budget=None if budget < 0 else budget,
        )
        model = cls(
            store,
            "star" if is_star else "chain",
            int(size),
            config,
        )
        model.model = made
        model.universe = int(arrays["_meta_universe"][0])
        return model
