"""LMKG-U: the unsupervised autoregressive estimator (paper §VI-B).

A ResMADE learns the joint distribution of the flattened term sequence
``[n1, p1, n2, p2, ..., pk, nk+1]`` of bound pattern instances of one
shape.  A query's cardinality is::

    card(qp) = N_shape * P(bound positions take the query's values)

where ``N_shape`` is the exact number of shape instances in the graph
(ordered star tuples / directed walks — see
:mod:`repro.sampling.random_walk`), and the probability marginalises the
unbound positions.  Marginalisation uses the paper's likelihood-weighted
forward sampling: positions are visited in model order; at a bound
position each particle's weight is multiplied by the conditional
probability of the bound value, at an unbound position a value is sampled
from the conditional.  The mean particle weight is an unbiased estimate
of ``P``.

One LMKG-U instance covers one (topology, size) — the query size and type
grouping the paper uses for its experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import Estimator, finalize_estimates
from repro.nn.masked import MADE
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.rdf.terms import PatternTerm, Variable, is_bound
from repro.sampling.random_walk import sample_instances

#: vocabulary indices inside the MADE
_NODE_VOCAB = 0
_PRED_VOCAB = 1


def likelihood_weighted_probability(
    model: MADE,
    constraints: Sequence[Optional[int]],
    particles: int,
    rng: np.random.Generator,
) -> float:
    """Mean particle weight of one constraint sequence (paper Alg. 1).

    The seed's inverse-CDF sampler over an incremental fused-float32
    sweep: positions are visited in model order; a bound position
    multiplies each particle's weight by the conditional of its value,
    an unbound one samples from the conditional with the reserved
    unbound id 0 excluded (a particle whose conditional collapsed onto
    it carries weight 0).  Shared by :class:`LMKGU` and
    :class:`~repro.core.lmkg_u_universal.UniversalLMKGU`.
    """
    num_positions = len(constraints)
    sweep = model.begin_sweep(
        np.zeros((particles, num_positions), dtype=np.int64)
    )
    weights = np.ones(particles)
    last = num_positions - 1
    for position, value in enumerate(constraints):
        probs = sweep.conditionals(position)
        if value is not None:
            weights *= probs[:, value].astype(np.float64)
            column = np.full(particles, value, dtype=np.int64)
        else:
            probs = probs.copy()
            probs[:, 0] = 0.0
            totals = probs.sum(axis=1, keepdims=True)
            dead = totals.ravel() <= 0
            if dead.any():
                weights[dead] = 0.0
                totals[dead] = 1.0
                probs[dead, 1] = 1.0
            cdf = np.cumsum(probs / totals, axis=1)
            # Float32 summation can leave cdf[-1] a hair under 1,
            # which would send a tail draw to the reserved id 0.
            cdf[:, -1] = 1.0
            draws = rng.random((particles, 1))
            column = (cdf > draws).argmax(axis=1)
        if position != last:
            sweep.assign(position, column)
    return float(weights.mean())


@dataclass(frozen=True)
class LMKGUConfig:
    """Hyperparameters of one autoregressive model.

    32-dimensional term embeddings, ResMADE hidden stack, 5 training
    epochs — the paper's §VIII-A choices.  ``training_samples`` bounds the
    number of bound instances drawn; ``particles`` is the number of
    likelihood-weighting samples per estimate.
    """

    embed_dim: int = 32
    hidden_sizes: Tuple[int, ...] = (256, 256)
    residual: bool = True
    epochs: int = 5
    batch_size: int = 256
    learning_rate: float = 1e-3
    training_samples: int = 20_000
    particles: int = 256
    sample_method: str = "exact"  # "exact" | "rw"
    seed: int = 0
    #: element budget (block_rows * vocab) of one conditional-logit
    #: matrix in the batched particle sweep; None auto-tunes on the
    #: first estimate by timing a few candidate widths.  Estimates are
    #: invariant to the choice (per-query noise substreams), so the
    #: knob is purely a throughput lever.
    chunk_budget: Optional[int] = None


#: candidate element budgets tried by the first-estimate calibration
_CHUNK_BUDGETS = (175_000, 350_000, 1_400_000)


class LMKGU(Estimator):
    """Autoregressive estimator for one query topology and size."""

    name = "lmkg-u"

    def __init__(
        self,
        store: TripleStore,
        topology: str,
        size: int,
        config: Optional[LMKGUConfig] = None,
    ) -> None:
        if topology not in ("star", "chain"):
            raise ValueError(f"unsupported topology {topology!r}")
        self.store = store
        self.topology = topology
        self.size = size
        self.config = config if config is not None else LMKGUConfig()
        self.num_positions = 2 * size + 1
        # Position kinds alternate node/predicate/node/...
        self._var_vocabs = [
            _NODE_VOCAB if i % 2 == 0 else _PRED_VOCAB
            for i in range(self.num_positions)
        ]
        self._vocab_sizes = [
            store.num_nodes + 1,
            store.num_predicates + 1,
        ]
        self.model: Optional[MADE] = None
        self.universe: Optional[int] = None
        self.history: List[float] = []
        #: block width picked by estimate-time calibration when
        #: ``config.chunk_budget`` is None (queries per sweep block),
        #: plus the widest candidate the calibration could measure —
        #: a larger later batch re-calibrates rather than staying
        #: pinned to a narrow first-batch winner.
        self._tuned_chunk: Optional[int] = None
        self._tuned_cover: int = 0

    def build_model(self) -> MADE:
        """Instantiate the (untrained) ResMADE for this shape.

        Exposed separately from :meth:`fit` so size/memory accounting
        (Table II) does not require a training run.
        """
        self.model = MADE(
            var_vocabs=self._var_vocabs,
            vocab_sizes=self._vocab_sizes,
            embed_dim=self.config.embed_dim,
            hidden_sizes=self.config.hidden_sizes,
            residual=self.config.residual,
            seed=self.config.seed,
        )
        return self.model

    def fit(self, instances=None) -> List[float]:
        """Sample bound instances and train the ResMADE on them.

        Args:
            instances: pre-sampled bound instances (e.g. from a
                :mod:`repro.sampling.strategies` strategy); when None
                the configured ``sample_method`` draws them.
        """
        if instances is None:
            instances, universe = sample_instances(
                self.store,
                self.topology,
                self.size,
                self.config.training_samples,
                seed=self.config.seed,
                method=self.config.sample_method,
            )
        else:
            _, universe = sample_instances(
                self.store, self.topology, self.size, 0,
            )
        self.universe = universe
        data = np.array(instances, dtype=np.int64)
        self.build_model()
        self.history = self.model.fit(
            data,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            lr=self.config.learning_rate,
            seed=self.config.seed,
        )
        return self.history

    # ------------------------------------------------------------------
    # Query → position constraints
    # ------------------------------------------------------------------

    def _query_sequence(
        self, query: QueryPattern
    ) -> List[Optional[int]]:
        """Bound value per model position, None where unbound.

        Star queries list the centre then the (predicate, object) pairs in
        triple order; chains follow the walk.  Repeated variables in
        different positions are not representable for this estimator and
        raise.
        """
        if query.size != self.size:
            raise ValueError(
                f"model is for size {self.size}, query has {query.size}"
            )
        topo = query.topology()
        if self.topology == "star":
            if topo not in (Topology.STAR, Topology.SINGLE):
                raise ValueError("star model got a non-star query")
            terms: List[PatternTerm] = [query.triples[0].s]
            for tp in query.triples:
                terms.extend((tp.p, tp.o))
        else:
            if topo not in (Topology.CHAIN, Topology.SINGLE):
                raise ValueError("chain model got a non-chain query")
            terms = [query.triples[0].s]
            for tp in query.triples:
                terms.extend((tp.p, tp.o))
        self._check_variable_use(query, terms)
        return [t if is_bound(t) else None for t in terms]

    def _check_variable_use(
        self, query: QueryPattern, terms: List[PatternTerm]
    ) -> None:
        # The flattening above already encodes the topology's structural
        # sharing (star centre appears once; chain joints appear once).
        # Any *additional* sharing (e.g. two star objects forced equal)
        # would make the factorisation wrong, so reject it.
        variables = [t for t in terms if isinstance(t, Variable)]
        if len(variables) != len(set(variables)):
            raise ValueError(
                "query repeats a variable beyond the topology's structure; "
                "LMKG-U cannot estimate it directly"
            )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def estimate(self, query: QueryPattern) -> float:
        """Estimated cardinality via likelihood-weighted sampling.

        Overrides the protocol's derived form on purpose: the per-query
        sweep draws its particles from a fresh RNG stream, matching the
        paper's algorithm draw-for-draw, whereas ``estimate_batch``
        shares one stream across the batch (identical within sampling
        noise, not bitwise).
        """
        if self.model is None or self.universe is None:
            raise RuntimeError("estimate() before fit()")
        constraints = self._query_sequence(query)
        probability = self._probability(constraints)
        # Same validation contract as the batch path (finite or raise,
        # clamped non-negative), which this override bypasses.
        return float(
            finalize_estimates(
                [float(self.universe) * probability], 1, self.name
            )[0]
        )

    def _estimate_batch(self, queries) -> np.ndarray:
        """Batched likelihood-weighted estimation.

        All queries share one particle sweep: the per-position
        conditional forward runs once for a ``block x particles`` row
        block on the fused float32 trunk (incremental first layer, see
        :meth:`MADE.begin_sweep`), chunked so the logit tensor stays
        cache-resident.  Sampling noise comes from one counter-based
        Philox substream per (query, position), so results do not depend
        on the chunk width — individual numbers still differ from the
        per-query :meth:`estimate` within sampling noise.
        """
        if self.model is None or self.universe is None:
            raise RuntimeError("estimate() before fit()")
        queries = list(queries)
        if not queries:
            return np.zeros(0, dtype=np.float64)
        constraints = np.full(
            (len(queries), self.num_positions), -1, dtype=np.int64
        )
        for i, query in enumerate(queries):
            for j, value in enumerate(self._query_sequence(query)):
                if value is not None:
                    constraints[i, j] = value
        probabilities = np.empty(len(queries), dtype=np.float64)
        chunk, covered = self._block_chunk(constraints, probabilities)
        for lo in range(covered, len(queries), chunk):
            probabilities[lo: lo + chunk] = self._probability_block(
                constraints[lo: lo + chunk], lo
            )
        return float(self.universe) * probabilities

    # ------------------------------------------------------------------
    # Block-width selection
    # ------------------------------------------------------------------

    def _queries_per_block(self, budget: int) -> int:
        per_query = max(self.config.particles * max(self._vocab_sizes), 1)
        return max(int(budget) // per_query, 1)

    def _block_chunk(
        self, constraints: np.ndarray, out: np.ndarray
    ) -> Tuple[int, int]:
        """(queries per sweep block, queries already computed into *out*).

        The MADE conditional forward is memory-bound: rows/s peaks when
        the ``(block * particles, vocab)`` logit matrix stays cache
        resident and degrades several-fold beyond.  Instead of the seed's
        hard-coded 3.5e5-element budget, estimation times the sweep at
        a few candidate widths on a prefix of the real batch and caches
        the winner; a later batch wide enough to measure candidates the
        cached calibration could not re-calibrates, so a small warm-up
        batch cannot pin serving to a narrow block forever.  The timing
        blocks are real work — results are chunk-invariant by
        construction — so they are written into *out* rather than
        discarded, and the caller resumes after the covered prefix.
        ``config.chunk_budget`` pins the budget explicitly (tests,
        reproducible benchmarks); estimates never depend on the choice.
        """
        if self.config.chunk_budget is not None:
            return self._queries_per_block(self.config.chunk_budget), 0
        candidates = sorted(
            {self._queries_per_block(b) for b in _CHUNK_BUDGETS}
        )
        measurable = [c for c in candidates if c <= len(constraints)]
        if len(measurable) < 2:
            # Too small a batch to time meaningfully (one or two blocks
            # either way); keep any cached winner, else the middle
            # candidate, and leave calibration to a larger batch.
            return (
                self._tuned_chunk or candidates[len(candidates) // 2],
                0,
            )
        if (
            self._tuned_chunk is not None
            and measurable[-1] <= self._tuned_cover
        ):
            return self._tuned_chunk, 0
        self._tuned_chunk = self._calibrate_chunk(
            constraints, measurable, out
        )
        self._tuned_cover = measurable[-1]
        return self._tuned_chunk, measurable[-1]

    def _calibrate_chunk(
        self,
        constraints: np.ndarray,
        candidates: List[int],
        out: np.ndarray,
    ) -> int:
        # Warm the fused caches outside the timed region.
        out[:1] = self._probability_block(constraints[:1], 0)
        best_chunk, best_rate = candidates[0], 0.0
        for chunk in candidates:
            block = constraints[:chunk]
            start = time.perf_counter()
            result = self._probability_block(block, 0)
            elapsed = time.perf_counter() - start
            # Chunk-invariant results: the widest (last) candidate's
            # prefix stands as the final answer for those queries.
            out[:chunk] = result
            rate = len(block) / max(elapsed, 1e-9)
            if rate > best_rate:
                best_chunk, best_rate = chunk, rate
        return best_chunk

    # ------------------------------------------------------------------
    # Particle sweep
    # ------------------------------------------------------------------

    def _gumbel_noise(
        self,
        query_indices: np.ndarray,
        position: int,
        particles: int,
        vocab: int,
    ) -> np.ndarray:
        """Standard-Gumbel noise from per-(query, position) substreams.

        Each (query, position) pair owns a counter-based Philox stream
        keyed by its index, so the draws a query sees are independent of
        how the batch is chunked — the block width is a pure throughput
        knob.  Gumbel variates come from ``-log(Exp(1))`` (one log, no
        inverse-CDF cumsum).
        """
        out = np.empty(
            (len(query_indices), particles, vocab), dtype=np.float32
        )
        base = (self.config.seed + 9) & 0xFFFFFFFFFFFFFFFF
        for row, qi in enumerate(query_indices):
            key = [int(qi) * self.num_positions + position, base]
            gen = np.random.Generator(np.random.Philox(key=key))
            out[row] = gen.standard_exponential(
                (particles, vocab), dtype=np.float32
            )
        # Exp(1) can round to 0 in float32; clamp to the smallest
        # positive subnormal so the log stays finite.
        np.maximum(out, np.float32(1e-45), out=out)
        np.log(out, out=out)
        np.negative(out, out=out)
        return out

    def _probability_block(
        self, constraints: np.ndarray, offset: int
    ) -> np.ndarray:
        """Mean particle weight per query for one block of constraints.

        *offset* is the block's first query index within the batch; it
        keys the per-query noise substreams (chunk-width invariance).

        One incremental sweep serves the whole block: per position the
        fused trunk yields masked logits, bound positions multiply the
        particle weight by the conditional of the bound value, unbound
        positions sample by Gumbel-max directly on the logits (the
        reserved id 0 masked to -inf) — no exp/normalise/cumsum
        materialisation.  A particle whose conditional collapsed onto
        the reserved id carries weight 0, exactly as the seed's CDF
        sampler did.
        """
        model = self.model
        assert model is not None
        num_queries = constraints.shape[0]
        particles = self.config.particles
        rows = num_queries * particles
        sweep = model.begin_sweep(
            np.zeros((rows, self.num_positions), dtype=np.int64)
        )
        weights = np.ones((num_queries, particles))
        last = self.num_positions - 1
        for position in range(self.num_positions):
            logits = sweep.logits(position).reshape(
                num_queries, particles, -1
            )
            values = constraints[:, position]
            bound = values >= 0
            # Per-particle log normaliser (the sweep's only exp pass).
            peak = logits.max(axis=2)
            lse = peak + np.log(
                np.exp(logits - peak[:, :, None]).sum(axis=2)
            )
            column = np.empty((num_queries, particles), dtype=np.int64)
            if bound.any():
                picked = np.take_along_axis(
                    logits[bound], values[bound][:, None, None], axis=2
                )[:, :, 0]
                weights[bound] *= np.exp(
                    (picked - lse[bound]).astype(np.float64)
                )
                column[bound] = values[bound, None]
            unbound = ~bound
            if unbound.any():
                masked = logits[unbound]
                # Dead conditional: all remaining float32 mass sits on
                # the reserved unbound id 0 (never seen in training).
                rest_peak = masked[:, :, 1:].max(axis=2)
                dead = (
                    np.exp(
                        (rest_peak - lse[unbound]).astype(np.float32)
                    )
                    == 0.0
                )
                masked[:, :, 0] = -np.inf
                noise = self._gumbel_noise(
                    np.flatnonzero(unbound) + offset,
                    position,
                    particles,
                    masked.shape[2],
                )
                masked += noise
                choice = masked.argmax(axis=2)
                if dead.any():
                    choice[dead] = 1
                    sub = weights[unbound]
                    sub[dead] = 0.0
                    weights[unbound] = sub
                column[unbound] = choice
            if position != last:
                sweep.assign(position, column.reshape(rows))
        return weights.mean(axis=1)

    def _probability(
        self, constraints: Sequence[Optional[int]]
    ) -> float:
        """Single-query likelihood weighting, paper draw-for-draw.

        Keeps the seed's inverse-CDF sampler and RNG stream; only the
        trunk changed — the conditionals now come from one incremental
        fused-float32 sweep instead of a full forward per position.
        """
        model = self.model
        assert model is not None
        fully_bound = all(v is not None for v in constraints)
        particles = 1 if fully_bound else self.config.particles
        rng = np.random.default_rng(self.config.seed + 9)
        return likelihood_weighted_probability(
            model, constraints, particles, rng
        )

    def log_likelihood(self, instances: np.ndarray) -> float:
        """Mean log-likelihood of bound instances (training diagnostics)."""
        if self.model is None:
            raise RuntimeError("model not trained")
        return float(self.model.log_prob(instances).mean())

    def num_parameters(self) -> int:
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.num_parameters()

    def memory_bytes(self) -> int:
        """True in-memory footprint: float64 masters + fused float32
        inference caches + bool layer masks."""
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.memory_bytes()

    def checkpoint_bytes(self) -> int:
        """Paper-facing model size at float32 checkpoint precision."""
        if self.model is None:
            raise RuntimeError("model not built yet")
        return self.model.checkpoint_bytes()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Checkpoint the ResMADE plus the shape universe count."""
        from repro.nn.serialization import save_arrays

        if self.model is None or self.universe is None:
            raise RuntimeError("save() before fit()")
        arrays = self.model.state()
        arrays["_meta_shape"] = np.array(
            [self.size, 1 if self.topology == "star" else 0]
        )
        # Universe counts are unbounded Python ints (outdeg^k sums can
        # exceed int64); store the decimal string, which npz accepts
        # without pickling.
        arrays["_meta_universe"] = np.array([str(self.universe)])
        arrays["_meta_particles"] = np.array([self.config.particles])
        save_arrays(path, arrays)

    @classmethod
    def load(cls, path, store: TripleStore) -> "LMKGU":
        """Rebuild a trained model against the same store."""
        from repro.nn.masked import MADE
        from repro.nn.serialization import load_arrays

        arrays = load_arrays(path)
        size, is_star = arrays["_meta_shape"]
        made = MADE.from_state(arrays)
        config = LMKGUConfig(
            embed_dim=made.embed_dim,
            hidden_sizes=tuple(made.hidden_sizes),
            residual=made.residual,
            particles=int(arrays["_meta_particles"][0]),
        )
        model = cls(
            store,
            "star" if is_star else "chain",
            int(size),
            config,
        )
        model.model = made
        model.universe = int(arrays["_meta_universe"][0])
        return model
