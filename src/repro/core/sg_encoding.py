"""SG-Encoding: the paper's novel subgraph encoding (§V-A1).

A subgraph pattern with up to ``n`` nodes and ``e`` edge occurrences is
represented as ``SG = (A, X, E)``:

- ``A ∈ {0,1}^{n×n×e}`` — adjacency tensor; ``A[i][j][l] = 1`` when the
  l-th edge (in query edge order) connects the i-th node to the j-th node
  (in query node order),
- ``X`` — node feature matrix: row i is the (binary or one-hot) encoding
  of the i-th node's term id, all-zero for variables,
- ``E`` — edge feature matrix: row l encodes the l-th predicate's term id.

Unlike the pattern-bound encoding, A makes the *topology* explicit, so one
model can be trained on stars, chains, and any composite of them.  Node
and edge orders come from :meth:`repro.rdf.pattern.QueryPattern.node_order`
/ ``edge_order`` (first-occurrence order, as in Fig. 2 step 2).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.encoders import TermEncoder
from repro.rdf.pattern import QueryPattern
from repro.rdf.terms import PatternTerm


class SGEncoding:
    """Featurizer producing flattened (A, X, E) vectors."""

    def __init__(
        self,
        max_nodes: int,
        max_edges: int,
        node_encoder: TermEncoder,
        predicate_encoder: TermEncoder,
    ) -> None:
        if max_nodes < 2 or max_edges < 1:
            raise ValueError("need at least 2 nodes and 1 edge")
        self.max_nodes = max_nodes
        self.max_edges = max_edges
        self.nodes = node_encoder
        self.predicates = predicate_encoder
        self.a_width = max_nodes * max_nodes * max_edges
        self.x_width = max_nodes * node_encoder.width
        self.e_width = max_edges * predicate_encoder.width
        self.width = self.a_width + self.x_width + self.e_width

    @classmethod
    def for_query_size(
        cls,
        max_size: int,
        node_encoder: TermEncoder,
        predicate_encoder: TermEncoder,
    ) -> "SGEncoding":
        """Dimension the encoding for star/chain queries up to *max_size*
        triples: both have at most ``size + 1`` nodes and ``size`` edges."""
        return cls(
            max_size + 1, max_size, node_encoder, predicate_encoder
        )

    def components(self, query: QueryPattern):
        """The (A, X, E) arrays of *query*, unflattened."""
        node_order = query.node_order()
        if len(node_order) > self.max_nodes:
            raise ValueError(
                f"query has {len(node_order)} nodes, encoder holds "
                f"{self.max_nodes}"
            )
        if query.size > self.max_edges:
            raise ValueError(
                f"query has {query.size} edges, encoder holds "
                f"{self.max_edges}"
            )
        node_index: Dict[PatternTerm, int] = {
            term: i for i, term in enumerate(node_order)
        }
        a = np.zeros((self.max_nodes, self.max_nodes, self.max_edges))
        e = np.zeros((self.max_edges, self.predicates.width))
        for l, tp in enumerate(query.triples):
            i = node_index[tp.s]
            j = node_index[tp.o]
            a[i, j, l] = 1.0
            e[l] = self.predicates.encode(tp.p)
        x = np.zeros((self.max_nodes, self.nodes.width))
        for i, term in enumerate(node_order):
            x[i] = self.nodes.encode(term)
        return a, x, e

    def encode(self, query: QueryPattern) -> np.ndarray:
        """Flattened [A | X | E] feature vector."""
        a, x, e = self.components(query)
        return np.concatenate([a.ravel(), x.ravel(), e.ravel()])

    def encode_batch(self, queries: List[QueryPattern]) -> np.ndarray:
        return np.stack([self.encode(q) for q in queries])
