"""Pattern-bound query encoding (paper §V-A2).

An encoding tailored to one query topology: the flattened concatenation of
the term encodings in the topology's natural order.

- **Star**: subject encoding followed by the k (predicate, object) pair
  encodings.  Pairs are sorted canonically (bound predicates first by id,
  then bound objects before variables) so that queries differing only in
  triple order featurize identically.
- **Chain**: the node/predicate alternation ``[n1, p1, n2, ..., pk, nk+1]``
  in walk order — the order is already evident from the topology, as the
  paper notes.

A pattern-bound encoder is fixed to one topology and one size; grouped
models that must host several sizes zero-pad shorter queries (an absent
triple encodes exactly like an all-unbound one, which cannot collide with
a real triple because real predicates are always bound in our workloads).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.encoders import TermEncoder
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.terms import PatternTerm, Variable, is_bound


def _pair_sort_key(pair: Tuple[PatternTerm, PatternTerm]):
    p, o = pair
    p_key = (0, p) if is_bound(p) else (1, 0)
    o_key = (0, o) if is_bound(o) else (1, 0)
    return (p_key, o_key)


class PatternBoundEncoder:
    """Flat featurizer for star or chain queries up to a maximum size."""

    def __init__(
        self,
        topology: str,
        max_size: int,
        node_encoder: TermEncoder,
        predicate_encoder: TermEncoder,
    ) -> None:
        if topology not in ("star", "chain"):
            raise ValueError(f"unsupported topology {topology!r}")
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.topology = topology
        self.max_size = max_size
        self.nodes = node_encoder
        self.predicates = predicate_encoder
        # Star: subject + k pairs; chain: k+1 nodes interleaved with k preds.
        self.width = (
            self.nodes.width
            + max_size * (self.predicates.width + self.nodes.width)
        )

    def encode(self, query: QueryPattern) -> np.ndarray:
        """Featurize *query*; raises on topology/size mismatch."""
        if query.size > self.max_size:
            raise ValueError(
                f"query size {query.size} exceeds encoder max "
                f"{self.max_size}"
            )
        if self.topology == "star":
            return self._encode_star(query)
        return self._encode_chain(query)

    def _require_topology(self, query: QueryPattern, topo: Topology) -> None:
        actual = query.topology()
        if actual not in (topo, Topology.SINGLE):
            raise ValueError(
                f"{self.topology} encoder got a {actual.value} query"
            )

    def _encode_star(self, query: QueryPattern) -> np.ndarray:
        self._require_topology(query, Topology.STAR)
        centre = query.triples[0].s
        pairs = sorted(
            ((tp.p, tp.o) for tp in query.triples), key=_pair_sort_key
        )
        parts: List[np.ndarray] = [self.nodes.encode(centre)]
        for p, o in pairs:
            parts.append(self.predicates.encode(p))
            parts.append(self.nodes.encode(o))
        return self._pad(parts, len(pairs))

    def _encode_chain(self, query: QueryPattern) -> np.ndarray:
        self._require_topology(query, Topology.CHAIN)
        parts: List[np.ndarray] = [self.nodes.encode(query.triples[0].s)]
        for tp in query.triples:
            parts.append(self.predicates.encode(tp.p))
            parts.append(self.nodes.encode(tp.o))
        return self._pad(parts, len(query.triples))

    def _pad(self, parts: List[np.ndarray], size: int) -> np.ndarray:
        pad_per_triple = self.predicates.width + self.nodes.width
        missing = self.max_size - size
        if missing > 0:
            parts.append(np.zeros(missing * pad_per_triple))
        vec = np.concatenate(parts)
        assert vec.shape == (self.width,)
        return vec

    def encode_batch(self, queries: List[QueryPattern]) -> np.ndarray:
        """Featurize a list of queries into a (n, width) matrix."""
        return np.stack([self.encode(q) for q in queries])
