"""Term-level encodings: one-hot and binary (paper §V).

Terms are dictionary-encoded ids in ``[1, domain]``; id 0 means unbound.
The one-hot encoding sets the term's position to 1 (all-zero for unbound);
the binary encoding writes the id in base 2 (all-zero for unbound), using
``ceil(log2(domain + 1))`` bits so every id including ``domain`` fits.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.rdf.terms import PatternTerm, Variable


def one_hot_width(domain: int) -> int:
    """Vector width of the one-hot encoding for ids in [1, domain]."""
    if domain < 1:
        raise ValueError("domain must be >= 1")
    return domain


def binary_width(domain: int) -> int:
    """Vector width of the binary encoding for ids in [1, domain]."""
    if domain < 1:
        raise ValueError("domain must be >= 1")
    return max(1, math.ceil(math.log2(domain + 1)))


def encode_one_hot(term: PatternTerm, domain: int) -> np.ndarray:
    """One-hot encode a term id; variables become the zero vector."""
    vec = np.zeros(one_hot_width(domain))
    if isinstance(term, Variable):
        return vec
    if not 1 <= term <= domain:
        raise ValueError(f"term id {term} outside [1, {domain}]")
    vec[term - 1] = 1.0
    return vec


def encode_binary(term: PatternTerm, domain: int) -> np.ndarray:
    """Binary encode a term id (LSB first); variables become zeros."""
    width = binary_width(domain)
    vec = np.zeros(width)
    if isinstance(term, Variable):
        return vec
    if not 1 <= term <= domain:
        raise ValueError(f"term id {term} outside [1, {domain}]")
    value = int(term)
    for bit in range(width):
        vec[bit] = (value >> bit) & 1
    return vec


def decode_binary(vec: np.ndarray) -> int:
    """Invert :func:`encode_binary`; returns 0 for the all-zero vector."""
    value = 0
    for bit, flag in enumerate(np.asarray(vec)):
        if flag >= 0.5:
            value |= 1 << bit
    return value


class TermEncoder:
    """Fixed-width encoder for one term domain (nodes or predicates)."""

    def __init__(self, domain: int, kind: str = "binary") -> None:
        if kind not in ("binary", "one_hot"):
            raise ValueError(f"unknown encoding kind {kind!r}")
        self.domain = domain
        self.kind = kind
        self.width = (
            binary_width(domain) if kind == "binary" else one_hot_width(domain)
        )

    def encode(self, term: PatternTerm) -> np.ndarray:
        if self.kind == "binary":
            return encode_binary(term, self.domain)
        return encode_one_hot(term, self.domain)

    def __repr__(self) -> str:
        return f"TermEncoder({self.kind}, domain={self.domain})"


def make_encoders(
    num_nodes: int, num_predicates: int, kind: str = "binary"
) -> "tuple[TermEncoder, TermEncoder]":
    """(node encoder, predicate encoder) for one knowledge graph."""
    return (
        TermEncoder(num_nodes, kind),
        TermEncoder(num_predicates, kind),
    )
