"""Outlier buffer: the improvement the paper proposes in §VIII-C.

LMKG-S's dominant failure mode is the extreme-cardinality outliers
(Fig. 5 / Fig. 9); the paper suggests that "given a larger space budget,
a possible improvement can be to store the cardinalities of the outliers
on the side".  :class:`OutlierBuffer` implements exactly that: it wraps
any estimator, memorises the top-k training queries by cardinality (keyed
on the variable-renaming-invariant canonical form), answers those exactly,
and delegates everything else.

The buffer also detects *covered* queries: a query identical to a stored
outlier up to variable naming hits the buffer even if it was generated
independently.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.estimator import Estimator
from repro.rdf.pattern import QueryPattern
from repro.sampling.workload import QueryRecord


class OutlierBuffer:
    """Exact side-storage for the heaviest queries of a workload."""

    def __init__(self, capacity: int = 100) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._buffer: Dict[Tuple, int] = {}
        self._threshold: float = float("inf")

    def fit(self, records: Sequence[QueryRecord]) -> int:
        """Store the top-``capacity`` records by cardinality.

        Returns the number of entries stored and records the smallest
        buffered cardinality as the outlier threshold (useful for
        diagnostics).
        """
        self._buffer.clear()
        if self.capacity == 0 or not records:
            self._threshold = float("inf")
            return 0
        heaviest = sorted(
            records, key=lambda r: r.cardinality, reverse=True
        )[: self.capacity]
        for record in heaviest:
            self._buffer[record.query.canonical_key()] = (
                record.cardinality
            )
        self._threshold = float(heaviest[-1].cardinality)
        return len(self._buffer)

    @property
    def threshold(self) -> float:
        """Smallest cardinality held in the buffer."""
        return self._threshold

    def __len__(self) -> int:
        return len(self._buffer)

    def lookup(self, query: QueryPattern) -> Optional[int]:
        """Exact cardinality when *query* is buffered, else None."""
        return self._buffer.get(query.canonical_key())

    def memory_bytes(self) -> int:
        """Rough buffer size: one canonical key + count per entry."""
        return len(self._buffer) * 64


class BufferedEstimator(Estimator):
    """An estimator wrapped with an :class:`OutlierBuffer`.

    Matches the common ``estimate(query) -> float`` protocol so it can
    stand in for the raw model anywhere, including the bench harness.
    """

    def __init__(
        self,
        base,
        records: Sequence[QueryRecord],
        capacity: int = 100,
        name: Optional[str] = None,
    ) -> None:
        self.base = base
        self.buffer = OutlierBuffer(capacity)
        self.buffer.fit(records)
        self.name = name or f"{getattr(base, 'name', 'model')}+buf"
        self.hits = 0
        self.misses = 0

    def _estimate_one(self, query: QueryPattern) -> float:
        exact = self.buffer.lookup(query)
        if exact is not None:
            self.hits += 1
            return float(exact)
        self.misses += 1
        return float(self.base.estimate(query))

    def memory_bytes(self) -> int:
        base_bytes = 0
        if hasattr(self.base, "memory_bytes"):
            base_bytes = self.base.memory_bytes()
        return base_bytes + self.buffer.memory_bytes()
