"""LMKG core: encodings, the learned estimators, and the framework.

Beyond the paper's evaluated models (LMKG-S, LMKG-U, grouping, the
façade), this package implements its future-work items: the compound
S+U estimator (§VII-B), execution-phase workload-shift adaptation
(§IV), range queries via histogram-selectivity encodings (§IV), and a
NeuroCard-style universal autoregressive model over all shapes (§II).
"""

from repro.core.compound import CompoundEstimator, ShapeWeights
from repro.core.decomposition import (
    combine_estimates,
    decompose,
    shared_variables,
)
from repro.core.encoders import (
    TermEncoder,
    binary_width,
    decode_binary,
    encode_binary,
    encode_one_hot,
    make_encoders,
    one_hot_width,
)
from repro.core.estimator import (
    Estimator,
    EstimatorContractError,
    finalize_estimates,
)
from repro.core.framework import (
    LMKG,
    CheckpointError,
    CreationReport,
    EstimationError,
)
from repro.core.grouping import (
    GroupingStrategy,
    SingleGrouping,
    SizeGrouping,
    SpecializedGrouping,
    TypeGrouping,
    group_extent,
    make_grouping,
)
from repro.core.lmkg_s import LMKGS, LMKGSConfig
from repro.core.lmkg_u import LMKGU, LMKGUConfig
from repro.core.lmkg_u_universal import UniversalLMKGU
from repro.core.metrics import AccuracySummary, q_error, q_errors, summarize
from repro.core.monitor import (
    AdaptationEvent,
    AdaptiveLMKG,
    DriftReport,
    WorkloadMonitor,
    total_variation,
)
from repro.core.outliers import BufferedEstimator, OutlierBuffer
from repro.core.planner import (
    ModelPlan,
    ModelPlanner,
    PlannedModel,
    WorkloadProfile,
    project_lmkgs_bytes,
)
from repro.core.pattern_bound import PatternBoundEncoder
from repro.core.ranges import (
    EquiDepthHistogram,
    HistogramRangeEstimator,
    LMKGSRange,
    PredicateHistograms,
    RangeConstraint,
    RangeQuery,
    RangeRecord,
    count_range_query,
    format_sparql_range,
    generate_range_workload,
    parse_sparql_range,
)
from repro.core.sg_encoding import SGEncoding

__all__ = [
    "AdaptationEvent",
    "AdaptiveLMKG",
    "CompoundEstimator",
    "DriftReport",
    "EquiDepthHistogram",
    "HistogramRangeEstimator",
    "LMKGSRange",
    "UniversalLMKGU",
    "PredicateHistograms",
    "RangeConstraint",
    "RangeQuery",
    "RangeRecord",
    "count_range_query",
    "format_sparql_range",
    "generate_range_workload",
    "parse_sparql_range",
    "WorkloadMonitor",
    "total_variation",
    "ShapeWeights",
    "combine_estimates",
    "decompose",
    "shared_variables",
    "TermEncoder",
    "binary_width",
    "decode_binary",
    "encode_binary",
    "encode_one_hot",
    "make_encoders",
    "one_hot_width",
    "LMKG",
    "CheckpointError",
    "CreationReport",
    "EstimationError",
    "Estimator",
    "EstimatorContractError",
    "finalize_estimates",
    "GroupingStrategy",
    "SingleGrouping",
    "SizeGrouping",
    "SpecializedGrouping",
    "TypeGrouping",
    "group_extent",
    "make_grouping",
    "LMKGS",
    "LMKGSConfig",
    "LMKGU",
    "LMKGUConfig",
    "AccuracySummary",
    "q_error",
    "q_errors",
    "summarize",
    "BufferedEstimator",
    "OutlierBuffer",
    "ModelPlan",
    "ModelPlanner",
    "PlannedModel",
    "WorkloadProfile",
    "project_lmkgs_bytes",
    "PatternBoundEncoder",
    "SGEncoding",
]
