"""The chaos timeline DSL: scripted faults fired mid-replay.

A timeline is a tiny script — one step per line (``;`` also separates)
— executed on a wall clock that starts when :func:`run_timeline` is
called, typically in a thread racing an open-loop replay::

    at 5s: kill worker
    at 8s: reload
    at 10s: mutate 500
    at 12s: maintain
    at 15s: corrupt next checkpoint garbage-manifest
    at 16s: mutate 200
    at 17s: maintain

Grammar: ``at <seconds>s: <action> [args...]``.  Actions:

- ``kill worker [N]`` — SIGKILL a supervised worker process (the Nth,
  default the first live one); the PR 6 supervisor must restart it and
  retry its in-flight chunks on siblings.
- ``reload [checkpoint [snapshot]]`` — ``POST /admin/reload`` (the
  blue-green swap) with optional explicit artifact paths.
- ``mutate N`` — add N vocabulary-preserving triples to the live store
  copy the maintenance runner sees, creating a real delta.
- ``maintain [full]`` — run the PR 9 incremental
  :class:`~repro.maintain.runner.MaintenanceRunner` and hand the
  published generation to the server's ``/admin/reload``.
- ``corrupt next checkpoint [mode]`` — arm corruption: the *next*
  ``maintain`` publish is corrupted on disk before its reload, which
  the artifact gate must reject (409) while the old generation keeps
  serving.  Modes are
  :data:`repro.serve.faults.CORRUPTION_MODES`.
- ``corrupt checkpoint <dir> [mode]`` — corrupt an explicit checkpoint
  directory immediately, then attempt to reload it (expects the 409).

Execution is **fail-soft**: a step that raises is logged
(``ok: False``) and the storm continues — chaos must never crash the
harness; the caller asserts on the returned log.  Unknown actions and
malformed times are *parse*-time :class:`TimelineError`\\ s, so a typo
fails fast instead of silently never firing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple

from repro.serve.faults import CORRUPTION_MODES


class TimelineError(RuntimeError):
    """A timeline script that cannot be parsed."""


@dataclass(frozen=True)
class TimelineStep:
    """One scheduled action: run ``action(*args)`` at ``t0 + at_s``."""

    at_s: float
    action: str
    args: Tuple[str, ...] = ()


class TimelineContext(Protocol):
    """What a timeline executes against (see ``ReplayHarness``)."""

    def kill_worker(self, index: Optional[int] = None) -> str: ...

    def reload(
        self,
        checkpoint: Optional[str] = None,
        snapshot: Optional[str] = None,
    ) -> str: ...

    def mutate(self, count: int) -> str: ...

    def maintain(self, full: bool = False) -> str: ...

    def corrupt_next_checkpoint(self, mode: str) -> str: ...

    def corrupt_checkpoint(self, path: str, mode: str) -> str: ...


def _parse_time(token: str, lineno: int) -> float:
    token = token.strip()
    if not token.endswith("s"):
        raise TimelineError(
            f"line {lineno}: time must end in 's', got {token!r}"
        )
    try:
        value = float(token[:-1])
    except ValueError:
        raise TimelineError(
            f"line {lineno}: bad time {token!r}"
        )
    if value < 0:
        raise TimelineError(
            f"line {lineno}: time must be >= 0, got {token!r}"
        )
    return value


def _parse_action(
    text: str, lineno: int
) -> Tuple[str, Tuple[str, ...]]:
    words = text.split()
    if not words:
        raise TimelineError(f"line {lineno}: empty action")
    head = words[0]
    if head == "kill":
        if len(words) < 2 or words[1] != "worker" or len(words) > 3:
            raise TimelineError(
                f"line {lineno}: expected 'kill worker [N]'"
            )
        if len(words) == 3:
            try:
                int(words[2])
            except ValueError:
                raise TimelineError(
                    f"line {lineno}: worker index must be an int, "
                    f"got {words[2]!r}"
                )
        return "kill_worker", tuple(words[2:])
    if head == "reload":
        if len(words) > 3:
            raise TimelineError(
                f"line {lineno}: expected "
                "'reload [checkpoint [snapshot]]'"
            )
        return "reload", tuple(words[1:])
    if head == "mutate":
        if len(words) != 2:
            raise TimelineError(
                f"line {lineno}: expected 'mutate N'"
            )
        try:
            count = int(words[1])
        except ValueError:
            raise TimelineError(
                f"line {lineno}: mutate count must be an int, "
                f"got {words[1]!r}"
            )
        if count < 1:
            raise TimelineError(
                f"line {lineno}: mutate count must be >= 1"
            )
        return "mutate", (words[1],)
    if head == "maintain":
        if len(words) == 1:
            return "maintain", ()
        if len(words) == 2 and words[1] == "full":
            return "maintain", ("full",)
        raise TimelineError(
            f"line {lineno}: expected 'maintain [full]'"
        )
    if head == "corrupt":
        if len(words) >= 3 and words[1] == "next" and words[2] == "checkpoint":
            mode = words[3] if len(words) == 4 else CORRUPTION_MODES[0]
            if len(words) > 4:
                raise TimelineError(
                    f"line {lineno}: expected "
                    "'corrupt next checkpoint [mode]'"
                )
            if mode not in CORRUPTION_MODES:
                raise TimelineError(
                    f"line {lineno}: unknown corruption mode {mode!r} "
                    f"(choose from {', '.join(CORRUPTION_MODES)})"
                )
            return "corrupt_next_checkpoint", (mode,)
        if len(words) in (3, 4) and words[1] == "checkpoint":
            mode = words[3] if len(words) == 4 else CORRUPTION_MODES[0]
            if mode not in CORRUPTION_MODES:
                raise TimelineError(
                    f"line {lineno}: unknown corruption mode {mode!r} "
                    f"(choose from {', '.join(CORRUPTION_MODES)})"
                )
            return "corrupt_checkpoint", (words[2], mode)
        raise TimelineError(
            f"line {lineno}: expected 'corrupt next checkpoint [mode]' "
            "or 'corrupt checkpoint <dir> [mode]'"
        )
    raise TimelineError(
        f"line {lineno}: unknown action {head!r} (know: kill worker, "
        "reload, mutate, maintain, corrupt)"
    )


def parse_timeline(script: str) -> List[TimelineStep]:
    """Parse a timeline script into time-ordered steps."""
    steps: List[TimelineStep] = []
    for lineno, raw_line in enumerate(script.splitlines(), start=1):
        for raw in raw_line.split(";"):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if not line.startswith("at "):
                raise TimelineError(
                    f"line {lineno}: step must start with "
                    f"'at <time>s:', got {line!r}"
                )
            rest = line[3:]
            if ":" not in rest:
                raise TimelineError(
                    f"line {lineno}: missing ':' after time in {line!r}"
                )
            time_token, action_text = rest.split(":", 1)
            at_s = _parse_time(time_token, lineno)
            action, args = _parse_action(action_text.strip(), lineno)
            steps.append(TimelineStep(at_s, action, args))
    return sorted(steps, key=lambda step: step.at_s)


def run_timeline(
    steps: List[TimelineStep],
    context: TimelineContext,
    stop_event: Optional[threading.Event] = None,
) -> List[dict]:
    """Execute *steps* on schedule against *context*; returns the log.

    Each log entry records the step, when it actually started relative
    to t0, whether it raised, and the context's detail string.  Setting
    *stop_event* aborts the remaining schedule.
    """
    stop = stop_event or threading.Event()
    t0 = time.monotonic()
    log: List[dict] = []
    for step in steps:
        while True:
            now = time.monotonic()
            if now - t0 >= step.at_s or stop.is_set():
                break
            time.sleep(min(step.at_s - (now - t0), 0.05))
        if stop.is_set():
            break
        entry = {
            "at_s": step.at_s,
            "action": step.action,
            "args": list(step.args),
            "started_s": round(time.monotonic() - t0, 3),
        }
        try:
            if step.action == "kill_worker":
                index = int(step.args[0]) if step.args else None
                detail = context.kill_worker(index)
            elif step.action == "reload":
                detail = context.reload(*step.args)
            elif step.action == "mutate":
                detail = context.mutate(int(step.args[0]))
            elif step.action == "maintain":
                detail = context.maintain(full="full" in step.args)
            elif step.action == "corrupt_next_checkpoint":
                detail = context.corrupt_next_checkpoint(step.args[0])
            elif step.action == "corrupt_checkpoint":
                detail = context.corrupt_checkpoint(*step.args)
            else:  # unreachable after parse, kept for safety
                raise TimelineError(
                    f"unknown action {step.action!r}"
                )
            entry["ok"] = True
            entry["detail"] = detail
        except Exception as exc:  # noqa: BLE001 — chaos is fail-soft
            entry["ok"] = False
            entry["detail"] = f"{type(exc).__name__}: {exc}"
        log.append(entry)
    return log


def start_timeline(
    steps: List[TimelineStep],
    context: TimelineContext,
    stop_event: Optional[threading.Event] = None,
) -> Tuple[threading.Thread, List[dict]]:
    """Run the timeline in a daemon thread; returns (thread, live log).

    The returned list is appended to as steps execute — join the thread
    before reading it for the final verdict."""
    log: List[dict] = []

    def _run() -> None:
        log.extend(run_timeline(steps, context, stop_event))

    thread = threading.Thread(
        target=_run, name="repro-chaos-timeline", daemon=True
    )
    thread.start()
    return thread, log
