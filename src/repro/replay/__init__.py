"""Workload replay, chaos orchestration, and SLO gating.

The resilience harness that composes everything the serving and
maintenance layers ship and asserts SLOs while it all happens at once:

- :mod:`repro.replay.trace`    — recorded-trace format + generators
  (shape mixes, Zipf-skewed popularity, Poisson arrivals),
- :mod:`repro.replay.driver`   — the open-loop driver (arrival schedule
  honored regardless of response lag, keep-alive client pool,
  per-request deadlines, server-derived 429 backoff),
- :mod:`repro.replay.slo`      — p50/p99/p99.9, achieved vs. offered
  rate, shed/degraded/error rates, error-budget verdicts,
- :mod:`repro.replay.timeline` — the scripted chaos DSL
  (``at 5s: kill worker; at 12s: maintain; ...``),
- :mod:`repro.replay.harness`  — the in-process serving stack the
  timeline drives (worker kills, hot reloads, live maintenance,
  checkpoint corruption),
- :mod:`repro.replay.strategies` — hypothesis composites for the
  generative query fuzzer (imported lazily; serving never depends on
  hypothesis),
- :mod:`repro.replay.corpus`   — persisted minimized counterexamples,
  replayed deterministically in tier-1.

CLI surface: ``repro replay record / run / report``.  See
``src/repro/replay/README.md`` for the trace format, the timeline
grammar, and the SLO report fields.
"""

from repro.replay.corpus import (
    CorpusError,
    iter_corpus,
    save_counterexample,
)
from repro.replay.driver import ReplayDriver, replay_trace
from repro.replay.harness import (
    HarnessError,
    ReplayHarness,
    vocab_preserving_delta,
)
from repro.replay.slo import (
    SLO,
    RequestOutcome,
    SLOReport,
    build_report,
    format_report,
)
from repro.replay.timeline import (
    TimelineError,
    TimelineStep,
    parse_timeline,
    run_timeline,
    start_timeline,
)
from repro.replay.trace import (
    DEFAULT_MIX,
    Trace,
    TraceEvent,
    TraceFormatError,
    covering_shapes,
    generate_trace,
    load_trace,
    parse_mix,
    save_trace,
)

__all__ = [
    "CorpusError",
    "DEFAULT_MIX",
    "HarnessError",
    "ReplayDriver",
    "ReplayHarness",
    "RequestOutcome",
    "SLO",
    "SLOReport",
    "Trace",
    "TraceEvent",
    "TraceFormatError",
    "TimelineError",
    "TimelineStep",
    "build_report",
    "covering_shapes",
    "format_report",
    "generate_trace",
    "iter_corpus",
    "load_trace",
    "parse_mix",
    "parse_timeline",
    "replay_trace",
    "run_timeline",
    "save_counterexample",
    "save_trace",
    "start_timeline",
    "vocab_preserving_delta",
]
