"""SLO accounting for replay runs: latency percentiles + error budget.

The driver hands every request's :class:`RequestOutcome` to
:func:`build_report`, which turns them into an :class:`SLOReport` — the
JSON-ready record that lands in ``BENCH_store.json`` under ``replay``
and in CI artifacts.  Latency is measured from the **scheduled arrival
time**, not the send time: in an open-loop run, time a request spends
waiting for a free client connection is server-induced queueing and
must count against the SLO (measuring from send hides overload —
coordinated omission).

:class:`SLO` declares the budget; :meth:`SLOReport.evaluate` renders
the verdict (``ok`` / ``violated`` plus the violated clauses), so a
caller gates with one assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class RequestOutcome:
    """Terminal result of one scheduled request.

    ``status`` is the final HTTP status; 0 means the request never got
    an HTTP answer (transport error, or the client-side deadline
    expired before a response).
    """

    offset_s: float
    status: int
    latency_s: float
    degraded: bool = False
    retries: int = 0
    deadline_missed: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def shed(self) -> bool:
        return self.status == 429


@dataclass
class SLO:
    """The error budget a replay run is gated against."""

    p99_ms: float = 500.0
    p999_ms: Optional[float] = None
    max_shed_rate: float = 0.05
    min_achieved_fraction: float = 0.95
    max_error_rate: float = 0.0  # non-{200,429} responses
    max_deadline_miss_rate: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "max_shed_rate": self.max_shed_rate,
            "min_achieved_fraction": self.min_achieved_fraction,
            "max_error_rate": self.max_error_rate,
            "max_deadline_miss_rate": self.max_deadline_miss_rate,
        }


@dataclass
class SLOReport:
    """What the run measured, plus the budget verdict."""

    offered_rate_qps: float
    duration_s: float
    requests: int
    completed: int  # 200s
    shed: int  # 429s
    errors: int  # non-{200,429}, including transport failures
    degraded: int
    deadline_missed: int
    retries: int
    achieved_rate_qps: float
    latency_ms: Dict[str, float] = field(default_factory=dict)
    status_counts: Dict[str, int] = field(default_factory=dict)
    slo: Optional[dict] = None
    verdict: str = "unevaluated"
    violations: List[str] = field(default_factory=list)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def degraded_rate(self) -> float:
        return self.degraded / self.requests if self.requests else 0.0

    @property
    def achieved_fraction(self) -> float:
        if self.offered_rate_qps <= 0:
            return 1.0
        return self.achieved_rate_qps / self.offered_rate_qps

    def evaluate(self, slo: SLO) -> "SLOReport":
        """Fill ``verdict`` / ``violations`` against *slo* (chainable)."""
        self.slo = slo.to_dict()
        violations = []
        p99 = self.latency_ms.get("p99")
        if p99 is not None and p99 > slo.p99_ms:
            violations.append(
                f"p99 {p99:.1f} ms > budget {slo.p99_ms:.1f} ms"
            )
        p999 = self.latency_ms.get("p999")
        if (
            slo.p999_ms is not None
            and p999 is not None
            and p999 > slo.p999_ms
        ):
            violations.append(
                f"p99.9 {p999:.1f} ms > budget {slo.p999_ms:.1f} ms"
            )
        if self.shed_rate > slo.max_shed_rate:
            violations.append(
                f"shed rate {self.shed_rate:.3f} > "
                f"budget {slo.max_shed_rate:.3f}"
            )
        if self.error_rate > slo.max_error_rate:
            violations.append(
                f"error rate {self.error_rate:.3f} > "
                f"budget {slo.max_error_rate:.3f}"
            )
        if self.achieved_fraction < slo.min_achieved_fraction:
            violations.append(
                f"achieved {self.achieved_rate_qps:.1f} qps is "
                f"{self.achieved_fraction:.2f}x offered "
                f"{self.offered_rate_qps:.1f} qps, below "
                f"{slo.min_achieved_fraction:.2f}x"
            )
        if slo.max_deadline_miss_rate is not None and self.requests:
            miss_rate = self.deadline_missed / self.requests
            if miss_rate > slo.max_deadline_miss_rate:
                violations.append(
                    f"deadline miss rate {miss_rate:.3f} > "
                    f"budget {slo.max_deadline_miss_rate:.3f}"
                )
        self.violations = violations
        self.verdict = "ok" if not violations else "violated"
        return self

    def to_dict(self) -> dict:
        return {
            "offered_rate_qps": round(self.offered_rate_qps, 3),
            "achieved_rate_qps": round(self.achieved_rate_qps, 3),
            "achieved_fraction": round(self.achieved_fraction, 4),
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": round(self.shed_rate, 4),
            "errors": self.errors,
            "error_rate": round(self.error_rate, 4),
            "degraded": self.degraded,
            "degraded_rate": round(self.degraded_rate, 4),
            "deadline_missed": self.deadline_missed,
            "retries": self.retries,
            "latency_ms": self.latency_ms,
            "status_counts": self.status_counts,
            "slo": self.slo,
            "verdict": self.verdict,
            "violations": list(self.violations),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SLOReport":
        return cls(
            offered_rate_qps=float(payload["offered_rate_qps"]),
            duration_s=float(payload["duration_s"]),
            requests=int(payload["requests"]),
            completed=int(payload["completed"]),
            shed=int(payload["shed"]),
            errors=int(payload["errors"]),
            degraded=int(payload["degraded"]),
            deadline_missed=int(payload["deadline_missed"]),
            retries=int(payload["retries"]),
            achieved_rate_qps=float(payload["achieved_rate_qps"]),
            latency_ms=dict(payload.get("latency_ms", {})),
            status_counts=dict(payload.get("status_counts", {})),
            slo=payload.get("slo"),
            verdict=payload.get("verdict", "unevaluated"),
            violations=list(payload.get("violations", [])),
        )


def build_report(
    outcomes: Sequence[RequestOutcome],
    offered_rate_qps: float,
    duration_s: float,
) -> SLOReport:
    """Aggregate per-request outcomes into an (unevaluated) report."""
    outcomes = list(outcomes)
    completed = [o for o in outcomes if o.ok]
    shed = sum(1 for o in outcomes if o.shed)
    errors = sum(1 for o in outcomes if not o.ok and not o.shed)
    status_counts: Dict[str, int] = {}
    for outcome in outcomes:
        key = str(outcome.status) if outcome.status else "transport"
        status_counts[key] = status_counts.get(key, 0) + 1
    duration = max(float(duration_s), 1e-9)
    latency_ms: Dict[str, float] = {}
    if completed:
        lat = np.array(
            [o.latency_s for o in completed], dtype=np.float64
        )
        latency_ms = {
            "p50": round(float(np.percentile(lat, 50)) * 1e3, 3),
            "p90": round(float(np.percentile(lat, 90)) * 1e3, 3),
            "p99": round(float(np.percentile(lat, 99)) * 1e3, 3),
            "p999": round(float(np.percentile(lat, 99.9)) * 1e3, 3),
            "max": round(float(lat.max()) * 1e3, 3),
        }
    return SLOReport(
        offered_rate_qps=float(offered_rate_qps),
        duration_s=duration,
        requests=len(outcomes),
        completed=len(completed),
        shed=shed,
        errors=errors,
        degraded=sum(1 for o in outcomes if o.degraded),
        deadline_missed=sum(1 for o in outcomes if o.deadline_missed),
        retries=sum(o.retries for o in outcomes),
        achieved_rate_qps=len(completed) / duration,
        latency_ms=latency_ms,
        status_counts=status_counts,
    )


def format_report(report: SLOReport) -> str:
    """Human-readable multi-line rendering (CLI ``replay report``)."""
    lines = [
        f"offered:     {report.offered_rate_qps:.1f} qps over "
        f"{report.duration_s:.1f} s ({report.requests} requests)",
        f"achieved:    {report.achieved_rate_qps:.1f} qps "
        f"({report.achieved_fraction:.2f}x offered, "
        f"{report.completed} completed)",
        f"shed:        {report.shed} (rate {report.shed_rate:.3f})",
        f"errors:      {report.errors} "
        f"(rate {report.error_rate:.3f}) "
        f"statuses {report.status_counts}",
        f"degraded:    {report.degraded} "
        f"(rate {report.degraded_rate:.3f})",
        f"deadline:    {report.deadline_missed} missed, "
        f"{report.retries} retries",
    ]
    if report.latency_ms:
        lines.append(
            "latency:     "
            + "  ".join(
                f"{k}={v:.1f}ms"
                for k, v in report.latency_ms.items()
            )
        )
    lines.append(f"verdict:     {report.verdict}")
    for violation in report.violations:
        lines.append(f"  - {violation}")
    return "\n".join(lines)
