"""Hypothesis strategies for generative query fuzzing.

The fuzz suite (``tests/replay/test_fuzz_contract.py``) round-trips
arbitrary queries through parse → admission → estimate → serve and
asserts the Estimator contract end to end.  These are its composite
strategies, grounded in a *real* store's vocabulary: terms are decoded
from the served dictionary (so most queries are answerable) with a
controlled dose of never-seen terms, over-deep shapes, and outright
malformed text (so the 400/422 taxonomy gets exercised too).

Importing this module does not require hypothesis; building a strategy
does (`:func:`require_hypothesis``) — the serving layer itself must
never grow a test-only dependency.

Idiom (see SNIPPETS.md): ``@composite`` builders over a drawn size,
steered in the property itself via ``hyp.target(...)`` toward the big /
deep / weird corner of the space.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple

import numpy as np

from repro.rdf.store import TripleStore

try:  # hypothesis is a test dependency, not a serving dependency
    from hypothesis import strategies as st
    from hypothesis.strategies import composite

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover — exercised only without dev deps
    HAVE_HYPOTHESIS = False

    def composite(fn):  # type: ignore[misc]
        return fn


def require_hypothesis() -> None:
    if not HAVE_HYPOTHESIS:
        raise RuntimeError(
            "repro.replay.strategies needs the 'hypothesis' package "
            "(a test dependency) to build strategies"
        )


def fuzz_settings(default_examples: int = 30) -> dict:
    """Shared ``@settings`` kwargs: example budget from the
    ``GENTEST_EXAMPLES`` env var, no deadline (server round trips),
    and the filter/slowness health checks suppressed (deep draws
    filter a lot by design)."""
    require_hypothesis()
    from hypothesis import HealthCheck

    return dict(
        max_examples=int(
            os.environ.get("GENTEST_EXAMPLES", default_examples)
        ),
        deadline=None,
        suppress_health_check=[
            HealthCheck.filter_too_much,
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
        ],
    )


# ----------------------------------------------------------------------
# Vocabulary grounding
# ----------------------------------------------------------------------


def vocab_sample(
    store: TripleStore, limit: int = 200, seed: int = 0
) -> Tuple[List[str], List[str]]:
    """A deterministic (nodes, predicates) lexical sample from the
    store's dictionary — the ground truth the strategies draw from."""
    if store.dictionary is None:
        raise RuntimeError("fuzzing needs a dictionary-encoded store")
    rng = np.random.default_rng(seed)
    rows = store.backend.rows()
    node_ids = np.unique(
        np.concatenate([rows[:, 0], rows[:, 2]])
    )
    predicate_ids = np.unique(rows[:, 1])
    if len(node_ids) > limit:
        node_ids = rng.choice(node_ids, size=limit, replace=False)
    if len(predicate_ids) > limit:
        predicate_ids = rng.choice(
            predicate_ids, size=limit, replace=False
        )
    nodes = [
        store.dictionary.nodes.decode(int(i)) for i in sorted(node_ids)
    ]
    predicates = [
        store.dictionary.predicates.decode(int(i))
        for i in sorted(predicate_ids)
    ]
    return nodes, predicates


def render_term(lexical: str) -> str:
    """Lexical form to SPARQL surface form (IRIs get angle brackets)."""
    if lexical.startswith('"'):
        return lexical
    return f"<{lexical}>"


#: terms no dictionary has ever seen — the unknown-vocabulary corner.
UNKNOWN_NODES = tuple(
    f"urn:fuzz:never-seen-node-{i}" for i in range(4)
)
UNKNOWN_PREDICATES = tuple(
    f"urn:fuzz:never-seen-predicate-{i}" for i in range(4)
)


# ----------------------------------------------------------------------
# Query strategies
# ----------------------------------------------------------------------


def _terms(
    known: Sequence[str], unknown: Sequence[str], unknown_rate: float
):
    """Mostly known vocabulary, a controlled dose of never-seen terms."""
    known_terms = st.sampled_from(list(known))
    if not unknown or unknown_rate <= 0:
        return known_terms
    weight = max(int(round(1 / unknown_rate)) - 1, 1)
    return st.one_of(*([known_terms] * weight), st.sampled_from(list(unknown)))


@composite
def star_texts(
    draw,
    nodes: Sequence[str],
    predicates: Sequence[str],
    min_size: int = 1,
    max_size: int = 5,
    unknown_rate: float = 0.0,
):
    """A star BGP: one centre, *size* predicate/object edges."""
    size = draw(st.integers(min_size, max_size))
    centre = draw(
        st.one_of(
            st.just("?s"),
            _terms(nodes, UNKNOWN_NODES, unknown_rate).map(render_term),
        )
    )
    variables = ["?s"] if centre == "?s" else []
    lines = []
    for i in range(size):
        predicate = render_term(
            draw(_terms(predicates, UNKNOWN_PREDICATES, unknown_rate))
        )
        # The parser has no SELECT *; the projection is explicit, so
        # a fully ground pattern has nothing to project — force the
        # last edge's object to a variable when none was drawn.
        must_var = i == size - 1 and not variables
        if must_var or draw(st.booleans()):
            obj = f"?o{i}"
            variables.append(obj)
        else:
            obj = render_term(
                draw(_terms(nodes, UNKNOWN_NODES, unknown_rate))
            )
        lines.append(f"{centre} {predicate} {obj} .")
    return (
        "SELECT "
        + " ".join(variables)
        + " WHERE { "
        + " ".join(lines)
        + " }"
    )


@composite
def chain_texts(
    draw,
    nodes: Sequence[str],
    predicates: Sequence[str],
    min_size: int = 2,
    max_size: int = 5,
    unknown_rate: float = 0.0,
):
    """A chain BGP: ``n0 -p0-> n1 -p1-> ... -> nk``."""
    size = draw(st.integers(min_size, max_size))
    names = []
    for i in range(size + 1):
        if draw(st.booleans()):
            names.append(f"?n{i}")
        else:
            names.append(
                render_term(
                    draw(_terms(nodes, UNKNOWN_NODES, unknown_rate))
                )
            )
    variables = [n for n in names if n.startswith("?")]
    if not variables:  # explicit projection needs >= 1 variable
        names[-1] = f"?n{size}"
        variables = [names[-1]]
    lines = []
    for i in range(size):
        predicate = render_term(
            draw(_terms(predicates, UNKNOWN_PREDICATES, unknown_rate))
        )
        lines.append(f"{names[i]} {predicate} {names[i + 1]} .")
    return (
        "SELECT "
        + " ".join(variables)
        + " WHERE { "
        + " ".join(lines)
        + " }"
    )


@composite
def compound_texts(
    draw,
    nodes: Sequence[str],
    predicates: Sequence[str],
    unknown_rate: float = 0.0,
):
    """Two disjoint components in one BGP (decomposition path)."""
    star = draw(
        star_texts(
            nodes,
            predicates,
            min_size=2,
            max_size=3,
            unknown_rate=unknown_rate,
        )
    )
    chain = draw(
        chain_texts(
            nodes,
            predicates,
            min_size=2,
            max_size=3,
            unknown_rate=unknown_rate,
        )
    )
    chain = (
        chain.replace("?n", "?m")  # keep component variables disjoint
    )
    star_head, star_rest = star.split("{", 1)
    chain_head, chain_rest = chain.split("{", 1)
    variables = (
        star_head.replace("SELECT", "", 1).replace("WHERE", "")
        + " "
        + chain_head.replace("SELECT", "", 1).replace("WHERE", "")
    )
    return (
        "SELECT "
        + " ".join(variables.split())
        + " WHERE { "
        + star_rest.rsplit("}", 1)[0]
        + " "
        + chain_rest.rsplit("}", 1)[0]
        + " }"
    )


def query_texts(
    nodes: Sequence[str],
    predicates: Sequence[str],
    max_size: int = 5,
    unknown_rate: float = 0.0,
):
    """Any well-formed query the server might see."""
    require_hypothesis()
    return st.one_of(
        star_texts(
            nodes, predicates, max_size=max_size, unknown_rate=unknown_rate
        ),
        chain_texts(
            nodes, predicates, max_size=max_size, unknown_rate=unknown_rate
        ),
        compound_texts(nodes, predicates, unknown_rate=unknown_rate),
    )


@composite
def malformed_texts(draw):
    """Text that must be a 400: never a 500, never a hang."""
    base = draw(
        st.sampled_from(
            [
                "",
                "SELECT",
                "SELECT * WHERE {",
                "SELECT * WHERE { }",
                "SELECT * WHERE { ?s ?p }",
                "SELECT * WHERE { ?s <p> ?o }",  # missing dot is fine?
                "ASK { ?s ?p ?o . }",
                "SELECT * WHERE { ?s <p> ?o . FILTER(?o > 3) }",
                "{ ?s ?p ?o . }",
                "SELECT * WHERE { ?s <p> <o> . extra",
            ]
        )
    )
    noise = draw(
        st.text(
            alphabet="{}<>?.;| \t",
            min_size=0,
            max_size=8,
        )
    )
    return base + noise


def estimate_bodies(
    nodes: Sequence[str], predicates: Sequence[str]
):
    """Arbitrary ``POST /estimate`` JSON bodies: valid batches, empty
    lists, wrong field types — the 400-taxonomy surface."""
    require_hypothesis()
    valid = st.lists(
        query_texts(nodes, predicates, unknown_rate=0.1),
        min_size=1,
        max_size=4,
    ).map(lambda texts: {"queries": texts})
    invalid = st.one_of(
        st.just({}),
        st.just({"queries": []}),
        st.just({"queries": "SELECT * WHERE { ?s ?p ?o . }"}),
        st.just({"queries": [17]}),
        st.just({"queries": [None]}),
        st.just({"query": "SELECT * WHERE { ?s ?p ?o . }"}),
        st.just([]),
        st.just("queries"),
        st.lists(malformed_texts(), min_size=1, max_size=3).map(
            lambda texts: {"queries": texts}
        ),
    )
    return st.one_of(valid, valid, invalid)
