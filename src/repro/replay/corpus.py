"""Fuzzer counterexample corpus: past violations become regressions.

When a generative fuzz property fails, hypothesis shrinks the failure
to a minimal example — which then lives only in hypothesis' local
database and is lost to CI and to other machines.  This module persists
those minimized counterexamples as small JSON files under
``tests/replay/corpus/``; a deterministic tier-1 test replays every
entry through the same assertions on every run, so a contract violation
found once can never quietly come back.

Entry schema (one JSON object per file)::

    {
      "kind": "serve_taxonomy" | "estimator_contract",
      "queries": ["SELECT ...", ...],     # or "body": <raw JSON body>
      "note": "why this was interesting",
      "added": "PR 10 seed"
    }

File names are content-addressed (sha1 of the canonical JSON), so
re-saving the same counterexample is idempotent and merges never
conflict.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterator, Tuple, Union


class CorpusError(RuntimeError):
    """A corpus entry that cannot be read."""


def entry_name(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha1(canonical).hexdigest()[:16] + ".json"


def save_counterexample(
    directory: Union[str, Path], payload: dict
) -> Path:
    """Persist one minimized counterexample; returns its path.

    Content-addressed: saving the same payload twice writes one file.
    """
    if "kind" not in payload:
        raise CorpusError("corpus entries need a 'kind' field")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry_name(payload)
    if not path.exists():
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return path


def iter_corpus(
    directory: Union[str, Path],
) -> Iterator[Tuple[Path, dict]]:
    """Yield every (path, entry) under *directory*, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CorpusError(f"unreadable corpus entry {path}: {exc}")
        if not isinstance(payload, dict) or "kind" not in payload:
            raise CorpusError(
                f"corpus entry {path} must be an object with 'kind'"
            )
        yield path, payload
