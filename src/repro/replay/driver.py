"""Open-loop trace replay against a live ``repro serve`` endpoint.

Closed-loop load generators wait for each response before sending the
next request, so an overloaded server quietly slows the generator down
and the measured latency looks fine (coordinated omission).  This
driver is **open-loop**: a schedule thread releases every
:class:`~repro.replay.trace.TraceEvent` at exactly ``t0 + offset``,
whatever the server is doing, and a pool of keep-alive worker
connections drains the released queue.  Latency is charged from the
*scheduled* time, so time spent waiting for a free connection — the
signature of an overloaded server — shows up in p99 instead of
disappearing.

Per-request behavior:

- **deadline**: a request that cannot complete within ``deadline_s`` of
  its scheduled arrival is abandoned (status 0, ``deadline_missed``);
- **Retry-After**: a 429 is retried after the server's advertised
  backoff (the JSON ``retry_after_s`` field, falling back to the
  header) while the deadline allows — honoring the hint the scheduler
  derives from queue depth / drain rate, instead of a fixed client-side
  constant that re-synchronizes the stampede;
- **transport errors** count as errors (status 0) and the connection is
  re-established for the next request — a dropped socket is an SLO
  violation, not an excuse.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.client import HTTPConnection
from typing import List, Optional, Tuple

from repro.replay.slo import RequestOutcome, SLOReport, build_report
from repro.replay.trace import Trace, TraceEvent


class _Client:
    """One keep-alive connection with JSON POST + reconnect."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    def _connect(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def reset(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def post(
        self, path: str, payload: dict, timeout: float
    ) -> Tuple[int, dict, dict]:
        """Returns (status, body_dict, headers_dict); raises OSError
        family on transport failure."""
        conn = self._connect()
        conn.timeout = timeout
        if conn.sock is not None:
            conn.sock.settimeout(timeout)
        body = json.dumps(payload)
        conn.request(
            "POST",
            path,
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        raw = response.read()
        headers = {k.lower(): v for k, v in response.getheaders()}
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            parsed = {}
        if headers.get("connection", "").lower() == "close":
            self.reset()
        return response.status, parsed, headers

    def close(self) -> None:
        self.reset()


def _retry_after_s(body: dict, headers: dict) -> float:
    """The server's backoff hint in seconds (JSON field wins)."""
    value = body.get("retry_after_s")
    if isinstance(value, (int, float)) and value > 0:
        return float(value)
    header = headers.get("retry-after")
    if header is not None:
        try:
            return max(float(header), 0.0)
        except ValueError:
            pass
    return 1.0


class ReplayDriver:
    """Fires a :class:`Trace` at a server and collects outcomes.

    Args:
        host/port: the ``repro serve`` endpoint.
        deadline_s: per-request budget measured from the scheduled
            arrival; requests that blow it are abandoned.
        connections: keep-alive client pool width.
        honor_retry_after: back 429 retries off by the server's hint.
        max_retries: 429 re-submissions per request (0 = never retry).
        rate_scale: multiply the trace's offered rate (offsets divide).
    """

    def __init__(
        self,
        host: str,
        port: int,
        deadline_s: float = 5.0,
        connections: int = 8,
        honor_retry_after: bool = True,
        max_retries: int = 2,
        rate_scale: float = 1.0,
        path: str = "/estimate",
    ) -> None:
        if connections < 1:
            raise ValueError(
                f"connections must be >= 1, got {connections}"
            )
        if rate_scale <= 0:
            raise ValueError(
                f"rate_scale must be > 0, got {rate_scale}"
            )
        self.host = host
        self.port = port
        self.deadline_s = deadline_s
        self.connections = connections
        self.honor_retry_after = honor_retry_after
        self.max_retries = max_retries
        self.rate_scale = rate_scale
        self.path = path

    # ------------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        stop_event: Optional[threading.Event] = None,
    ) -> Tuple[SLOReport, List[RequestOutcome]]:
        """Replay *trace* open-loop; returns (report, per-request
        outcomes).  The report is unevaluated — call
        :meth:`SLOReport.evaluate` with an :class:`~repro.replay.slo.SLO`
        to gate."""
        stop = stop_event or threading.Event()
        work: "queue.Queue" = queue.Queue()
        outcomes: List[RequestOutcome] = []
        outcomes_lock = threading.Lock()
        start = time.monotonic()
        last_done = [start]

        def schedule() -> None:
            for event in trace.events:
                if stop.is_set():
                    break
                target = start + event.offset_s / self.rate_scale
                while True:
                    now = time.monotonic()
                    if now >= target or stop.is_set():
                        break
                    time.sleep(min(target - now, 0.05))
                if stop.is_set():
                    break
                work.put((event, target))
            for _ in range(self.connections):
                work.put(None)

        def worker() -> None:
            client = _Client(
                self.host, self.port, timeout=self.deadline_s
            )
            try:
                while True:
                    item = work.get()
                    if item is None:
                        return
                    outcome = self._fire(client, *item, stop=stop)
                    with outcomes_lock:
                        outcomes.append(outcome)
                        last_done[0] = time.monotonic()
            finally:
                client.close()

        scheduler = threading.Thread(
            target=schedule, name="repro-replay-schedule", daemon=True
        )
        workers = [
            threading.Thread(
                target=worker,
                name=f"repro-replay-client-{i}",
                daemon=True,
            )
            for i in range(self.connections)
        ]
        scheduler.start()
        for thread in workers:
            thread.start()
        scheduler.join()
        join_budget = (
            trace.duration_s / self.rate_scale + self.deadline_s + 10.0
        )
        deadline = time.monotonic() + join_budget
        for thread in workers:
            thread.join(max(deadline - time.monotonic(), 0.1))
        duration = max(last_done[0] - start, 1e-9)
        offered = trace.offered_rate_qps * self.rate_scale
        report = build_report(outcomes, offered, duration)
        return report, outcomes

    # ------------------------------------------------------------------

    def _fire(
        self,
        client: _Client,
        event: TraceEvent,
        scheduled_at: float,
        stop: threading.Event,
    ) -> RequestOutcome:
        deadline_at = scheduled_at + self.deadline_s
        retries = 0
        payload = {"queries": [event.text]}
        while True:
            now = time.monotonic()
            if now >= deadline_at:
                return RequestOutcome(
                    offset_s=event.offset_s,
                    status=0,
                    latency_s=now - scheduled_at,
                    retries=retries,
                    deadline_missed=True,
                    error="deadline expired before completion",
                )
            try:
                status, body, headers = client.post(
                    self.path, payload, timeout=deadline_at - now
                )
            except OSError as exc:
                client.reset()
                now = time.monotonic()
                # The socket timeout is budgeted from the deadline, so a
                # timed-out exchange *is* a deadline miss, not a generic
                # transport fault.
                missed = (
                    isinstance(exc, TimeoutError) or now >= deadline_at
                )
                return RequestOutcome(
                    offset_s=event.offset_s,
                    status=0,
                    latency_s=now - scheduled_at,
                    retries=retries,
                    deadline_missed=missed,
                    error=f"{type(exc).__name__}: {exc}",
                )
            if (
                status == 429
                and self.honor_retry_after
                and retries < self.max_retries
                and not stop.is_set()
            ):
                backoff = _retry_after_s(body, headers)
                wakeup = time.monotonic() + backoff
                if wakeup < deadline_at:
                    retries += 1
                    while time.monotonic() < wakeup and not stop.is_set():
                        time.sleep(
                            max(
                                min(wakeup - time.monotonic(), 0.05),
                                0.0,
                            )
                        )
                    continue
            return RequestOutcome(
                offset_s=event.offset_s,
                status=status,
                latency_s=time.monotonic() - scheduled_at,
                degraded=bool(body.get("degraded", False)),
                retries=retries,
                error=None if status == 200 else body.get("error"),
            )


def replay_trace(
    trace: Trace,
    host: str,
    port: int,
    **kwargs,
) -> Tuple[SLOReport, List[RequestOutcome]]:
    """One-shot convenience wrapper around :class:`ReplayDriver`."""
    stop_event = kwargs.pop("stop_event", None)
    return ReplayDriver(host, port, **kwargs).run(
        trace, stop_event=stop_event
    )
