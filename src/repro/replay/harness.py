"""In-process serving stack + chaos hooks for replay runs.

:class:`ReplayHarness` assembles the full PR 1–9 serving stack — the
snapshot-backed :class:`~repro.serve.service.EstimatorService`, an
optional :class:`~repro.serve.supervisor.SupervisedPool` of worker
processes, the circuit-breaker
:class:`~repro.serve.supervisor.ResilientBackend`, the micro-batching
:class:`~repro.serve.scheduler.BatchScheduler`, the
:class:`~repro.serve.supervisor.ServingRuntime`, and the HTTP server on
an ephemeral port — inside the current process, so a chaos timeline can
reach the parts an external client cannot: worker PIDs to SIGKILL, the
live store copy to mutate, the maintenance runner to race against
traffic.

It is also the :class:`~repro.replay.timeline.TimelineContext`: the
``kill worker`` / ``reload`` / ``mutate`` / ``maintain`` / ``corrupt``
actions all dispatch here.  ``repro replay run`` and the replay bench
build one; tests build smaller ones.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import time
from http.client import HTTPConnection
from pathlib import Path
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.rdf.store import TripleStore
from repro.serve import (
    BatchScheduler,
    CircuitBreaker,
    EstimatorService,
    FaultSpec,
    FitDefaults,
    ResilientBackend,
    ServingRuntime,
    ShapeManifest,
    SupervisedPool,
    make_server,
    save_checkpoint,
)
from repro.serve.faults import corrupt_checkpoint


class HarnessError(RuntimeError):
    """The harness cannot perform a requested action."""


def vocab_preserving_delta(
    store: TripleStore, count: int, rng: np.random.Generator
) -> np.ndarray:
    """*count* novel triples recombined from the existing vocabulary.

    Node/predicate counts and the dictionary stay fixed, which keeps
    the maintenance planner on the incremental path (new vocabulary
    correctly forces a full rebuild — a different scenario).
    """
    rows = store.backend.rows()
    subjects = np.unique(rows[:, 0])
    predicates = np.unique(rows[:, 1])
    objects = np.unique(rows[:, 2])
    target = max(int(count), 1)
    delta = np.empty((0, 3), dtype=np.int64)
    while delta.shape[0] < target:
        candidates = np.stack(
            [
                rng.choice(subjects, 4 * target),
                rng.choice(predicates, 4 * target),
                rng.choice(objects, 4 * target),
            ],
            axis=1,
        ).astype(np.int64)
        candidates = np.unique(candidates, axis=0)
        candidates = candidates[~store.backend.isin_rows(candidates)]
        delta = np.unique(np.concatenate([delta, candidates]), axis=0)
    return delta[:target]


class ReplayHarness:
    """A live in-process server plus every chaos hook the DSL needs.

    Args:
        snapshot_dir: store snapshot to serve (and to seed the mutable
            live-store copy the maintenance runner works on).
        checkpoint_dir: trained checkpoint; None = startup-fit from
            *fit_defaults* (checkpointed to a scratch dir when workers
            or maintenance need one on disk).
        workers: > 1 spawns a supervised worker pool (required for
            ``kill worker``).
        maintain_state_dir: maintenance state dir; None = scratch.
        maintain_options: kwargs forwarded to
            :class:`~repro.maintain.runner.MaintenanceRunner` (shapes,
            queries_per_shape, epochs, finetune_epochs, hidden_sizes,
            seed, grouping).
    """

    def __init__(
        self,
        snapshot_dir,
        checkpoint_dir=None,
        *,
        workers: int = 1,
        fit_defaults: Optional[FitDefaults] = None,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        max_queue: int = 4096,
        fault_spec: Optional[FaultSpec] = None,
        fallback: bool = True,
        admission: bool = True,
        request_timeout: float = 30.0,
        restart_budget: int = 16,
        maintain_state_dir=None,
        maintain_options: Optional[dict] = None,
        seed: int = 0,
    ) -> None:
        from repro.baselines.independence import IndependenceEstimator
        from repro.maintain.freshness import FreshnessPolicy

        self.snapshot_dir = str(snapshot_dir)
        self._tempdir = tempfile.TemporaryDirectory(
            prefix="repro-replay-"
        )
        self._rng = np.random.default_rng(seed)
        self._corrupt_next: Optional[str] = None
        self._mutable_store: Optional[TripleStore] = None
        self._runner = None
        self._maintain_options = dict(maintain_options or {})
        self.maintain_state_dir = str(
            maintain_state_dir
            if maintain_state_dir is not None
            else Path(self._tempdir.name) / "maintain-state"
        )
        self.service = EstimatorService.from_snapshot(
            self.snapshot_dir, checkpoint_dir, fit_defaults
        )
        self.checkpoint_dir = checkpoint_dir
        self.pool = None
        if workers > 1 or checkpoint_dir is None:
            # Workers rebuild from disk, and a corrupt-checkpoint storm
            # needs an artifact to damage: make sure one exists.
            if checkpoint_dir is None:
                self.checkpoint_dir = str(
                    Path(self._tempdir.name) / "checkpoint"
                )
                save_checkpoint(
                    self.service.framework, self.checkpoint_dir
                )
        if workers > 1:
            self.pool = SupervisedPool(
                self.snapshot_dir,
                self.checkpoint_dir,
                workers,
                request_timeout=request_timeout,
                restart_budget=restart_budget,
                fault_spec=fault_spec,
            )
            primary = self.pool.estimate_batch
            backend_faults = None
        else:
            primary = self.service.framework.estimate_batch
            backend_faults = fault_spec
        self.backend = ResilientBackend(
            primary,
            fallback=(
                IndependenceEstimator(self.service.store).estimate_batch
                if fallback
                else None
            ),
            breaker=CircuitBreaker(),
            faults=backend_faults,
        )
        self.scheduler = BatchScheduler(
            self.backend,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            max_queue=max_queue,
        )
        if self.service.artifact is None and self.checkpoint_dir:
            from repro.serve import load_artifact

            self.service.artifact = load_artifact(self.checkpoint_dir)
        manifest = None
        if admission:
            manifest = (
                self.service.artifact.shapes
                if self.service.artifact is not None
                and self.service.artifact.shapes is not None
                else ShapeManifest.from_framework(self.service.framework)
            )
        self.runtime = ServingRuntime(
            self.service,
            self.scheduler,
            self.backend,
            pool=self.pool,
            admission=manifest,
            artifact=self.service.artifact,
            checkpoint_dir=self.checkpoint_dir,
            admission_enabled=admission,
            freshness_policy=FreshnessPolicy(),
        )
        self.server = make_server(
            self.service,
            self.scheduler,
            port=0,
            runtime=self.runtime,
        )
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            name="repro-replay-server",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Address surface
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # TimelineContext
    # ------------------------------------------------------------------

    def kill_worker(self, index: Optional[int] = None) -> str:
        """SIGKILL a supervised worker; the supervisor must recover."""
        if self.pool is None:
            raise HarnessError(
                "kill worker needs a supervised pool (workers > 1)"
            )
        workers = [
            w
            for w in self.pool._workers
            if w.process is not None and w.process.is_alive()
        ]
        if not workers:
            raise HarnessError("no live worker to kill")
        victim = workers[index if index is not None else 0]
        pid = victim.process.pid
        os.kill(pid, signal.SIGKILL)
        return f"killed worker pid {pid}"

    def _post(self, path: str, payload: dict) -> Tuple[int, dict]:
        conn = HTTPConnection(self.host, self.port, timeout=60.0)
        try:
            conn.request(
                "POST",
                path,
                body=json.dumps(payload),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            raw = response.read()
            try:
                body = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                body = {}
            return response.status, body
        finally:
            conn.close()

    def reload(
        self,
        checkpoint: Optional[str] = None,
        snapshot: Optional[str] = None,
    ) -> str:
        payload: dict = {}
        if checkpoint:
            payload["checkpoint"] = checkpoint
        if snapshot:
            payload["snapshot"] = snapshot
        status, body = self._post("/admin/reload", payload)
        if status != 200:
            raise HarnessError(
                f"reload answered {status}: {body.get('error')}"
            )
        return (
            f"reloaded generation {body.get('generation')} "
            f"from {body.get('checkpoint')}"
        )

    @property
    def mutable_store(self) -> TripleStore:
        """The live-store copy maintenance sees (lazy snapshot load)."""
        if self._mutable_store is None:
            self._mutable_store = TripleStore.load_snapshot(
                self.snapshot_dir, verify=False
            )
        return self._mutable_store

    def mutate(self, count: int) -> str:
        store = self.mutable_store
        delta = vocab_preserving_delta(store, count, self._rng)
        added = store.add_all(delta)
        return f"added {added} vocabulary-preserving triples"

    def _maintenance_runner(self):
        if self._runner is None:
            from repro.maintain import MaintenanceRunner

            options = dict(self._maintain_options)
            options.setdefault("shapes", (("star", 2), ("chain", 2)))
            options.setdefault("queries_per_shape", 60)
            options.setdefault("epochs", 4)
            options.setdefault("finetune_epochs", 2)
            options.setdefault("hidden_sizes", (32, 32))
            self._runner = MaintenanceRunner(
                self.mutable_store,
                self.maintain_state_dir,
                **options,
            )
        return self._runner

    def maintain(self, full: bool = False) -> str:
        """Run the maintenance cycle and hand the generation to the
        live server — through the armed corruption, if any."""
        runner = self._maintenance_runner()
        report = runner.run(full=full)
        if report.action == "noop":
            return "maintain: noop (materialization is current)"
        detail = (
            f"maintain: {report.action} -> generation {report.run}"
        )
        mode = self._corrupt_next
        if mode is not None:
            self._corrupt_next = None
            corrupt_checkpoint(report.checkpoint_dir, mode)
            status, body = self._post(
                "/admin/reload",
                {
                    "checkpoint": report.checkpoint_dir,
                    "snapshot": report.snapshot_dir,
                },
            )
            if status != 409:
                raise HarnessError(
                    f"corrupted checkpoint was not rejected: "
                    f"{status} {body.get('error')}"
                )
            return (
                detail
                + f", corrupted ({mode}), reload rejected 409 "
                f"({body.get('reason')}) — previous generation "
                "keeps serving"
            )
        self.reload(report.checkpoint_dir, report.snapshot_dir)
        return detail + ", reloaded"

    def corrupt_next_checkpoint(self, mode: str) -> str:
        self._corrupt_next = mode
        return f"armed: next published checkpoint gets {mode}"

    def corrupt_checkpoint(self, path: str, mode: str) -> str:
        """Damage an explicit checkpoint now and prove the gate holds."""
        corrupt_checkpoint(path, mode)
        status, body = self._post(
            "/admin/reload", {"checkpoint": path}
        )
        if status != 409:
            raise HarnessError(
                f"corrupted checkpoint was not rejected: "
                f"{status} {body.get('error')}"
            )
        return (
            f"corrupted {path} ({mode}), reload rejected 409 "
            f"({body.get('reason')})"
        )

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return self.scheduler.stats()

    def wait_ready(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                conn = HTTPConnection(
                    self.host, self.port, timeout=2.0
                )
                conn.request("GET", "/healthz")
                if conn.getresponse().status == 200:
                    conn.close()
                    return
                conn.close()
            except OSError:
                time.sleep(0.05)
        raise HarnessError("server did not become healthy in time")

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.scheduler.close()
        if self.pool is not None:
            self.pool.close()
        self._thread.join(timeout=10.0)
        self._tempdir.cleanup()
