"""Recorded workload traces: what to fire at the server, and when.

A trace is a list of :class:`TraceEvent` — one SPARQL query per event
with the **offset in seconds** at which the open-loop driver must fire
it, whatever the server's response lag looks like at that moment.
Traces are generated (:func:`generate_trace`) from a store with a
configurable shape mix and Zipf-skewed query popularity, or recorded to
/ loaded from a TSV file (:func:`save_trace` / :func:`load_trace`) so a
run is exactly reproducible across machines and PRs.

Shape mixes
-----------

A mix is a list of ``(topology, size, weight)`` entries; each event
picks its shape by weight, then its concrete query by a Zipf draw over
that shape's pre-sampled pool — a few hot queries dominate, the tail is
long, which is what production query logs look like.  Topologies:

- ``star`` / ``chain`` — sampled bound instances with a random unbound
  node subset (the serving layer's bread and butter);
- ``compound`` — a star:2 component and a chain:(size-2) component in
  one BGP (disjoint variables), exercising the decomposition +
  admission path; requires ``size >= 4``;
- ``range`` — star queries with FILTER constraints
  (:func:`~repro.core.ranges.format_sparql_range`).  The HTTP parser
  rejects FILTER syntax, so range events measure the 400-taxonomy /
  shed path, not estimation; keep them out of SLO-gated mixes.

File format
-----------

::

    # repro-trace v1
    # meta: {"seed": 0, "rate_qps": 50.0, ...}
    offset_s<TAB>topology<TAB>size<TAB>query
    0.013371<TAB>star<TAB>2<TAB>SELECT ?s WHERE { ?s <p> <o> . }

Queries are single-line (runs of whitespace collapse; SPARQL does not
care).  Events are offset-sorted; a file whose offsets go backwards is
rejected.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.rdf.parser import format_sparql
from repro.rdf.store import TripleStore
from repro.sampling.random_walk import sample_instances
from repro.sampling.unbinding import (
    query_from_instance,
    random_unbound_mask,
)

_HEADER = "# repro-trace v1"
_COLUMNS = "offset_s\ttopology\tsize\tquery"

#: default mix: mostly small stars, some chains — every shape covered
#: by the default trained manifest (star:2/3, chain:2/3).
DEFAULT_MIX: Tuple[Tuple[str, int, float], ...] = (
    ("star", 2, 0.5),
    ("star", 3, 0.2),
    ("chain", 2, 0.2),
    ("chain", 3, 0.1),
)

TOPOLOGIES = ("star", "chain", "compound", "range")


class TraceFormatError(RuntimeError):
    """A trace file or mix spec that cannot be used."""


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled request: fire *text* at ``t0 + offset_s``."""

    offset_s: float
    topology: str
    size: int
    text: str


@dataclass
class Trace:
    """An offset-sorted list of events plus its generation metadata."""

    events: List[TraceEvent]
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def duration_s(self) -> float:
        """Span of the arrival schedule (to the last event)."""
        return self.events[-1].offset_s if self.events else 0.0

    @property
    def offered_rate_qps(self) -> float:
        """Events per second the schedule asks for."""
        span = self.duration_s
        if span <= 0:
            return float(len(self.events))
        return len(self.events) / span


def covering_shapes(trace: "Trace") -> Tuple[Tuple[str, int], ...]:
    """The (topology, size) set a server must train/admit to answer
    every SLO-relevant event in *trace*.

    Compound events decompose into their star:2 + chain:(size-2)
    components (admission checks decomposed components); range events
    are 400s at the parser and need no model coverage.
    """
    shapes = set()
    for event in trace:
        if event.topology in ("star", "chain"):
            shapes.add((event.topology, event.size))
        elif event.topology == "compound":
            shapes.add(("star", 2))
            shapes.add(("chain", max(event.size - 2, 2)))
    return tuple(sorted(shapes))


def parse_mix(values: Sequence[str]) -> List[Tuple[str, int, float]]:
    """``topology:size[:weight]`` strings to mix entries (CLI surface)."""
    mix: List[Tuple[str, int, float]] = []
    for value in values:
        parts = value.split(":")
        if len(parts) not in (2, 3):
            raise TraceFormatError(
                f"mix entry must be topology:size[:weight], got {value!r}"
            )
        topology = parts[0]
        if topology not in TOPOLOGIES:
            raise TraceFormatError(
                f"unknown topology {topology!r} "
                f"(choose from {', '.join(TOPOLOGIES)})"
            )
        try:
            size = int(parts[1])
            weight = float(parts[2]) if len(parts) == 3 else 1.0
        except ValueError as exc:
            raise TraceFormatError(f"bad mix entry {value!r}: {exc}")
        if size < 1 or weight <= 0:
            raise TraceFormatError(
                f"bad mix entry {value!r}: size must be >= 1 and "
                "weight > 0"
            )
        mix.append((topology, size, weight))
    if not mix:
        raise TraceFormatError("empty mix")
    return mix


def _flatten(text: str) -> str:
    return " ".join(text.split())


def _sample_pool(
    store: TripleStore,
    topology: str,
    size: int,
    pool_size: int,
    seed: int,
) -> List[str]:
    """*pool_size* single-line query texts of one shape."""
    rng = np.random.default_rng(seed)
    if store.dictionary is None:
        raise TraceFormatError(
            "trace generation requires a dictionary-encoded store "
            "(queries are rendered back to SPARQL text)"
        )
    if topology in ("star", "chain"):
        instances, _ = sample_instances(
            store, topology, size, pool_size, seed=seed
        )
        texts = []
        for instance in instances:
            mask = random_unbound_mask(size + 1, rng)
            query = query_from_instance(topology, instance, mask)
            texts.append(
                _flatten(format_sparql(query, store.dictionary))
            )
        return texts
    if topology == "compound":
        if size < 4:
            raise TraceFormatError(
                f"compound queries need size >= 4 "
                f"(star:2 + chain:{size - 2}), got {size}"
            )
        stars, _ = sample_instances(store, "star", 2, pool_size, seed=seed)
        chains, _ = sample_instances(
            store, "chain", size - 2, pool_size, seed=seed + 1
        )
        texts = []
        for star, chain in zip(stars, chains):
            star_q = query_from_instance(
                "star", star, random_unbound_mask(3, rng)
            )
            chain_q = query_from_instance(
                "chain", chain, random_unbound_mask(size - 1, rng)
            )
            star_text = _flatten(
                format_sparql(star_q, store.dictionary)
            )
            chain_text = _flatten(
                format_sparql(chain_q, store.dictionary)
            )
            # One BGP with both components: splice both WHERE bodies
            # under a merged explicit projection (the parser has no
            # ``SELECT *``).  Variable names never clash (star uses
            # s/oN, chain uses nN).
            star_head, star_body = star_text.split("{", 1)
            chain_head, chain_body = chain_text.split("{", 1)
            variables = (
                star_head.replace("SELECT", "", 1).replace("WHERE", "")
                + " "
                + chain_head.replace("SELECT", "", 1).replace(
                    "WHERE", ""
                )
            )
            texts.append(
                _flatten(
                    "SELECT "
                    + variables
                    + " WHERE { "
                    + star_body.rsplit("}", 1)[0]
                    + " "
                    + chain_body.rsplit("}", 1)[0]
                    + " }"
                )
            )
        return texts
    if topology == "range":
        from repro.core.ranges import (
            format_sparql_range,
            generate_range_workload,
        )

        records = generate_range_workload(
            store, "star", size, pool_size, seed=seed
        )
        return [
            _flatten(format_sparql_range(r.query, store.dictionary))
            for r in records
        ]
    raise TraceFormatError(f"unknown topology {topology!r}")


def generate_trace(
    store: TripleStore,
    rate_qps: float,
    duration_s: float,
    mix: Optional[Sequence[Tuple[str, int, float]]] = None,
    seed: int = 0,
    zipf_s: float = 1.1,
    pool_per_shape: int = 48,
    arrivals: str = "poisson",
) -> Trace:
    """Generate a reproducible open-loop trace.

    Arrival offsets follow a Poisson process at *rate_qps* (or a
    deterministic ``1/rate`` grid with ``arrivals="uniform"``); each
    event's shape is drawn from *mix* weights and its concrete query by
    a Zipf(*zipf_s*) draw over that shape's *pool_per_shape* pre-sampled
    queries (``zipf_s=0`` → uniform popularity).
    """
    if rate_qps <= 0:
        raise TraceFormatError(f"rate_qps must be > 0, got {rate_qps}")
    if duration_s <= 0:
        raise TraceFormatError(
            f"duration_s must be > 0, got {duration_s}"
        )
    if arrivals not in ("poisson", "uniform"):
        raise TraceFormatError(
            f"arrivals must be poisson|uniform, got {arrivals!r}"
        )
    entries = list(mix) if mix is not None else list(DEFAULT_MIX)
    rng = np.random.default_rng(seed)
    pools = []
    weights = []
    for i, (topology, size, weight) in enumerate(entries):
        pool = _sample_pool(
            store, topology, size, pool_per_shape, seed + 101 * (i + 1)
        )
        if not pool:
            raise TraceFormatError(
                f"shape {topology}:{size} sampled an empty pool"
            )
        # Zipf popularity over the (shuffled) pool: rank k gets
        # probability ∝ (k+1)^-s.
        rng.shuffle(pool)
        ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
        popularity = ranks ** -float(zipf_s)
        pools.append((topology, size, pool, popularity / popularity.sum()))
        weights.append(float(weight))
    weights = np.asarray(weights, dtype=np.float64)
    weights /= weights.sum()

    offsets: List[float] = []
    if arrivals == "uniform":
        step = 1.0 / rate_qps
        offsets = list(np.arange(0.0, duration_s, step))
    else:
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_qps))
            if t > duration_s:
                break
            offsets.append(t)
    if not offsets:
        raise TraceFormatError(
            f"no arrivals in {duration_s} s at {rate_qps} qps"
        )

    events = []
    shape_idx = rng.choice(len(pools), size=len(offsets), p=weights)
    for offset, idx in zip(offsets, shape_idx):
        topology, size, pool, popularity = pools[idx]
        query_idx = int(rng.choice(len(pool), p=popularity))
        events.append(
            TraceEvent(
                offset_s=round(float(offset), 6),
                topology=topology,
                size=size,
                text=pool[query_idx],
            )
        )
    meta = {
        "seed": seed,
        "rate_qps": rate_qps,
        "duration_s": duration_s,
        "zipf_s": zipf_s,
        "pool_per_shape": pool_per_shape,
        "arrivals": arrivals,
        "mix": [list(entry) for entry in entries],
        "num_events": len(events),
    }
    return Trace(events=events, meta=meta)


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace as TSV; parent directories are created."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        _HEADER,
        "# meta: " + json.dumps(trace.meta, sort_keys=True),
        _COLUMNS,
    ]
    for event in trace.events:
        if "\t" in event.text or "\n" in event.text:
            raise TraceFormatError(
                "query text must be single-line and tab-free"
            )
        lines.append(
            f"{event.offset_s:.6f}\t{event.topology}"
            f"\t{event.size}\t{event.text}"
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace back; validates the header and offset ordering."""
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace {path}: {exc}")
    if not lines or lines[0].strip() != _HEADER:
        raise TraceFormatError(
            f"{path}: not a trace file (missing '{_HEADER}')"
        )
    meta: dict = {}
    events: List[TraceEvent] = []
    previous = -1.0
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("# meta:"):
            try:
                meta = json.loads(line.split(":", 1)[1])
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: bad meta JSON: {exc}"
                )
            continue
        if line.startswith("#") or line == _COLUMNS:
            continue
        parts = line.split("\t", 3)
        if len(parts) != 4:
            raise TraceFormatError(
                f"{path}:{lineno}: expected 4 tab-separated fields, "
                f"got {len(parts)}"
            )
        try:
            offset = float(parts[0])
            size = int(parts[2])
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{lineno}: {exc}")
        if offset < previous:
            raise TraceFormatError(
                f"{path}:{lineno}: offsets must be non-decreasing "
                f"({offset} after {previous})"
            )
        previous = offset
        events.append(
            TraceEvent(
                offset_s=offset,
                topology=parts[1],
                size=size,
                text=parts[3],
            )
        )
    if not events:
        raise TraceFormatError(f"{path}: trace has no events")
    return Trace(events=events, meta=meta)
