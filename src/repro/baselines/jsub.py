"""JSUB: join sampling with upper bounds (Zhao et al., SIGMOD 2018),
adapted for cardinality upper-bound estimation as in G-CARE.

Like WanderJoin, JSUB walks the join order sampling one candidate per
pattern.  The difference is the treatment of partial walks: instead of
contributing 0, a walk that dead-ends after pattern j contributes the
product accumulated so far multiplied by an upper bound on the remaining
patterns' fanout (the per-predicate maximum degree).  This yields the
systematic *over*estimates the paper observes for JSUB.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.base import CardinalityEstimator
from repro.baselines.wanderjoin import order_patterns
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import TriplePattern, Variable, is_bound


class JSUB(CardinalityEstimator):
    """Sampling estimator producing cardinality upper bounds."""

    name = "jsub"

    def __init__(
        self,
        store: TripleStore,
        walks_per_run: int = 100,
        runs: int = 30,
        seed: int = 0,
    ) -> None:
        self.store = store
        self.walks_per_run = walks_per_run
        self.runs = runs
        self._rng = np.random.default_rng(seed)
        self._max_out: Dict[int, int] = {}
        self._max_in: Dict[int, int] = {}
        col = store.backend
        for p in store.predicates():
            _, out_fanouts = col.predicate_subject_stats(p)
            _, in_fanouts = col.predicate_object_stats(p)
            self._max_out[p] = int(out_fanouts.max(initial=0))
            self._max_in[p] = int(in_fanouts.max(initial=0))

    def _estimate_one(self, query: QueryPattern) -> float:
        ordered = order_patterns(self.store, query)
        estimates = [self._run_once(ordered) for _ in range(self.runs)]
        return float(np.mean(estimates))

    def _run_once(self, ordered: List[TriplePattern]) -> float:
        total = 0.0
        for _ in range(self.walks_per_run):
            total += self._walk(ordered)
        return total / self.walks_per_run

    def _pattern_bound(self, tp: TriplePattern) -> float:
        """Static fanout upper bound of one pattern given its prefix."""
        if not is_bound(tp.p):
            return float(len(self.store))
        # With a bound/shared subject the fanout is at most max out-degree
        # of the predicate; symmetric for objects; otherwise predicate
        # cardinality bounds it.
        if is_bound(tp.s) or isinstance(tp.s, Variable):
            return float(max(self._max_out.get(tp.p, 0), 1))
        return float(max(self.store.predicate_count(tp.p), 1))

    def _walk(self, ordered: List[TriplePattern]) -> float:
        bindings = {}
        weight = 1.0
        for j, tp in enumerate(ordered):
            bound_tp = tp.bind(bindings)
            candidates = list(self.store.match_pattern(bound_tp))
            if not candidates:
                # Upper-bound the unexplored suffix instead of zeroing.
                for rest in ordered[j:]:
                    weight *= self._pattern_bound(rest.bind(bindings))
                return weight
            choice = candidates[
                int(self._rng.integers(len(candidates)))
            ]
            weight *= len(candidates)
            for position, value in zip(bound_tp, choice):
                if isinstance(position, Variable):
                    bindings[position] = value
        return weight
