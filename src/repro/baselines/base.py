"""Common estimator interface shared by LMKG models and all baselines.

Every estimator answers ``estimate(query) -> float`` and
``estimate_batch(queries) -> ndarray``; the base class supplies the
batch form as a loop so callers can rely on one API regardless of
whether a concrete estimator has a vectorized path (the learned models
do — one featurize plus one network forward per batch).

Sampling-based estimators additionally expose ``runs`` — the number of
repetitions G-CARE averages over (30 in the paper); their ``estimate``
already performs the averaging internally so benches measure the same
work the paper timed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.rdf.pattern import QueryPattern


class CardinalityEstimator:
    """Protocol for every estimator in the evaluation."""

    #: short identifier used in result tables ("cset", "wj", ...)
    name: str = "abstract"

    def estimate(self, query: QueryPattern) -> float:
        """Estimated cardinality of *query* (non-negative)."""
        raise NotImplementedError

    def estimate_batch(
        self, queries: Sequence[QueryPattern]
    ) -> np.ndarray:
        """Estimates for a batch of queries.

        The default loops over :meth:`estimate`; vectorized estimators
        override it.
        """
        return np.array(
            [self.estimate(q) for q in queries], dtype=np.float64
        )

    def memory_bytes(self) -> int:
        """Size of the synopsis/model; 0 when the estimator reads the
        graph directly (sampling approaches)."""
        return 0
