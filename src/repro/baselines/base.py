"""Baseline-facing view of the unified Estimator protocol.

Every baseline subclasses :class:`CardinalityEstimator` and implements
the protected per-query hook ``_estimate_one(query) -> float`` (or, when
it has a vectorized path like MSCN, ``_estimate_batch``).  The public
``estimate`` / ``estimate_batch(queries) -> np.ndarray`` surface is
inherited from :class:`repro.core.estimator.Estimator`, which validates
every result vector in one place: values are asserted finite and clamped
to ``>= 0.0`` before any caller sees them, so a summary formula that
divides to a negative or an undertrained head that emits garbage can
never leak past the protocol boundary.

Sampling-based estimators additionally expose ``runs`` — the number of
repetitions G-CARE averages over (30 in the paper); their
``_estimate_one`` already performs the averaging internally so benches
measure the same work the paper timed.
"""

from __future__ import annotations

from repro.core.estimator import (
    Estimator,
    EstimatorContractError,
    finalize_estimates,
)

__all__ = [
    "CardinalityEstimator",
    "Estimator",
    "EstimatorContractError",
    "finalize_estimates",
]


class CardinalityEstimator(Estimator):
    """Protocol for every baseline in the evaluation.

    A thin alias of :class:`~repro.core.estimator.Estimator` kept as the
    import point for baseline and optimizer code; the estimation surface,
    validation, and clamping all live in the shared base class.
    """
