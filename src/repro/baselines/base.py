"""Common estimator interface shared by LMKG models and all baselines.

Every estimator answers ``estimate(query) -> float``.  Sampling-based
estimators additionally expose ``runs`` — the number of repetitions
G-CARE averages over (30 in the paper); their ``estimate`` already
performs the averaging internally so benches measure the same work the
paper timed.
"""

from __future__ import annotations

from repro.rdf.pattern import QueryPattern


class CardinalityEstimator:
    """Protocol for every estimator in the evaluation."""

    #: short identifier used in result tables ("cset", "wj", ...)
    name: str = "abstract"

    def estimate(self, query: QueryPattern) -> float:
        """Estimated cardinality of *query* (non-negative)."""
        raise NotImplementedError

    def memory_bytes(self) -> int:
        """Size of the synopsis/model; 0 when the estimator reads the
        graph directly (sampling approaches)."""
        return 0
