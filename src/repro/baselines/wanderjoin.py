"""WanderJoin (Li et al., SIGMOD 2016) adapted to triple patterns.

Online aggregation via random walks over the join graph: triple patterns
are visited in a fixed order; the walk picks a uniformly random matching
triple for the first pattern, then a uniformly random candidate for each
subsequent (partially bound) pattern.  A completed walk of candidate
counts ``n1, n2, ..., nk`` contributes the Horvitz-Thompson estimate
``prod n_i``; a dead-ended walk contributes 0.  The mean over walks is an
unbiased cardinality estimate.

G-CARE runs each sampling estimator 30 times and averages; ``estimate``
does the same internally (``runs`` x ``walks_per_run`` walks total), so
wall-clock measurements match the paper's protocol.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import CardinalityEstimator
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import TriplePattern, Variable


def order_patterns(
    store: TripleStore, query: QueryPattern
) -> List[TriplePattern]:
    """Walk order: most selective pattern first, then connectivity-greedy.

    Each subsequent pattern must share a variable with the prefix (or be
    fully bound), so candidate sets stay small.
    """
    remaining = list(query.triples)
    remaining.sort(key=lambda tp: store.count_pattern(tp))
    ordered = [remaining.pop(0)]
    bound_vars = set(ordered[0].variables)
    while remaining:
        idx = None
        for i, tp in enumerate(remaining):
            if set(tp.variables) & bound_vars or not tp.variables:
                idx = i
                break
        if idx is None:
            # Disconnected query: take the most selective leftover.
            idx = 0
        tp = remaining.pop(idx)
        bound_vars |= set(tp.variables)
        ordered.append(tp)
    return ordered


class WanderJoin(CardinalityEstimator):
    """Random-walk join sampling estimator."""

    name = "wj"

    def __init__(
        self,
        store: TripleStore,
        walks_per_run: int = 100,
        runs: int = 30,
        seed: int = 0,
    ) -> None:
        self.store = store
        self.walks_per_run = walks_per_run
        self.runs = runs
        self._rng = np.random.default_rng(seed)

    def _estimate_one(self, query: QueryPattern) -> float:
        """Mean of ``runs`` independent walk-batch estimates."""
        ordered = order_patterns(self.store, query)
        estimates = [
            self._run_once(ordered) for _ in range(self.runs)
        ]
        return float(np.mean(estimates))

    def _run_once(self, ordered: List[TriplePattern]) -> float:
        total = 0.0
        for _ in range(self.walks_per_run):
            total += self._walk(ordered)
        return total / self.walks_per_run

    def _walk(self, ordered: List[TriplePattern]) -> float:
        bindings = {}
        weight = 1.0
        for tp in ordered:
            bound_tp = tp.bind(bindings)
            candidates = list(self.store.match_pattern(bound_tp))
            if not candidates:
                return 0.0
            choice = candidates[
                int(self._rng.integers(len(candidates)))
            ]
            weight *= len(candidates)
            for position, value in zip(bound_tp, choice):
                if isinstance(position, Variable):
                    bindings[position] = value
        return weight
