"""Competitor estimators from the paper's evaluation (§VIII).

Summary-based: :class:`CharacteristicSets` (CSET), :class:`SumRDF`,
:class:`BayesNetEstimator` (Huang & Liu's BN + chain histogram, §II [14]).
Sampling-based: :class:`WanderJoin` (WJ), :class:`JSUB`, :class:`Impr`.
Learned: :class:`MSCN` (MSCN-0 / MSCN-1k via ``MSCNConfig.num_samples``).
Plus the :class:`IndependenceEstimator` floor.
"""

from repro.baselines.base import CardinalityEstimator
from repro.baselines.bayesnet import (
    BayesNetEstimator,
    ChainHistogram,
    StarBayesNet,
)
from repro.baselines.cset import CharacteristicSets
from repro.baselines.impr import Impr
from repro.baselines.independence import IndependenceEstimator
from repro.baselines.jsub import JSUB
from repro.baselines.mscn import MSCN, MSCNConfig
from repro.baselines.sumrdf import SumRDF
from repro.baselines.wanderjoin import WanderJoin

__all__ = [
    "BayesNetEstimator",
    "CardinalityEstimator",
    "ChainHistogram",
    "CharacteristicSets",
    "StarBayesNet",
    "Impr",
    "IndependenceEstimator",
    "JSUB",
    "MSCN",
    "MSCNConfig",
    "SumRDF",
    "WanderJoin",
]
