"""Characteristic Sets (Neumann & Moerkotte, ICDE 2011).

The characteristic set of a subject is the set of predicates it emits.
The synopsis stores, for every distinct characteristic set C:

- ``count(C)`` — how many subjects have exactly that set,
- ``occurrences(C, p)`` — how many (s, p, o) triples those subjects emit
  with predicate p.

A star query with predicate set {p1..pk} and unbound objects is estimated
as::

    sum over C ⊇ {p1..pk} of count(C) * prod_i occurrences(C, p_i)/count(C)

Bound objects multiply in a per-predicate selectivity under independence
(the original paper's approach for partially bound stars).  Chain queries
are outside characteristic sets' native scope; like the LMKG authors (who
reimplemented CSET for exactly this reason) we extend it with the classic
average-fanout chain formula over per-predicate statistics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Tuple

from repro.baselines.base import CardinalityEstimator
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.rdf.terms import is_bound


class CharacteristicSets(CardinalityEstimator):
    """The CSET synopsis plus star/chain estimation."""

    name = "cset"

    def __init__(self, store: TripleStore) -> None:
        self.store = store
        self._count: Dict[FrozenSet[int], int] = defaultdict(int)
        self._occurrences: Dict[Tuple[FrozenSet[int], int], int] = (
            defaultdict(int)
        )
        # Per-predicate statistics for the chain extension and bound-object
        # selectivities.
        self._pred_triples: Dict[int, int] = {}
        self._pred_subjects: Dict[int, int] = {}
        self._pred_objects: Dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        # One pass over the SPO permutation: each subject's distinct
        # predicates with their fan-outs give every characteristic set
        # and its occurrence counts without per-subject lookups.
        col = self.store.backend
        for preds, fanouts in col.subject_predicate_groups():
            cset = frozenset(preds)
            self._count[cset] += 1
            for p, fanout in zip(preds, fanouts):
                self._occurrences[(cset, p)] += fanout
        for p in self.store.predicates():
            self._pred_triples[p] = self.store.predicate_count(p)
            self._pred_subjects[p] = col.predicate_subject_stats(p)[0].size
            self._pred_objects[p] = col.predicate_object_stats(p)[0].size

    # ------------------------------------------------------------------

    def _estimate_one(self, query: QueryPattern) -> float:
        topo = query.topology()
        if topo in (Topology.STAR, Topology.SINGLE):
            return self._estimate_star(query)
        if topo is Topology.CHAIN:
            return self._estimate_chain(query)
        # Composite: independence across a star/chain split would need a
        # decomposer; CSET answers with the star formula over the subject
        # groups joined by uniformity, which reduces to the chain formula
        # here.  Fall back to the chain-style product.
        return self._estimate_chain(query)

    def _estimate_star(self, query: QueryPattern) -> float:
        predicates = [tp.p for tp in query.triples]
        if not all(is_bound(p) for p in predicates):
            # Unbound predicate: degrade to the total triple count ratio.
            return float(len(self.store))
        centre = query.triples[0].s
        if is_bound(centre):
            # Bound subject: its characteristic set answers directly.
            product = 1.0
            for tp in query.triples:
                backend = self.store.backend
                if is_bound(tp.o):
                    product *= (
                        1.0 if backend.contains(centre, tp.p, tp.o) else 0.0
                    )
                else:
                    product *= float(backend.count_sp(centre, tp.p))
            return product
        wanted = set(predicates)
        total = 0.0
        for cset, count in self._count.items():
            if not wanted.issubset(cset):
                continue
            product = float(count)
            for p in predicates:
                product *= self._occurrences[(cset, p)] / count
            total += product
        # Independence correction for bound objects.
        for tp in query.triples:
            if is_bound(tp.o):
                total *= self._object_selectivity(tp.p, tp.o)
        return total

    def _object_selectivity(self, p: int, o: int) -> float:
        triples_p = self._pred_triples.get(p, 0)
        if triples_p == 0:
            return 0.0
        matching = self.store.backend.count_po(p, o)
        return matching / triples_p

    def _estimate_chain(self, query: QueryPattern) -> float:
        """Average-fanout chain estimate over per-predicate statistics.

        card ≈ |T_p1| * prod_{i>=2} |T_pi| / |distinct subjects of pi|,
        with bound endpoints applying independence selectivities.
        """
        triples = query.triples
        if not all(is_bound(tp.p) for tp in triples):
            return float(len(self.store))
        first = triples[0]
        estimate = float(self._pred_triples.get(first.p, 0))
        if estimate == 0.0:
            return 0.0
        if is_bound(first.s):
            subjects = self._pred_subjects.get(first.p, 1)
            estimate /= max(subjects, 1)
        for tp in triples[1:]:
            triples_p = self._pred_triples.get(tp.p, 0)
            subjects_p = max(self._pred_subjects.get(tp.p, 1), 1)
            estimate *= triples_p / subjects_p
        last = triples[-1]
        if is_bound(last.o):
            objects_p = max(self._pred_objects.get(last.p, 1), 1)
            estimate /= objects_p
        # Bound intermediate nodes (rare in the workloads) apply the same
        # uniformity correction on their predicate's object domain.
        for prev, nxt in zip(triples, triples[1:]):
            if is_bound(prev.o):
                objects_p = max(
                    self._pred_objects.get(prev.p, 1), 1
                )
                estimate /= objects_p
        return estimate

    def memory_bytes(self) -> int:
        """Synopsis size: one integer per set entry plus per-set counters."""
        entries = sum(len(cset) for cset in self._count)
        ints = len(self._count) + len(self._occurrences) + entries
        ints += 3 * len(self._pred_triples)
        return ints * 8
