"""MSCN: multi-set convolutional network (Kipf et al., CIDR 2019),
adapted to knowledge-graph queries as in the paper's evaluation.

Each triple pattern becomes one element of a set; a shared MLP embeds
every element, elements are mean-pooled, and a head MLP predicts the
scaled cardinality.  Following the paper's adaptation: the "table" set is
trivial (one RDF relation with self-joins), so only the predicate set
remains, and each element carries

- the binary encodings of its subject / predicate / object (zero when
  unbound) plus bound flags,
- optionally a bitmap over ``n`` materialised sample triples: bit j says
  whether the pattern matches sample j (MSCN-0 has no bitmap, MSCN-1k a
  1000-bit one).

Trained on the same labelled queries as LMKG-S, with the same log +
min-max target scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import CardinalityEstimator
from repro.core.encoders import make_encoders
from repro.nn.layers import Linear, ReLU, Sequential, Sigmoid
from repro.nn.losses import QErrorLoss
from repro.nn.optimizers import Adam
from repro.nn.scaling import LogMinMaxScaler
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import TriplePattern, is_bound
from repro.sampling.workload import QueryRecord


@dataclass(frozen=True)
class MSCNConfig:
    """MSCN hyperparameters; ``num_samples`` selects the variant
    (0 → MSCN-0, 1000 → MSCN-1k)."""

    num_samples: int = 0
    hidden_units: int = 128
    epochs: int = 100
    batch_size: int = 128
    learning_rate: float = 1e-3
    seed: int = 0


class MSCN(CardinalityEstimator):
    """Set-based supervised estimator."""

    def __init__(
        self,
        store: TripleStore,
        max_size: int,
        config: Optional[MSCNConfig] = None,
    ) -> None:
        self.store = store
        self.max_size = max_size
        self.config = config if config is not None else MSCNConfig()
        self.name = (
            "mscn-0"
            if self.config.num_samples == 0
            else f"mscn-{self.config.num_samples // 1000}k"
            if self.config.num_samples % 1000 == 0
            else f"mscn-{self.config.num_samples}"
        )
        node_enc, pred_enc = make_encoders(
            max(store.num_nodes, 1), max(store.num_predicates, 1), "binary"
        )
        self._nodes = node_enc
        self._preds = pred_enc
        self._samples = self._materialize_samples()
        if self._samples:
            sample_array = np.array(self._samples, dtype=np.int64)
            self._sample_s = sample_array[:, 0]
            self._sample_p = sample_array[:, 1]
            self._sample_o = sample_array[:, 2]
        self.element_width = (
            node_enc.width + pred_enc.width + node_enc.width + 2
            + self.config.num_samples
        )
        self.scaler = LogMinMaxScaler()
        self._shared: Optional[Sequential] = None
        self._head: Optional[Sequential] = None
        self._optimizer: Optional[Adam] = None

    def _materialize_samples(self) -> List[Tuple[int, int, int]]:
        if self.config.num_samples == 0:
            return []
        rng = np.random.default_rng(self.config.seed + 5)
        triples = sorted(self.store)
        idx = rng.choice(
            len(triples),
            size=min(self.config.num_samples, len(triples)),
            replace=False,
        )
        samples = [triples[i] for i in idx]
        # Pad by repetition when the graph is smaller than the budget.
        while len(samples) < self.config.num_samples:
            samples.append(samples[len(samples) % len(idx)])
        return samples

    # ------------------------------------------------------------------
    # Featurization
    # ------------------------------------------------------------------

    def _pattern_features(self, tp: TriplePattern) -> np.ndarray:
        parts = [
            self._nodes.encode(tp.s),
            np.array([1.0 if is_bound(tp.s) else 0.0]),
            self._preds.encode(tp.p),
            self._nodes.encode(tp.o),
            np.array([1.0 if is_bound(tp.o) else 0.0]),
        ]
        if self._samples:
            matches = np.ones(self.config.num_samples, dtype=bool)
            if is_bound(tp.s):
                matches &= self._sample_s == tp.s
            if is_bound(tp.p):
                matches &= self._sample_p == tp.p
            if is_bound(tp.o):
                matches &= self._sample_o == tp.o
            parts.append(matches.astype(np.float64))
        return np.concatenate(parts)

    def featurize(
        self, queries: Sequence[QueryPattern]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(elements, mask): shapes (n, k, f) and (n, k)."""
        n = len(queries)
        # float32 halves the footprint of sample-bitmap featurization on
        # large training sets; precision is irrelevant for 0/1 features.
        elements = np.zeros(
            (n, self.max_size, self.element_width), dtype=np.float32
        )
        mask = np.zeros((n, self.max_size))
        for qi, query in enumerate(queries):
            if query.size > self.max_size:
                raise ValueError(
                    f"query size {query.size} exceeds model max "
                    f"{self.max_size}"
                )
            for ti, tp in enumerate(query.triples):
                elements[qi, ti] = self._pattern_features(tp)
                mask[qi, ti] = 1.0
        return elements, mask

    # ------------------------------------------------------------------
    # Model
    # ------------------------------------------------------------------

    def _build(self) -> None:
        rng = np.random.default_rng(self.config.seed)
        h = self.config.hidden_units
        self._shared = Sequential(
            [
                Linear(self.element_width, h, rng, init="he", name="set0"),
                ReLU(),
                Linear(h, h, rng, init="he", name="set1"),
                ReLU(),
            ]
        )
        self._head = Sequential(
            [
                Linear(h, h, rng, init="he", name="head0"),
                ReLU(),
                Linear(h, 1, rng, name="head1"),
                Sigmoid(),
            ]
        )
        self._optimizer = Adam(
            self._shared.parameters() + self._head.parameters(),
            lr=self.config.learning_rate,
            clip_norm=5.0,
        )

    def _forward(
        self, elements: np.ndarray, mask: np.ndarray, training: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Returns (prediction (n,1), pooled hidden) and caches shapes."""
        n, k, f = elements.shape
        flat = elements.reshape(n * k, f)
        hidden = self._shared.forward(flat, training=training)
        hidden = hidden.reshape(n, k, -1)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        pooled = (hidden * mask[:, :, None]).sum(axis=1) / counts
        pred = self._head.forward(pooled, training=training)
        self._cache = (n, k, mask, counts)
        return pred, pooled

    def _backward(self, grad_pred: np.ndarray) -> None:
        n, k, mask, counts = self._cache
        grad_pooled = self._head.backward(grad_pred)
        grad_hidden = (
            grad_pooled[:, None, :] * mask[:, :, None] / counts[:, :, None]
        )
        self._shared.backward(grad_hidden.reshape(n * k, -1))

    # ------------------------------------------------------------------
    # Training / estimation
    # ------------------------------------------------------------------

    def fit(self, records: Sequence[QueryRecord]) -> List[float]:
        """Train until convergence on labelled queries; returns losses."""
        if not records:
            raise ValueError("cannot train on an empty workload")
        queries = [r.query for r in records]
        cards = np.array([r.cardinality for r in records], dtype=np.float64)
        elements, mask = self.featurize(queries)
        targets = self.scaler.fit_transform(cards).reshape(-1, 1)
        self._build()
        loss_fn = QErrorLoss(self.scaler.span)
        rng = np.random.default_rng(self.config.seed)
        n = len(records)
        history: List[float] = []
        for _ in range(self.config.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, self.config.batch_size):
                idx = order[start: start + self.config.batch_size]
                pred, _ = self._forward(
                    elements[idx], mask[idx], training=True
                )
                loss, grad = loss_fn(pred, targets[idx])
                self._backward(grad)
                self._optimizer.step()
                epoch_loss += loss
                batches += 1
            history.append(epoch_loss / max(batches, 1))
        return history

    def _estimate_batch(self, queries) -> np.ndarray:
        """Vectorized estimation: one featurize + one forward per batch."""
        if self._head is None:
            raise RuntimeError("estimate() before fit()")
        elements, mask = self.featurize(list(queries))
        pred, _ = self._forward(elements, mask, training=False)
        return self.scaler.inverse(pred.ravel())

    def memory_bytes(self) -> int:
        """Model parameters plus the materialised sample triples."""
        if self._head is None:
            raise RuntimeError("model not built yet")
        params = sum(
            p.size
            for p in self._shared.parameters() + self._head.parameters()
        )
        return params * 4 + len(self._samples) * 3 * 8
