"""Bayesian-network + chain-histogram baseline (Huang & Liu, CIKM 2011).

The paper's related work [14] combines two synopses: a Bayesian network
capturing the joint distribution over *correlated properties* for star
query patterns, and a *chain histogram* for chain query patterns.  This
module reconstructs both from the published description:

- :class:`StarBayesNet` learns a Chow–Liu tree over per-subject
  predicate-presence indicators — the maximum-spanning-tree over
  pairwise mutual information, the textbook tractable BN — so the
  probability that a subject emits *all* predicates of a star query is
  estimated with first-order correlations instead of full independence.
  Bound objects contribute their per-predicate selectivity; unbound
  objects contribute the mean out-fanout of their predicate.
- :class:`ChainHistogram` stores the exact two-step join counts
  ``J(p, q) = |{(a p b), (b q c)}|`` and estimates a chain as a Markov
  (bigram) product — exact for length 2, first-order beyond.

:class:`BayesNetEstimator` routes star queries to the BN, chains to the
histogram, and anything else to an independence fallback, mirroring how
Huang & Liu dispatch on the query pattern class.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.base import CardinalityEstimator
from repro.baselines.independence import IndependenceEstimator
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.rdf.terms import Variable, is_bound


def _mutual_information(
    joint_11: float, p1: float, p2: float, total: float
) -> float:
    """Mutual information of two binary indicators from their counts."""
    if total <= 0:
        return 0.0
    mi = 0.0
    # Joint cell counts for (a, b) in {0,1}^2 derived from the marginals.
    cells = {
        (1, 1): joint_11,
        (1, 0): p1 - joint_11,
        (0, 1): p2 - joint_11,
        (0, 0): total - p1 - p2 + joint_11,
    }
    for (a, b), count in cells.items():
        if count <= 0:
            continue
        p_ab = count / total
        p_a = (p1 if a else total - p1) / total
        p_b = (p2 if b else total - p2) / total
        mi += p_ab * math.log(p_ab / (p_a * p_b))
    return mi


class StarBayesNet:
    """Chow–Liu tree over predicate-presence indicators of subjects.

    ``prob_all_present(preds)`` answers "what fraction of subjects emit
    every predicate in *preds*" using the tree factorisation
    ``P(x) = P(root) * prod P(child | parent)`` — one conditional per
    tree edge, exact pairwise correlations, no independence assumption
    between predicates connected in the tree.
    """

    def __init__(self, store: TripleStore, max_predicates: int = 512) -> None:
        self.store = store
        subjects = list(store.subjects())
        self.num_subjects = len(subjects)
        # Presence counts: how many subjects emit p, and emit both p, q.
        single: Dict[int, int] = defaultdict(int)
        pair: Dict[Tuple[int, int], int] = defaultdict(int)
        backend = store.backend
        for s in subjects:
            preds = backend.out_predicates(s).tolist()
            for i, p in enumerate(preds):
                single[p] += 1
                for q in preds[i + 1:]:
                    pair[(p, q)] += 1
        # Keep the most frequent predicates when the vocabulary is huge
        # (YAGO regime); the tail falls back to marginals.
        ranked = sorted(single, key=lambda p: -single[p])
        self.predicates: List[int] = sorted(ranked[:max_predicates])
        self._single = dict(single)
        self._pair = dict(pair)
        self._parent: Dict[int, Optional[int]] = {}
        self._build_tree()

    def _pair_count(self, p: int, q: int) -> int:
        if p > q:
            p, q = q, p
        return self._pair.get((p, q), 0)

    def _build_tree(self) -> None:
        """Maximum spanning tree over pairwise mutual information (Prim)."""
        preds = self.predicates
        if not preds:
            return
        in_tree: Set[int] = {preds[0]}
        self._parent[preds[0]] = None
        remaining = set(preds[1:])
        while remaining:
            best: Optional[Tuple[float, int, int]] = None
            for q in remaining:
                for p in in_tree:
                    mi = _mutual_information(
                        self._pair_count(p, q),
                        self._single.get(p, 0),
                        self._single.get(q, 0),
                        self.num_subjects,
                    )
                    if best is None or mi > best[0]:
                        best = (mi, p, q)
            assert best is not None
            _, parent, child = best
            self._parent[child] = parent
            in_tree.add(child)
            remaining.discard(child)

    def marginal(self, p: int) -> float:
        """P(subject emits predicate *p*)."""
        if self.num_subjects == 0:
            return 0.0
        return self._single.get(p, 0) / self.num_subjects

    def conditional(self, child: int, parent: int) -> float:
        """P(child present | parent present), with add-half smoothing."""
        parent_count = self._single.get(parent, 0)
        if parent_count == 0:
            return self.marginal(child)
        return (self._pair_count(parent, child) + 0.5) / (parent_count + 1.0)

    def prob_all_present(self, preds: Sequence[int]) -> float:
        """P(subject emits every predicate in *preds*) under the tree.

        Query predicates form a sub-forest of the Chow–Liu tree: each is
        conditioned on its nearest *queried* ancestor; roots of the
        sub-forest use their marginal.  Predicates outside the tree
        (rare tail) contribute their marginal.
        """
        wanted = set(preds)
        prob = 1.0
        for p in sorted(wanted):
            if p not in self._parent:
                prob *= self.marginal(p)
                continue
            ancestor = self._parent.get(p)
            while ancestor is not None and ancestor not in wanted:
                ancestor = self._parent.get(ancestor)
            if ancestor is None:
                prob *= self.marginal(p)
            else:
                prob *= self.conditional(p, ancestor)
        return prob

    def memory_bytes(self) -> int:
        """Tree edges plus one marginal and conditional per predicate."""
        return len(self.predicates) * 3 * 8


class ChainHistogram:
    """Bigram join statistics for chain queries (Huang & Liu's second half).

    Stores, for every predicate pair ``(p, q)``, the exact number of
    two-step paths ``a -p-> b -q-> c``.  A k-step chain is estimated with
    the Markov approximation: the exact first join, then per-step
    expansion ratios ``J(p_i, p_{i+1}) / |p_i|``.
    """

    def __init__(self, store: TripleStore) -> None:
        self.store = store
        self._joins: Dict[Tuple[int, int], int] = defaultdict(int)
        self._pred_counts: Dict[int, int] = {
            p: store.predicate_count(p) for p in store.predicates()
        }
        backend = store.backend
        for s, p, o in store:
            for q in backend.out_slice(o)[0].tolist():
                self._joins[(p, q)] += 1
        self._joins = dict(self._joins)

    def join_count(self, p: int, q: int) -> int:
        """Exact number of 2-chains via predicates *p* then *q*."""
        return self._joins.get((p, q), 0)

    def estimate_chain(self, predicates: Sequence[int]) -> float:
        """Estimated count of an all-unbound chain over *predicates*."""
        if not predicates:
            return 0.0
        if len(predicates) == 1:
            return float(self._pred_counts.get(predicates[0], 0))
        estimate = float(self.join_count(predicates[0], predicates[1]))
        for prev, nxt in zip(predicates[1:], predicates[2:]):
            base = self._pred_counts.get(prev, 0)
            if base == 0:
                return 0.0
            estimate *= self.join_count(prev, nxt) / base
        return estimate

    def memory_bytes(self) -> int:
        return (len(self._joins) + len(self._pred_counts)) * 8


class BayesNetEstimator(CardinalityEstimator):
    """Huang & Liu-style estimator: BN for stars, bigram histogram for
    chains, independence fallback elsewhere.

    Requires bound predicates (as do all competitors in §VIII's test
    query generation); queries with unbound predicates fall back to the
    independence estimator.
    """

    name = "bayesnet"

    def __init__(self, store: TripleStore, max_predicates: int = 512) -> None:
        self.store = store
        self.star_model = StarBayesNet(store, max_predicates=max_predicates)
        self.chain_model = ChainHistogram(store)
        self._fallback = IndependenceEstimator(store)

    def _estimate_one(self, query: QueryPattern) -> float:
        if any(not is_bound(tp.p) for tp in query.triples):
            return self._fallback.estimate(query)
        topology = query.topology()
        if topology == Topology.SINGLE:
            return float(self.store.count_pattern(query.triples[0]))
        if topology == Topology.STAR:
            return self._estimate_star(query)
        if topology == Topology.CHAIN:
            return self._estimate_chain(query)
        return self._fallback.estimate(query)

    # ------------------------------------------------------------------
    # Star queries
    # ------------------------------------------------------------------

    def _estimate_star(self, query: QueryPattern) -> float:
        centre = query.triples[0].s
        if is_bound(centre):
            # Bound centre: exact per-arm counts multiply (objects are
            # independent arms of one subject).
            product = 1.0
            for tp in query.triples:
                product *= float(self.store.count_pattern(tp))
            return product
        preds = [tp.p for tp in query.triples]
        prob = self.star_model.prob_all_present(preds)
        expected = self.star_model.num_subjects * prob
        for tp in query.triples:
            pred_total = float(self.store.predicate_count(tp.p))
            emitting = self.star_model._single.get(tp.p, 0)
            if is_bound(tp.o):
                # Selectivity of the bound object within its predicate.
                if pred_total == 0:
                    return 0.0
                matches = float(
                    self.store.backend.count_po(tp.p, tp.o)
                )
                expected *= matches / max(emitting, 1)
            else:
                # Unbound object: mean fanout of subjects emitting p.
                expected *= pred_total / max(emitting, 1)
        return expected

    # ------------------------------------------------------------------
    # Chain queries
    # ------------------------------------------------------------------

    def _estimate_chain(self, query: QueryPattern) -> float:
        preds = [tp.p for tp in query.triples]
        estimate = self.chain_model.estimate_chain(preds)
        if estimate == 0.0:
            return 0.0
        # Bound endpoints scale the all-unbound estimate by the bound
        # term's share of its predicate's triples.
        first, last = query.triples[0], query.triples[-1]
        if is_bound(first.s):
            base = self.store.predicate_count(first.p)
            matched = self.store.backend.count_sp(first.s, first.p)
            estimate *= matched / max(base, 1)
        if is_bound(last.o):
            base = self.store.predicate_count(last.p)
            matched = self.store.backend.count_po(last.p, last.o)
            estimate *= matched / max(base, 1)
        return estimate

    def memory_bytes(self) -> int:
        return (
            self.star_model.memory_bytes()
            + self.chain_model.memory_bytes()
        )
