"""Independence-assumption baseline: per-triple counts joined uniformly.

Not one of the paper's evaluated competitors, but the textbook
histogram-style estimator its introduction argues against; kept as the
floor every learned approach should beat and used by ablation benches.

``card ≈ prod per-triple exact counts / |node domain|^(extra occurrences
of each shared variable)`` — exact per-triple selectivities (the store's
indexes give them for free) combined under uniform join selectivity.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.baselines.base import CardinalityEstimator
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import Variable


class IndependenceEstimator(CardinalityEstimator):
    """Per-triple histogram product with join-uniformity correction."""

    name = "indep"

    def __init__(self, store: TripleStore) -> None:
        self.store = store

    def _estimate_one(self, query: QueryPattern) -> float:
        product = 1.0
        for tp in query.triples:
            product *= float(self.store.count_pattern(tp))
            if product == 0.0:
                return 0.0
        occurrences: Dict[Variable, int] = defaultdict(int)
        for tp in query.triples:
            for var in set(tp.variables):
                occurrences[var] += 1
        domain = max(self.store.num_nodes, 1)
        for count in occurrences.values():
            if count > 1:
                product /= float(domain) ** (count - 1)
        return product

    def memory_bytes(self) -> int:
        """One counter per predicate (what a real system would keep)."""
        return self.store.num_predicates * 8
