"""SUMRDF: graph summarisation with possible-world semantics
(Stefanoni, Motik, Kostylev — WWW 2018).

Nodes are partitioned into buckets; the summary records, per
(source bucket, predicate, target bucket), how many graph triples it
covers.  Under the possible-world interpretation each summary triple's
``weight`` edges are distributed uniformly among the ``|b1| * |b2|``
node pairs, so the *expected* cardinality of a query is::

    sum over assignments of query nodes to buckets of
        prod over triples  weight(b_s, p, b_o) / (|b_s| * |b_o|)
        * prod over distinct unbound query nodes |bucket(node)|

Bound terms are pinned to their own bucket and contribute no domain
factor.  The assignment enumeration reuses the backtracking matcher over
a bucket-level triple store.

Bucketisation follows the original's typed summarisation in spirit:
nodes sharing a characteristic-set signature group together, hashed down
to a target bucket count.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.base import CardinalityEstimator
from repro.rdf.matcher import iter_bindings
from repro.rdf.pattern import QueryPattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import TriplePattern, Variable, is_bound


class SumRDF(CardinalityEstimator):
    """Bucket summary estimator."""

    name = "sumrdf"

    def __init__(
        self, store: TripleStore, target_buckets: int = 256, seed: int = 0
    ) -> None:
        self.store = store
        self.target_buckets = target_buckets
        self._bucket_of: Dict[int, int] = {}
        self._bucket_size: Dict[int, int] = defaultdict(int)
        self._weights: Dict[Tuple[int, int, int], int] = defaultdict(int)
        self._summary = TripleStore()
        self._build()

    def _signature(self, node: int) -> int:
        backend = self.store.backend
        # out_predicates is already sorted-distinct; the in-predicate
        # set is one np.unique over the incoming slice's predicate
        # column.
        preds = tuple(backend.out_predicates(node).tolist())
        in_preds = tuple(np.unique(backend.in_slice(node)[1]).tolist())
        return hash((preds, in_preds)) % self.target_buckets

    def _build(self) -> None:
        for node in self.store.nodes():
            bucket = self._signature(node)
            self._bucket_of[node] = bucket
            self._bucket_size[bucket] += 1
        for s, p, o in self.store:
            key = (self._bucket_of[s], p, self._bucket_of[o])
            self._weights[key] += 1
        for (b1, p, b2), _ in self._weights.items():
            # Bucket ids are shifted by 1: the summary store reserves 0.
            self._summary.add(b1 + 1, p, b2 + 1)

    # ------------------------------------------------------------------

    def _estimate_one(self, query: QueryPattern) -> float:
        """Expected cardinality over the possible worlds of the summary."""
        bucket_query, bound_nodes = self._to_bucket_query(query)
        total = 0.0
        for binding in iter_bindings(self._summary, bucket_query):
            expectation = 1.0
            domain_counted = set()
            for original, rewritten in zip(
                query.triples, bucket_query.triples
            ):
                b_s = self._resolve(rewritten.s, binding)
                b_o = self._resolve(rewritten.o, binding)
                weight = self._weights.get(
                    (b_s - 1, original.p, b_o - 1), 0
                )
                size_s = self._bucket_size[b_s - 1]
                size_o = self._bucket_size[b_o - 1]
                expectation *= weight / (size_s * size_o)
                # Unbound nodes multiply in their bucket size once.
                for term, bucket in ((original.s, b_s), (original.o, b_o)):
                    if isinstance(term, Variable):
                        if term not in domain_counted:
                            domain_counted.add(term)
                            expectation *= self._bucket_size[bucket - 1]
            total += expectation
        return total

    def _to_bucket_query(
        self, query: QueryPattern
    ) -> Tuple[QueryPattern, List[int]]:
        """Rewrite node terms to bucket ids (+1); variables stay."""
        rewritten = []
        bound_nodes: List[int] = []
        for tp in query.triples:
            s = (
                tp.s
                if isinstance(tp.s, Variable)
                else self._bucket_of.get(tp.s, -1) + 1
            )
            o = (
                tp.o
                if isinstance(tp.o, Variable)
                else self._bucket_of.get(tp.o, -1) + 1
            )
            if not is_bound(tp.p):
                raise ValueError("SUMRDF requires bound predicates")
            rewritten.append(TriplePattern(s, tp.p, o))
        return QueryPattern(rewritten), bound_nodes

    @staticmethod
    def _resolve(term, binding) -> int:
        if isinstance(term, Variable):
            return binding[term]
        return term

    def memory_bytes(self) -> int:
        """Summary size: bucket table plus weighted summary triples."""
        ints = len(self._bucket_of) + len(self._bucket_size)
        ints += 4 * len(self._weights)
        return ints * 8
