"""Impr: graphlet-count estimation by random walks (Chen & Lui, ICDM
2016), adapted for labelled subgraph cardinality as in G-CARE.

The original estimates *unlabelled* graphlet counts on online social
networks by random walks with re-weighting.  The G-CARE adaptation (which
the paper evaluates) estimates the number of embeddings of the query's
*topology*, scaled by the fraction of sampled embeddings whose labels
match the query's bound terms:

1. random-walk sample subgraphs with the query's shape, tracking each
   sample's inclusion probability (product of the inverse degrees along
   the walk),
2. Horvitz-Thompson: the mean of ``match_indicator / probability`` over
   samples estimates the labelled-embedding count.

The estimator is known (and shown in the paper) to degrade sharply for
selective labelled queries — most sampled embeddings miss the bound
terms, so the indicator is almost always zero.  Reproducing that failure
mode is the point of including it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import CardinalityEstimator
from repro.rdf.pattern import QueryPattern, Topology
from repro.rdf.store import TripleStore
from repro.rdf.terms import Variable, is_bound


class Impr(CardinalityEstimator):
    """Random-walk graphlet estimator with label-matching correction."""

    name = "impr"

    def __init__(
        self,
        store: TripleStore,
        walks_per_run: int = 100,
        runs: int = 30,
        seed: int = 0,
    ) -> None:
        self.store = store
        self.walks_per_run = walks_per_run
        self.runs = runs
        self._rng = np.random.default_rng(seed)
        self._nodes = store.nodes()

    def _estimate_one(self, query: QueryPattern) -> float:
        topo = query.topology()
        if topo not in (Topology.STAR, Topology.CHAIN, Topology.SINGLE):
            # The walk templates below cover the paper's two topologies.
            topo = Topology.CHAIN
        estimates = [
            self._run_once(query, topo) for _ in range(self.runs)
        ]
        return float(np.mean(estimates))

    def _run_once(self, query: QueryPattern, topo: Topology) -> float:
        total = 0.0
        for _ in range(self.walks_per_run):
            sample = self._sample_embedding(query, topo)
            if sample is None:
                continue
            probability, triples = sample
            if self._matches(query, triples):
                total += 1.0 / probability
        return total / self.walks_per_run

    def _sample_embedding(
        self, query: QueryPattern, topo: Topology
    ) -> Optional[Tuple[float, List[Tuple[int, int, int]]]]:
        """Sample a shape embedding; returns (probability, triples)."""
        size = query.size
        n = len(self._nodes)
        start = self._nodes[int(self._rng.integers(n))]
        probability = 1.0 / n
        triples: List[Tuple[int, int, int]] = []
        backend = self.store.backend
        if topo is Topology.STAR:
            preds, objs = backend.out_slice(start)
            degree = int(preds.size)
            if degree == 0:
                return None
            for _ in range(size):
                pick = int(self._rng.integers(degree))
                probability *= 1.0 / degree
                triples.append(
                    (start, int(preds[pick]), int(objs[pick]))
                )
        else:
            node = start
            for _ in range(size):
                preds, objs = backend.out_slice(node)
                degree = int(preds.size)
                if degree == 0:
                    return None
                pick = int(self._rng.integers(degree))
                probability *= 1.0 / degree
                o = int(objs[pick])
                triples.append((node, int(preds[pick]), o))
                node = o
        return probability, triples

    @staticmethod
    def _matches(
        query: QueryPattern, triples: List[Tuple[int, int, int]]
    ) -> bool:
        """Do the sampled triples satisfy the query's bound terms?

        Variables must also bind consistently across the sampled triples.
        """
        bindings = {}
        for tp, triple in zip(query.triples, triples):
            for term, value in zip(tp, triple):
                if isinstance(term, Variable):
                    bound = bindings.get(term)
                    if bound is None:
                        bindings[term] = value
                    elif bound != value:
                        return False
                elif term != value:
                    return False
        return True
